//! Critical-path extraction and exact latency breakdown for request trees.
//!
//! For each [`RequestTrace`] the analysis walks the request's causal chain on
//! the modeled timeline — admit → batch-form → dock (ready → run) → minimize
//! (ready → run) → resolve — and decomposes admission-to-completion latency
//! into **exact, summing segments**: the segment durations are differences of
//! successive (monotonically clamped) chain instants, so they sum to the
//! request's `latency_modeled_s` to within floating-point association error
//! (< 1e-9 in the replay tests), never an approximation.
//!
//! The chain is anchored at the request's *terminal item* (the item finishing
//! last, which gates the batch completion the request waits on). When that is
//! a minimize item, its dock parent is the dock item of the same entry — the
//! pipeline stamps the minimize's `ready_v_s` with exactly that dock's
//! completion instant, so the chain's edges are the scheduler's real
//! dependency edges, not heuristics.
//!
//! Segment definitions (all in modeled seconds):
//!
//! | segment | interval |
//! |---|---|
//! | `admission_wait_s` | admit → batch formed |
//! | `batch_form_wait_s` | batch formed → batch submitted (dock ready) |
//! | `dock_ready_wait_s` | dock ready → dock start (device contention) |
//! | `dock_transfer_s` / `dock_kernel_s` | inside the dock span |
//! | `minimize_ready_wait_s` | dock end → minimize start |
//! | `minimize_transfer_s` / `minimize_kernel_s` | inside the minimize span |
//! | `cache_miss_penalty_s` | uploads inside items that recorded a cache miss |
//! | `resolve_wait_s` | terminal item end → batch resolve |
//!
//! Within an item span, transfer seconds are the anchored upload/download
//! children and kernel seconds are the exact remainder (`span − transfers`),
//! which keeps the within-span split exact too. Uploads inside an item that
//! recorded a residency-cache miss are attributed to `cache_miss_penalty_s`
//! instead of the phase's transfer segment: that staging cost only exists
//! because residency was cold.

use crate::event::Track;
use crate::perfetto::{Flow, FlowStep};
use crate::tree::{ItemNode, RequestTrace};

/// The exact latency decomposition of one request. Segment values are ≥ 0
/// except for float rounding in the kernel remainders; they sum to the
/// request latency exactly (see [`Breakdown::total_s`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Admission → batch formation: time spent queued before a batch took
    /// the job.
    pub admission_wait_s: f64,
    /// Batch formation → scheduler submit: batch assembly (grid prep, probe
    /// pipeline construction) ahead of the dock items becoming ready.
    pub batch_form_wait_s: f64,
    /// Dock ready → dock start: device contention ahead of the dock phase.
    pub dock_ready_wait_s: f64,
    /// Modeled kernel seconds inside the critical dock item.
    pub dock_kernel_s: f64,
    /// Modeled transfer seconds inside the critical dock item (staging not
    /// attributable to a cache miss).
    pub dock_transfer_s: f64,
    /// Dock end → minimize start: device contention ahead of the minimize
    /// phase (zero when the terminal item is the dock itself).
    pub minimize_ready_wait_s: f64,
    /// Modeled kernel seconds inside the critical minimize item.
    pub minimize_kernel_s: f64,
    /// Modeled transfer seconds inside the critical minimize item.
    pub minimize_transfer_s: f64,
    /// Upload seconds inside critical items that recorded a residency-cache
    /// miss — staging that steady-state residency would have avoided.
    pub cache_miss_penalty_s: f64,
    /// Terminal item end → batch resolve: waiting for the rest of the batch
    /// plus completion bookkeeping.
    pub resolve_wait_s: f64,
}

impl Breakdown {
    /// Segment labels and values, in chain order (for report tables).
    pub fn segments(&self) -> [(&'static str, f64); 10] {
        [
            ("admission_wait", self.admission_wait_s),
            ("batch_form_wait", self.batch_form_wait_s),
            ("dock_ready_wait", self.dock_ready_wait_s),
            ("dock_transfer", self.dock_transfer_s),
            ("dock_kernel", self.dock_kernel_s),
            ("minimize_ready_wait", self.minimize_ready_wait_s),
            ("minimize_transfer", self.minimize_transfer_s),
            ("minimize_kernel", self.minimize_kernel_s),
            ("cache_miss_penalty", self.cache_miss_penalty_s),
            ("resolve_wait", self.resolve_wait_s),
        ]
    }

    /// Sum of every segment — equals the request's modeled latency.
    pub fn total_s(&self) -> f64 {
        self.segments().iter().map(|(_, v)| v).sum()
    }
}

/// One anchor instant on the critical path (rendered as a Perfetto flow
/// step).
#[derive(Debug, Clone)]
pub struct CriticalStep {
    /// Step label.
    pub name: &'static str,
    /// Track the instant lives on.
    pub track: Track,
    /// Absolute modeled instant.
    pub at_s: f64,
}

/// The request's critical path: the chain of instants from admission to
/// resolve through its terminal items.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Chain instants in order: admit, batch-form, dock, minimize (absent
    /// on fused chains), resolve.
    pub steps: Vec<CriticalStep>,
    /// Start of the first item on the path (modeled seconds).
    pub exec_start_s: f64,
    /// End of the last item on the path.
    pub exec_end_s: f64,
}

impl CriticalPath {
    /// The execution span of the path — first item start to last item end.
    /// Always ≤ the batch makespan; equal on a single-chain workload (one
    /// job, one probe, one pose block) where the request *is* the batch.
    pub fn execution_span_s(&self) -> f64 {
        self.exec_end_s - self.exec_start_s
    }
}

/// Full analysis of one request.
#[derive(Debug, Clone)]
pub struct RequestAnalysis {
    /// The request's trace id.
    pub trace_id: u64,
    /// Tenant tag, if known.
    pub tenant: Option<String>,
    /// Latency class name, if known.
    pub class: Option<&'static str>,
    /// Admission-to-completion modeled latency.
    pub latency_s: f64,
    /// The exact segment decomposition.
    pub breakdown: Breakdown,
    /// The chain of instants the breakdown was cut along.
    pub path: CriticalPath,
}

impl RequestAnalysis {
    /// Renders the critical path as a Perfetto flow (arrows across tracks).
    pub fn flow(&self) -> Flow {
        Flow {
            id: self.trace_id,
            name: format!("request {}", self.trace_id),
            steps: self
                .path
                .steps
                .iter()
                .map(|s| FlowStep { track: s.track, at_s: s.at_s, name: s.name.to_string() })
                .collect(),
        }
    }
}

/// Splits an item span `[start, end]` into (transfer, cache-penalty, kernel)
/// seconds: transfers are the anchored upload/download children, a recorded
/// cache miss moves the uploads into the penalty bucket, and the kernel
/// share is the exact remainder so the three sum to `end - start`.
fn split_item(item: &ItemNode, start: f64, end: f64) -> (f64, f64, f64) {
    let (upload, download) = item.transfer_split_s();
    let (transfer, penalty) =
        if item.had_cache_miss() { (download, upload) } else { (upload + download, 0.0) };
    let kernel = (end - start) - transfer - penalty;
    (transfer, penalty, kernel)
}

/// Analyses one request tree: extracts the critical path and cuts the
/// admission-to-completion latency into exact segments. Returns `None` when
/// the tree lacks the lifecycle instants or item spans the chain needs
/// (e.g. barrier-mode dispatch, which has no per-item trace tags).
pub fn analyze(tree: &RequestTrace) -> Option<RequestAnalysis> {
    let admitted = tree.admitted_v_s?;
    let resolved = tree.resolved_v_s?;
    let terminal = tree.last_item()?.clone();
    let dock =
        if terminal.is_dock() { Some(&terminal) } else { tree.dock_for_entry(terminal.entry()) };

    // Raw chain instants; each is clamped to be ≥ its predecessor so the
    // segment differences are non-negative and telescope exactly to
    // `resolved - admitted`.
    let formed = tree.batched.map(|(at, _)| at).unwrap_or(admitted);
    let (dock_ready, dock_start, dock_end) = match dock {
        Some(d) => (d.ready_v_s().unwrap_or(d.span.start_s), d.span.start_s, d.span.end_s()),
        // Dock span missing (partial trace): collapse its segments onto the
        // terminal item's ready instant.
        None => {
            let ready = terminal.ready_v_s().unwrap_or(terminal.span.start_s);
            (ready, ready, ready)
        }
    };
    let mut at = admitted;
    let mut clamp = move |raw: f64| {
        at = at.max(raw);
        at
    };
    let t_formed = clamp(formed);
    let t_dock_ready = clamp(dock_ready);
    let t_dock_start = clamp(dock_start);
    let t_dock_end = clamp(dock_end);
    let (t_min_start, t_min_end) = if terminal.is_dock() {
        (t_dock_end, t_dock_end)
    } else {
        (clamp(terminal.span.start_s), clamp(terminal.span.end_s()))
    };
    let t_resolved = clamp(resolved);

    let mut breakdown = Breakdown {
        admission_wait_s: t_formed - admitted,
        batch_form_wait_s: t_dock_ready - t_formed,
        dock_ready_wait_s: t_dock_start - t_dock_ready,
        minimize_ready_wait_s: t_min_start - t_dock_end,
        resolve_wait_s: t_resolved - t_min_end,
        ..Breakdown::default()
    };
    if let Some(d) = dock {
        let (transfer, penalty, kernel) = split_item(d, t_dock_start, t_dock_end);
        breakdown.dock_transfer_s = transfer;
        breakdown.dock_kernel_s = kernel;
        breakdown.cache_miss_penalty_s += penalty;
    }
    if !terminal.is_dock() {
        let (transfer, penalty, kernel) = split_item(&terminal, t_min_start, t_min_end);
        breakdown.minimize_transfer_s = transfer;
        breakdown.minimize_kernel_s = kernel;
        breakdown.cache_miss_penalty_s += penalty;
    }

    let mut steps = vec![CriticalStep { name: "admit", track: Track::Queue, at_s: admitted }];
    if let Some((at, _)) = tree.batched {
        steps.push(CriticalStep { name: "batch-form", track: Track::Queue, at_s: at });
    }
    let mut exec_start = terminal.span.start_s;
    if let Some(d) = dock {
        steps.push(CriticalStep { name: "dock", track: d.span.track, at_s: t_dock_start });
        exec_start = d.span.start_s;
    }
    if !terminal.is_dock() {
        steps.push(CriticalStep {
            name: "minimize",
            track: terminal.span.track,
            at_s: t_min_start,
        });
    }
    steps.push(CriticalStep { name: "resolve", track: Track::Queue, at_s: t_resolved });

    Some(RequestAnalysis {
        trace_id: tree.trace_id,
        tenant: tree.tenant.clone(),
        class: tree.class,
        latency_s: resolved - admitted,
        breakdown,
        path: CriticalPath { steps, exec_start_s: exec_start, exec_end_s: terminal.span.end_s() },
    })
}

/// Analyses every tree, dropping requests without enough trace data, sorted
/// slowest-first.
pub fn analyze_all(trees: &[RequestTrace]) -> Vec<RequestAnalysis> {
    let mut out: Vec<RequestAnalysis> = trees.iter().filter_map(analyze).collect();
    out.sort_by(|a, b| b.latency_s.total_cmp(&a.latency_s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, TraceEvent, Track};
    use crate::tree::build_request_trees;

    fn tagged(mut event: TraceEvent, trace: u64) -> TraceEvent {
        event.tags.trace = Some(trace);
        event
    }

    /// Hand-built two-item chain: admit 0.0, formed 0.1, submit 0.2, dock
    /// [0.3, 0.7] (upload 0.1 + kernel 0.25 + download 0.05), minimize
    /// [0.9, 1.4] ready at 0.7, resolve 1.5.
    fn chain_events() -> Vec<TraceEvent> {
        let mut admit = tagged(TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.0), 1);
        admit.tags.class = Some("bulk");
        let mut batched =
            tagged(TraceEvent::instant(Track::Queue, "job-batched", Category::Serve, 0.1), 1);
        batched.tags.batch_seq = Some(0);
        let mut dock =
            tagged(TraceEvent::span(Track::Device(0), "dock", Category::Sched, 0.3, 0.4), 1);
        dock.tags.probe = Some(0);
        dock.tags.nums.push(("ready_v_s", 0.2));
        let up =
            tagged(TraceEvent::span(Track::Device(0), "upload", Category::Transfer, 0.3, 0.1), 1);
        let down = tagged(
            TraceEvent::span(Track::Device(0), "download", Category::Transfer, 0.65, 0.05),
            1,
        );
        let miss =
            tagged(TraceEvent::instant(Track::Device(0), "cache-miss", Category::Cache, 0.3), 1);
        let mut minimize =
            tagged(TraceEvent::span(Track::Device(1), "minimize", Category::Sched, 0.9, 0.5), 1);
        minimize.tags.probe = Some(0);
        minimize.tags.nums.push(("ready_v_s", 0.7));
        let min_down =
            tagged(TraceEvent::span(Track::Device(1), "download", Category::Transfer, 1.3, 0.1), 1);
        let mut resolve =
            tagged(TraceEvent::instant(Track::Queue, "job-resolve", Category::Serve, 1.5), 1);
        resolve.tags.nums.push(("latency_s", 1.5));
        vec![admit, batched, dock, up, down, miss, minimize, min_down, resolve]
    }

    #[test]
    fn breakdown_segments_sum_exactly_and_match_chain() {
        let trees = build_request_trees(&chain_events());
        let analysis = analyze(&trees[0]).expect("complete tree analyses");
        let b = analysis.breakdown;
        assert!((analysis.latency_s - 1.5).abs() < 1e-12);
        assert!((b.total_s() - 1.5).abs() < 1e-9, "segments must sum to latency");
        assert!((b.admission_wait_s - 0.1).abs() < 1e-12);
        assert!((b.batch_form_wait_s - 0.1).abs() < 1e-12);
        assert!((b.dock_ready_wait_s - 0.1).abs() < 1e-12);
        // The dock's upload rides the cache miss; the download stays transfer.
        assert!((b.cache_miss_penalty_s - 0.1).abs() < 1e-12);
        assert!((b.dock_transfer_s - 0.05).abs() < 1e-12);
        assert!((b.dock_kernel_s - 0.25).abs() < 1e-12);
        assert!((b.minimize_ready_wait_s - 0.2).abs() < 1e-12);
        assert!((b.minimize_transfer_s - 0.1).abs() < 1e-12);
        assert!((b.minimize_kernel_s - 0.4).abs() < 1e-12);
        assert!((b.resolve_wait_s - 0.1).abs() < 1e-12);
        // Path anchors: admit → batch-form → dock → minimize → resolve.
        let names: Vec<&str> = analysis.path.steps.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["admit", "batch-form", "dock", "minimize", "resolve"]);
        assert!((analysis.path.execution_span_s() - 1.1).abs() < 1e-12);
        let flow = analysis.flow();
        assert_eq!(flow.id, 1);
        assert_eq!(flow.steps.len(), 5);
    }

    #[test]
    fn dock_only_chain_has_zero_minimize_segments() {
        let events: Vec<TraceEvent> = chain_events()
            .into_iter()
            .filter(|e| e.track != Track::Device(1)) // drop the minimize item + child
            .collect();
        let trees = build_request_trees(&events);
        let analysis = analyze(&trees[0]).expect("dock-only tree analyses");
        let b = analysis.breakdown;
        assert_eq!(b.minimize_ready_wait_s, 0.0);
        assert_eq!(b.minimize_kernel_s, 0.0);
        assert_eq!(b.minimize_transfer_s, 0.0);
        // resolve_wait absorbs dock-end → resolve: 1.5 - 0.7 = 0.8.
        assert!((b.resolve_wait_s - 0.8).abs() < 1e-12);
        assert!((b.total_s() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn incomplete_trees_are_skipped() {
        let only_admit =
            vec![tagged(TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.0), 9)];
        let trees = build_request_trees(&only_admit);
        assert!(analyze(&trees[0]).is_none());
        assert!(analyze_all(&trees).is_empty());
    }
}
