//! # ftmap-math
//!
//! Math substrate for the ftmap-rs workspace: the Rust reproduction of
//! *Fast Binding Site Mapping using GPUs and CUDA* (Sukhwani & Herbordt, 2010).
//!
//! This crate provides the numerical building blocks that both the PIPER-style
//! rigid-docking engine and the CHARMM/ACE energy-minimization engine are built on:
//!
//! * [`Vec3`] — 3-component double-precision vectors used for atom coordinates,
//!   forces and gradients.
//! * [`Quaternion`] and [`Rotation`] — rigid-body rotations; [`rotations::RotationSet`]
//!   reproduces FTMap's coarse 500-rotation sampling of SO(3).
//! * [`Complex`] and [`fft`] — a self-contained radix-2 complex FFT (1-D and 3-D) used by
//!   the FFT-correlation baseline of PIPER.
//! * [`Grid3`] — dense 3-D grids with voxel indexing, padding and cyclic correlation
//!   helpers; the common representation of the docking energy functions.
//! * [`stats`] — small online statistics helpers used by the benchmark harness.
//!
//! Everything in this crate is deterministic and allocation-conscious: hot paths take
//! slices and write into caller-provided buffers where that matters (see the
//! perf-book-style guidance followed throughout the workspace).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod complex;
pub mod fft;
pub mod grid;
pub mod quaternion;
pub mod rotations;
pub mod stats;
pub mod vec3;

pub use complex::Complex;
pub use grid::Grid3;
pub use quaternion::{Quaternion, Rotation};
pub use rotations::RotationSet;
pub use vec3::Vec3;

/// Workspace-wide floating point type used for physics (double precision, as the
/// original FTMap/CHARMM code uses doubles for energies).
pub type Real = f64;

/// Tolerance used by approximate floating-point comparisons in tests and invariants.
pub const EPSILON: Real = 1e-9;

/// Returns true when two reals are equal within `tol` absolute or relative tolerance.
///
/// This is the comparison used by the test-suites across the workspace; it treats
/// values as equal if either the absolute difference or the difference relative to
/// the larger magnitude is below `tol`.
#[inline]
pub fn approx_eq(a: Real, b: Real, tol: Real) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let largest = a.abs().max(b.abs());
    diff <= largest * tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12));
        assert!(!approx_eq(0.0, 1e-3, 1e-12));
    }
}
