//! # ftmap-trace
//!
//! Tracing and metrics for the modeled GPU stack: a lock-cheap span/event
//! recorder on the **modeled virtual timeline**, a Chrome trace-event
//! (Perfetto) JSON exporter, and a Prometheus-style metrics registry.
//!
//! This crate sits *below* `gpu-sim` in the dependency graph: it knows nothing
//! about devices or schedulers, only about [`TraceEvent`]s on abstract
//! [`Track`]s. The layers above emit into a [`TraceSink`]:
//!
//! * schedulers (`gpu_sim::sched`) open an [`ItemScope`] around each work item
//!   and record the item's span once its virtual start/completion instants are
//!   known;
//! * leaf layers (kernel launches, transfers, residency lookups) call the
//!   [`hook`] free functions, which attach **anchored** sub-events to whatever
//!   item scope is active on the current thread — and cost one thread-local
//!   read when none is (the no-op default);
//! * the serve layer records queue/batch lifecycle events with absolute
//!   virtual instants and feeds the [`MetricsRegistry`].
//!
//! On top of the raw stream sit the request-centric analysis layers:
//! [`tree`] reassembles per-request **causal trees** from trace-id tags,
//! [`critical_path`] cuts each request's admission-to-completion latency
//! into exact summing segments and extracts its critical path (exported to
//! Perfetto as flow arrows), [`slo`] evaluates declarative latency
//! objectives as multi-window burn rates, and [`flight`] is the bounded
//! always-on ring sink that tail-samples full trees for slow requests only.
//!
//! Everything is keyed to modeled seconds; no wall clock enters any event or
//! metric.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod critical_path;
pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod recorder;
pub mod sanitize;
pub mod scope;
pub mod sink;
pub mod slo;
pub mod tree;

pub use critical_path::{analyze, analyze_all, Breakdown, CriticalPath, RequestAnalysis};
pub use event::{Anchor, Category, Tags, TraceEvent, Track};
pub use flight::FlightRecorder;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use perfetto::{
    export_chrome_trace, export_chrome_trace_with_flows, import_chrome_trace, Flow,
};
pub use recorder::Recorder;
pub use sanitize::{sanitize, SanitizeReport, ScheduleViolation};
pub use scope::{hook, ItemScope};
pub use sink::{noop, NoopSink, TraceSink};
pub use slo::{
    AlertState, SampleVerdict, SloEngine, SloReport, SloSpec, SloStatus, PAGE_BURN, WARN_BURN,
};
pub use tree::{build_request_trees, ItemNode, RequestTrace};
