//! Acceptance gates for the SLO-aware admission controller:
//!
//! * **Estimator accuracy** — once the cost model is calibrated, the
//!   admission-time latency estimate recorded on every report stays within a
//!   stated multiplicative bound of the realized modeled latency, across pool
//!   sizes, latency-class mixes, and warm/cold receptor mixes.
//! * **Receptor in-flight caps** — with `max_inflight_per_receptor: 1`, no
//!   batch ever co-schedules two jobs of one receptor, however deep the
//!   backlog.
//! * **Tenant quotas** — with weighted quotas, no batch carries more jobs of
//!   one tenant than that tenant's in-flight allowance, and every tenant
//!   still makes progress (no starvation).

use ftmap_core::{FtMapConfig, PipelineMode};
use ftmap_molecule::{ForceField, ProbeType, ProteinSpec, SyntheticProtein};
use ftmap_serve::{
    AdmissionConfig, BatchConfig, BatchMappingService, JobReport, LatencyClass, MappingRequest,
    TenantQuota,
};
use gpu_sim::sched::DevicePool;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The estimator-accuracy bound the controller is held to on these small
/// workloads: estimate and realized latency within 3x of each other.
const ACCURACY_BOUND: f64 = 3.0;

fn protein(seed: u64) -> SyntheticProtein {
    let ff = ForceField::charmm_like();
    let mut spec = ProteinSpec::small_test();
    spec.seed = seed;
    SyntheticProtein::generate(&spec, &ff)
}

fn request(protein: &SyntheticProtein, tag: &str, class: LatencyClass) -> MappingRequest {
    let ff = ForceField::charmm_like();
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 2;
    config.conformations_per_probe = 2;
    MappingRequest::new(protein.clone(), ff, vec![ProbeType::Ethanol], config)
        .with_tag(tag)
        .with_class(class)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Calibrate on one job, then burst a mixed stream and compare every
    /// recorded admission-time estimate to the realized modeled latency.
    #[test]
    fn calibrated_estimates_track_realized_latencies(
        pool_size in 1usize..5,
        n_jobs in 2usize..6,
        class_mask in 0u8..4,
        cold_mix in 0u8..2,
    ) {
        let warm_receptor = protein(1000);
        let cold_receptor = protein(2000);
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(pool_size)))
            .batch(BatchConfig { max_batch_jobs: 2, ..BatchConfig::default() })
            .build();
        // Calibration: one completed batch teaches the cost model the
        // per-weight kernel cost and the cold-upload cost.
        service
            .submit(request(&warm_receptor, "calibrate", LatencyClass::Bulk))
            .expect_admitted("calibration job")
            .wait();

        let handles: Vec<_> = (0..n_jobs)
            .map(|i| {
                let class = if (class_mask >> (i % 2)) & 1 == 1 {
                    LatencyClass::Interactive
                } else {
                    LatencyClass::Bulk
                };
                let receptor =
                    if cold_mix == 1 && i % 2 == 1 { &cold_receptor } else { &warm_receptor };
                service
                    .submit(request(receptor, &format!("j{i}"), class))
                    .expect_admitted("admitted")
            })
            .collect();
        let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
        service.shutdown();

        for report in &reports {
            let estimate = report
                .estimated_latency_s
                .expect("a calibrated service records an estimate on every admission");
            prop_assert!(estimate > 0.0, "{}: estimate must be positive", report.tag);
            let realized = report.latency_modeled_s;
            prop_assert!(realized > 0.0, "{}: realized latency must be positive", report.tag);
            let ratio = estimate / realized;
            prop_assert!(
                (1.0 / ACCURACY_BOUND..=ACCURACY_BOUND).contains(&ratio),
                "{}: estimate {estimate:.6}s vs realized {realized:.6}s (ratio {ratio:.3}) \
                 escapes the {ACCURACY_BOUND}x bound",
                report.tag
            );
        }
    }
}

/// With a receptor in-flight cap of 1, a deep backlog of one receptor is
/// forced into strictly single-job batches: the cap bounds co-residency at
/// batch formation, not just queue order.
#[test]
fn receptor_cap_bounds_per_batch_co_residency() {
    let receptor = protein(1000);
    let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
        .batch(BatchConfig { max_batch_jobs: 4, ..BatchConfig::default() })
        .admission(AdmissionConfig {
            max_inflight_per_receptor: Some(1),
            ..AdmissionConfig::default()
        })
        .build();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            service
                .submit(request(&receptor, &format!("job-{i}"), LatencyClass::Bulk))
                .expect_admitted("admitted")
        })
        .collect();
    let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
    service.shutdown();

    let mut batches = std::collections::BTreeSet::new();
    for report in &reports {
        assert_eq!(
            report.batch.jobs, 1,
            "{}: the cap must keep a hot receptor's batches single-job",
            report.tag
        );
        batches.insert(report.batch.batch_index);
    }
    assert_eq!(batches.len(), 4, "one batch per job under the in-flight cap");
}

/// Weighted tenant quotas bound how many of one tenant's jobs a batch may
/// co-schedule — and never starve anyone: every tenant's allowance is at
/// least one job, so all jobs complete.
#[test]
fn tenant_quotas_bound_per_batch_share_without_starvation() {
    let receptor = protein(1000);
    // Budget 4 over weights {hot: 1, light: 1, default pool: 1} = allowance
    // round(4/3) = 1 job in flight per tenant.
    let admission = AdmissionConfig {
        tenant_quotas: vec![
            TenantQuota { tenant: "hot".into(), weight: 1.0 },
            TenantQuota { tenant: "light".into(), weight: 1.0 },
        ],
        quota_inflight_total: 4,
        ..AdmissionConfig::default()
    };
    let allowance = admission.tenant_allowance("hot", 4);
    assert_eq!(allowance, 1);
    let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
        .batch(BatchConfig { max_batch_jobs: 8, ..BatchConfig::default() })
        .admission(admission)
        .build();

    let mut handles = Vec::new();
    for i in 0..6 {
        let job = request(&receptor, &format!("hot-{i}"), LatencyClass::Bulk).with_tenant("hot");
        handles.push(service.submit(job).expect_admitted("hot admitted"));
    }
    for i in 0..2 {
        let job =
            request(&receptor, &format!("light-{i}"), LatencyClass::Bulk).with_tenant("light");
        handles.push(service.submit(job).expect_admitted("light admitted"));
    }
    let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
    service.shutdown();
    assert_eq!(reports.len(), 8, "quotas must never starve a tenant");

    // Per batch, per tenant: never more jobs than the allowance.
    let mut per_batch: BTreeMap<usize, BTreeMap<&str, usize>> = BTreeMap::new();
    for report in &reports {
        let tenant = if report.tag.starts_with("hot-") { "hot" } else { "light" };
        *per_batch.entry(report.batch.batch_index).or_default().entry(tenant).or_default() += 1;
    }
    for (batch, tenants) in &per_batch {
        for (tenant, jobs) in tenants {
            assert!(
                *jobs <= allowance,
                "batch {batch}: {jobs} jobs of tenant {tenant} exceed the allowance {allowance}"
            );
        }
    }
}
