//! Radix-2 complex FFT (1-D and 3-D) and FFT-based cyclic correlation.
//!
//! PIPER scores each rotation with up to 22 independent 3-D correlations evaluated
//! via the convolution theorem: `corr(R, L) = IFFT( FFT(R) * conj(FFT(L)) )`.
//! This module supplies that baseline. It is a textbook iterative Cooley–Tukey
//! implementation — adequate for the `O(N^3 log N)` vs `O(N^3 * n^3)` comparison the
//! paper makes (FFT correlation vs direct correlation for small probe grids), and kept
//! dependency-free because no FFT crate is on the approved offline list.
//!
//! Sizes must be powers of two; [`next_pow2`] is used by the docking engine to pad
//! grids up to a legal transform size.

use crate::{Complex, Real};

/// Returns the smallest power of two that is `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut p = 1usize;
    while p < n {
        p <<= 1;
    }
    p
}

/// Returns true if `n` is a power of two (and nonzero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward transform (negative exponent convention).
    Forward,
    /// Inverse transform (positive exponent, scaled by `1/N` at the end).
    Inverse,
}

/// In-place iterative radix-2 FFT over a power-of-two-length buffer.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    assert!(is_pow2(n), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as Real;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv = 1.0 / n as Real;
        for x in data.iter_mut() {
            *x = x.scale(inv);
        }
    }
}

/// Convenience wrapper returning a transformed copy.
pub fn fft(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let mut out = data.to_vec();
    fft_in_place(&mut out, dir);
    out
}

/// A 3-D FFT plan for fixed power-of-two dimensions `(nx, ny, nz)`.
///
/// The plan owns scratch buffers so repeated transforms (22 correlations × 500
/// rotations in PIPER) do not allocate. Data layout is row-major with `z` fastest:
/// `index = (x * ny + y) * nz + z`, matching [`crate::Grid3`].
#[derive(Debug, Clone)]
pub struct Fft3Plan {
    nx: usize,
    ny: usize,
    nz: usize,
    scratch: Vec<Complex>,
}

impl Fft3Plan {
    /// Creates a plan for the given dimensions.
    ///
    /// # Panics
    /// Panics if any dimension is not a power of two.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            is_pow2(nx) && is_pow2(ny) && is_pow2(nz),
            "FFT3 dimensions must be powers of two, got ({nx}, {ny}, {nz})"
        );
        let max_dim = nx.max(ny).max(nz);
        Fft3Plan { nx, ny, nz, scratch: vec![Complex::ZERO; max_dim] }
    }

    /// Plan dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of elements the plan transforms.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the plan covers zero elements (never in practice; kept for API hygiene).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.ny + y) * self.nz + z
    }

    /// In-place 3-D transform of `data` (length must equal `self.len()`).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan size.
    pub fn transform_in_place(&mut self, data: &mut [Complex], dir: Direction) {
        assert_eq!(data.len(), self.len(), "FFT3 buffer length mismatch");
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);

        // Transform along z (contiguous rows).
        for x in 0..nx {
            for y in 0..ny {
                let base = self.index(x, y, 0);
                fft_in_place(&mut data[base..base + nz], dir);
            }
        }

        // Transform along y (stride nz).
        for x in 0..nx {
            for z in 0..nz {
                for y in 0..ny {
                    self.scratch[y] = data[self.index(x, y, z)];
                }
                fft_in_place(&mut self.scratch[..ny], dir);
                for y in 0..ny {
                    data[self.index(x, y, z)] = self.scratch[y];
                }
            }
        }

        // Transform along x (stride ny*nz).
        for y in 0..ny {
            for z in 0..nz {
                for x in 0..nx {
                    self.scratch[x] = data[self.index(x, y, z)];
                }
                fft_in_place(&mut self.scratch[..nx], dir);
                for x in 0..nx {
                    data[self.index(x, y, z)] = self.scratch[x];
                }
            }
        }
    }

    /// Cyclic cross-correlation of two real-valued volumes via the convolution theorem.
    ///
    /// Returns `corr[d] = sum_k a[k] * b[k + d]` with cyclic wrap-around, the PIPER
    /// scoring sum of Equation (1) when `a` is the receptor (protein) function and `b`
    /// the rotated-ligand function padded to the receptor grid size.
    pub fn correlate_real(&mut self, a: &[Real], b: &[Real]) -> Vec<Real> {
        assert_eq!(a.len(), self.len(), "correlate_real: lhs length mismatch");
        assert_eq!(b.len(), self.len(), "correlate_real: rhs length mismatch");

        let mut fa: Vec<Complex> = a.iter().map(|&v| Complex::from_real(v)).collect();
        let mut fb: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
        self.transform_in_place(&mut fa, Direction::Forward);
        self.transform_in_place(&mut fb, Direction::Forward);
        // Correlation theorem: FFT(corr) = conj(FFT(a)) .* FFT(b)
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x = x.conj() * *y;
        }
        self.transform_in_place(&mut fa, Direction::Inverse);
        fa.into_iter().map(|c| c.re).collect()
    }

    /// Estimated floating-point operation count of one forward or inverse transform
    /// (used by the device-model cost accounting): `5 N log2 N` per complex FFT.
    pub fn flops_per_transform(&self) -> u64 {
        let n = self.len() as u64;
        let logn =
            (self.nx.trailing_zeros() + self.ny.trailing_zeros() + self.nz.trailing_zeros()) as u64;
        5 * n * logn.max(1)
    }
}

/// Naive `O(N^2)` discrete Fourier transform, used only by tests as an oracle for the FFT.
pub fn dft_reference(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = data.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::ZERO; n];
    for (k, item) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in data.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * t) as Real / n as Real;
            acc += x * Complex::cis(ang);
        }
        *item = if dir == Direction::Inverse { acc / n as Real } else { acc };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(128), 128);
    }

    #[test]
    fn is_pow2_values() {
        assert!(!is_pow2(0));
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(!is_pow2(48));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut data = vec![Complex::ZERO; 6];
        fft_in_place(&mut data, Direction::Forward);
    }

    #[test]
    fn fft_matches_dft_reference() {
        for &n in &[2usize, 4, 8, 16, 32] {
            let signal = random_signal(n, n as u64);
            let fast = fft(&signal, Direction::Forward);
            let slow = dft_reference(&signal, Direction::Forward);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(approx_eq(a.re, b.re, 1e-8), "n={n}: {a:?} vs {b:?}");
                assert!(approx_eq(a.im, b.im, 1e-8), "n={n}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn fft_round_trip_recovers_signal() {
        let signal = random_signal(64, 7);
        let mut data = signal.clone();
        fft_in_place(&mut data, Direction::Forward);
        fft_in_place(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(&signal) {
            assert!(approx_eq(a.re, b.re, 1e-9));
            assert!(approx_eq(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        fft_in_place(&mut data, Direction::Forward);
        for c in &data {
            assert!(approx_eq(c.re, 1.0, 1e-12));
            assert!(approx_eq(c.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_linearity() {
        let a = random_signal(32, 1);
        let b = random_signal(32, 2);
        let summed: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a, Direction::Forward);
        let fb = fft(&b, Direction::Forward);
        let fsum = fft(&summed, Direction::Forward);
        for i in 0..32 {
            let expect = fa[i] + fb[i];
            assert!(approx_eq(fsum[i].re, expect.re, 1e-9));
            assert!(approx_eq(fsum[i].im, expect.im, 1e-9));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let signal = random_signal(128, 3);
        let spectrum = fft(&signal, Direction::Forward);
        let time_energy: Real = signal.iter().map(|c| c.norm_sq()).sum();
        let freq_energy: Real = spectrum.iter().map(|c| c.norm_sq()).sum::<Real>() / 128.0;
        assert!(approx_eq(time_energy, freq_energy, 1e-9));
    }

    #[test]
    fn fft3_round_trip() {
        let mut plan = Fft3Plan::new(4, 8, 4);
        let mut rng = SmallRng::seed_from_u64(11);
        let original: Vec<Complex> =
            (0..plan.len()).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let mut data = original.clone();
        plan.transform_in_place(&mut data, Direction::Forward);
        plan.transform_in_place(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(&original) {
            assert!(approx_eq(a.re, b.re, 1e-9));
            assert!(approx_eq(a.im, b.im, 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn fft3_rejects_bad_dims() {
        let _ = Fft3Plan::new(3, 4, 4);
    }

    /// Brute-force cyclic correlation oracle.
    fn direct_cyclic_correlation(
        a: &[Real],
        b: &[Real],
        nx: usize,
        ny: usize,
        nz: usize,
    ) -> Vec<Real> {
        let idx = |x: usize, y: usize, z: usize| (x * ny + y) * nz + z;
        let mut out = vec![0.0; a.len()];
        for dx in 0..nx {
            for dy in 0..ny {
                for dz in 0..nz {
                    let mut acc = 0.0;
                    for x in 0..nx {
                        for y in 0..ny {
                            for z in 0..nz {
                                let xx = (x + dx) % nx;
                                let yy = (y + dy) % ny;
                                let zz = (z + dz) % nz;
                                acc += a[idx(x, y, z)] * b[idx(xx, yy, zz)];
                            }
                        }
                    }
                    out[idx(dx, dy, dz)] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn fft_correlation_matches_direct() {
        let (nx, ny, nz) = (4usize, 4usize, 8usize);
        let n = nx * ny * nz;
        let mut rng = SmallRng::seed_from_u64(21);
        let a: Vec<Real> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<Real> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut plan = Fft3Plan::new(nx, ny, nz);
        let via_fft = plan.correlate_real(&a, &b);
        let direct = direct_cyclic_correlation(&a, &b, nx, ny, nz);
        for (f, d) in via_fft.iter().zip(&direct) {
            assert!(approx_eq(*f, *d, 1e-7), "{f} vs {d}");
        }
    }

    #[test]
    fn flops_estimate_monotone_in_size() {
        let small = Fft3Plan::new(4, 4, 4).flops_per_transform();
        let large = Fft3Plan::new(8, 8, 8).flops_per_transform();
        assert!(large > small);
    }
}
