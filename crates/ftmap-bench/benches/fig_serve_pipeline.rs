//! Serve-layer pipelining figure: what the cross-batch phased dispatcher and
//! latency classes buy over the two-phase-barrier, FIFO service.
//!
//! Two measurements on a 4 × Tesla C1060 pool, one receptor:
//!
//! 1. **Throughput** — a stream of single-probe bulk jobs (1 dock item, many
//!    pose blocks each; `max_batch_jobs: 1` so every job is its own batch).
//!    The barrier dispatcher runs batches serially, idling the pool at every
//!    phase boundary (a 1-probe dock phase busies 1 of 4 devices); the
//!    pipelined dispatcher fills those holes with the next batch's work. The
//!    figure is the ratio of total modeled span (barrier ÷ pipelined) —
//!    **CI-gated at ≥ 1.3×**.
//! 2. **Interactive latency under bulk load** — the same bulk stream with
//!    small interactive jobs submitted after it. FIFO baseline: interactive
//!    jobs carry `LatencyClass::Bulk`, so they wait out the whole queue.
//!    Priority run: `LatencyClass::Interactive`, so their batches overtake at
//!    item boundaries (aging-bounded). The figure is the ratio of the
//!    interactive jobs' p95 modeled latency (priority ÷ FIFO) — **CI-gated at
//!    ≤ 0.5×**.
//!
//! Results are written to `BENCH_SERVE_PIPELINE.json` at the workspace root;
//! the committed snapshot is the bench-trend baseline (`bench_trend` fails CI
//! if a gated metric regresses > 15% against it).
//!
//! Run with: `cargo bench -p ftmap-bench --bench fig_serve_pipeline`
//! (`FTMAP_SERVE_PIPELINE_JOBS` scales the bulk-job count for local
//! experiments; CI runs the full default scale — the latency ratio depends
//! on queue depth, so the trend gate must compare like with like).

use ftmap_core::{FtMapConfig, PipelineMode};
use ftmap_molecule::{ForceField, ProbeType, ProteinSpec, SyntheticProtein};
use ftmap_serve::service::ClassLatency;
use ftmap_serve::{
    BatchMappingService, DispatchMode, JobReport, LatencyClass, MappingRequest, Observability,
    ServeConfig,
};
use gpu_sim::sched::DevicePool;
use std::sync::Arc;
use std::time::Instant;

/// Throughput gate: minimum pipelined-over-barrier modeled span ratio.
const MIN_PIPELINE_SPEEDUP: f64 = 1.3;
/// Latency gate: maximum priority-over-FIFO interactive p95 ratio.
const MAX_INTERACTIVE_P95_RATIO: f64 = 0.5;
/// Observability gate: maximum traced-over-untraced modeled span ratio.
/// Instrumentation feeds off the modeled timeline and must never perturb it —
/// a full recorder run and the default no-op-sink run are the same schedule,
/// so anything above 1% modeled drift means a hook started charging time.
/// The same ceiling covers the flight-recorder sink (ring buffer + SLO
/// engine + tail-sampled retention): the heaviest observability wiring the
/// service supports must still leave the schedule untouched.
const MAX_TRACE_OVERHEAD_RATIO: f64 = 1.01;

const DEVICES: usize = 4;

fn base_config() -> FtMapConfig {
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 2;
    config.conformations_per_probe = 8;
    config
}

/// A heavy bulk job: one probe, 8 retained poses — 1 dock item + 4 pose
/// blocks at `pose_block: 2`, so its dock phase busies 1 of 4 devices.
fn bulk_job(protein: &SyntheticProtein, ff: &ForceField, i: usize) -> MappingRequest {
    MappingRequest::new(protein.clone(), ff.clone(), vec![ProbeType::Ethanol], base_config())
        .with_tag(format!("bulk-{i}"))
}

/// A small interactive job: one probe, one pose.
fn interactive_job(
    protein: &SyntheticProtein,
    ff: &ForceField,
    i: usize,
    class: LatencyClass,
) -> MappingRequest {
    let mut config = base_config();
    config.conformations_per_probe = 1;
    MappingRequest::new(protein.clone(), ff.clone(), vec![ProbeType::Urea], config)
        .with_tag(format!("inter-{i}"))
        .with_class(class)
}

fn serve_config(dispatch: DispatchMode) -> ServeConfig {
    ServeConfig {
        dispatch,
        max_batch_jobs: 1, // one job per batch: the batch stream the pipeline overlaps
        pose_block: 2,
        max_inflight_batches: 2,
        bulk_aging: 4,
        ..ServeConfig::default()
    }
}

struct RunOutcome {
    reports: Vec<Arc<JobReport>>,
    span_modeled_s: f64,
    cross_batch_overlap_s: f64,
    wall_s: f64,
}

/// Runs `jobs` through a fresh service (fresh pool) and collects the modeled
/// figures. `BatchMappingService::new` installs the no-op trace sink, so this
/// is the untraced baseline the overhead gate compares against.
fn run(dispatch: DispatchMode, jobs: Vec<MappingRequest>) -> RunOutcome {
    run_with_sink(dispatch, jobs, ftmap_trace::noop())
}

/// [`run`] with an explicit trace sink attached to the service.
fn run_with_sink(
    dispatch: DispatchMode,
    jobs: Vec<MappingRequest>,
    sink: Arc<dyn ftmap_trace::TraceSink>,
) -> RunOutcome {
    run_with_observability(dispatch, jobs, Observability::trace(sink))
}

/// [`run`] with full observability wiring — trace sink, SLO engine, and
/// (optionally) the tail-sampling flight recorder.
fn run_with_observability(
    dispatch: DispatchMode,
    jobs: Vec<MappingRequest>,
    observability: Observability,
) -> RunOutcome {
    let pool = Arc::new(DevicePool::tesla(DEVICES));
    let service =
        BatchMappingService::with_observability(pool, serve_config(dispatch), observability);
    let start = Instant::now();
    let handles: Vec<_> = jobs.into_iter().map(|r| service.submit(r).expect("admitted")).collect();
    let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
    let wall_s = start.elapsed().as_secs_f64();
    let stats = service.shutdown();
    RunOutcome {
        reports,
        span_modeled_s: stats.span_modeled_s,
        cross_batch_overlap_s: stats.cross_batch_overlap_modeled_s,
        wall_s,
    }
}

/// p95 of the tagged jobs' modeled batch latencies — through the service's
/// own [`ClassLatency`] summary, so the gate measures exactly the percentile
/// definition `ServeStats` reports.
fn p95_latency(reports: &[Arc<JobReport>], tag_prefix: &str) -> f64 {
    let latencies: Vec<f64> = reports
        .iter()
        .filter(|r| r.tag.starts_with(tag_prefix))
        .map(|r| r.batch.latency_modeled_s)
        .collect();
    assert!(!latencies.is_empty(), "no jobs tagged {tag_prefix}*");
    ClassLatency::from_samples(&latencies).p95_s
}

fn main() {
    let n_bulk: usize = std::env::var("FTMAP_SERVE_PIPELINE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.clamp(4, 64))
        .unwrap_or(8);
    let n_interactive = 4usize;
    println!(
        "fig_serve_pipeline: {n_bulk} bulk + {n_interactive} interactive jobs, \
         1 receptor, {DEVICES} x Tesla C1060, pose_block 2, 1 job/batch"
    );

    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let bulk_jobs =
        |n: usize| -> Vec<MappingRequest> { (0..n).map(|i| bulk_job(&protein, &ff, i)).collect() };

    // --- 1. Throughput: bulk stream, barrier vs pipelined.
    let barrier = run(DispatchMode::Barrier, bulk_jobs(n_bulk));
    let pipelined = run(DispatchMode::Pipelined, bulk_jobs(n_bulk));
    let speedup = barrier.span_modeled_s / pipelined.span_modeled_s.max(1e-12);
    println!("\n{:<40}{:>14}{:>16}{:>12}", "dispatcher", "modeled ms", "overlap ms", "wall ms");
    for (label, outcome) in
        [("two-phase barrier (serial batches)", &barrier), ("pipelined (cross-batch)", &pipelined)]
    {
        println!(
            "{:<40}{:>14.3}{:>16.3}{:>12.0}",
            label,
            1e3 * outcome.span_modeled_s,
            1e3 * outcome.cross_batch_overlap_s,
            1e3 * outcome.wall_s
        );
    }
    println!("pipelined throughput speedup: {speedup:.2}x");
    assert!(barrier.cross_batch_overlap_s == 0.0, "barrier batches must be serial");
    assert!(pipelined.cross_batch_overlap_s > 0.0, "pipelining must overlap batches");

    // --- Observability overhead: the same pipelined stream with a full
    // trace recorder attached. Tracing reads the modeled timeline, it never
    // writes it — the traced span must equal the no-op-sink span.
    let recorder = Arc::new(ftmap_trace::Recorder::new());
    let traced = run_with_sink(
        DispatchMode::Pipelined,
        bulk_jobs(n_bulk),
        Arc::clone(&recorder) as Arc<dyn ftmap_trace::TraceSink>,
    );
    let trace_events = recorder.events().len();
    let trace_overhead = traced.span_modeled_s / pipelined.span_modeled_s.max(1e-12);
    println!(
        "\ntraced rerun: {:.3} ms modeled span over {} trace events \
         ({:.4}x the untraced span)",
        1e3 * traced.span_modeled_s,
        trace_events,
        trace_overhead
    );
    assert!(trace_events > 0, "the recorder run must capture events");

    // --- Flight recorder: the heaviest observability wiring — bounded ring
    // sink + per-job SLO evaluation + tail-sampled tree retention (an
    // unmeetable 0 s bulk target makes every request breach, so retention is
    // exercised on every job). Same schedule, same gate.
    let flight = Arc::new(ftmap_trace::FlightRecorder::new());
    let flight_run = run_with_observability(
        DispatchMode::Pipelined,
        bulk_jobs(n_bulk),
        Observability::flight(
            Arc::clone(&flight),
            vec![ftmap_trace::SloSpec::new(LatencyClass::Bulk.name(), 0.0, 0.99)],
        ),
    );
    let flight_retained = flight.retained_total();
    let flight_overhead = flight_run.span_modeled_s / pipelined.span_modeled_s.max(1e-12);
    println!(
        "flight rerun: {:.3} ms modeled span, {} ring events, {} retained trees \
         ({:.4}x the untraced span)",
        1e3 * flight_run.span_modeled_s,
        flight.ring_len(),
        flight_retained,
        flight_overhead
    );
    assert!(flight.ring_len() > 0, "the flight ring must capture events");
    assert!(
        flight_retained as usize == n_bulk,
        "the unmeetable SLO must retain every request's tree"
    );

    // --- 2. Interactive latency under bulk load: FIFO vs priority classes.
    let mixed = |class: LatencyClass| -> Vec<MappingRequest> {
        let mut jobs = bulk_jobs(n_bulk);
        jobs.extend((0..n_interactive).map(|i| interactive_job(&protein, &ff, i, class)));
        jobs
    };
    let fifo = run(DispatchMode::Pipelined, mixed(LatencyClass::Bulk));
    let classed = run(DispatchMode::Pipelined, mixed(LatencyClass::Interactive));
    let fifo_p95 = p95_latency(&fifo.reports, "inter-");
    let classed_p95 = p95_latency(&classed.reports, "inter-");
    let latency_ratio = classed_p95 / fifo_p95.max(1e-12);
    println!(
        "\ninteractive p95 modeled latency: FIFO {:.3} ms, priority {:.3} ms ({:.2}x)",
        1e3 * fifo_p95,
        1e3 * classed_p95,
        latency_ratio
    );

    let json = format_json(
        n_bulk,
        n_interactive,
        &barrier,
        &pipelined,
        speedup,
        fifo_p95,
        classed_p95,
        latency_ratio,
        &traced,
        trace_events,
        trace_overhead,
        &flight_run,
        flight_retained,
        flight_overhead,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE_PIPELINE.json");
    std::fs::write(path, json).expect("write BENCH_SERVE_PIPELINE.json");
    println!("wrote {path}");

    assert!(
        speedup >= MIN_PIPELINE_SPEEDUP,
        "REGRESSION: pipelined dispatch {speedup:.2}x over the barrier fell below the \
         {MIN_PIPELINE_SPEEDUP}x gate"
    );
    assert!(
        latency_ratio <= MAX_INTERACTIVE_P95_RATIO,
        "REGRESSION: interactive p95 under priority is {latency_ratio:.2}x FIFO, above the \
         {MAX_INTERACTIVE_P95_RATIO}x gate"
    );
    assert!(
        trace_overhead <= MAX_TRACE_OVERHEAD_RATIO,
        "REGRESSION: tracing inflated the modeled span {trace_overhead:.4}x, above the \
         {MAX_TRACE_OVERHEAD_RATIO}x gate — a hook is charging modeled time"
    );
    assert!(
        flight_overhead <= MAX_TRACE_OVERHEAD_RATIO,
        "REGRESSION: the flight-recorder sink (ring + SLO engine + retention) inflated the \
         modeled span {flight_overhead:.4}x, above the {MAX_TRACE_OVERHEAD_RATIO}x gate"
    );
    println!(
        "gates ok: throughput {speedup:.2}x >= {MIN_PIPELINE_SPEEDUP}x, \
         interactive p95 {latency_ratio:.2}x <= {MAX_INTERACTIVE_P95_RATIO}x, \
         trace overhead {trace_overhead:.4}x <= {MAX_TRACE_OVERHEAD_RATIO}x, \
         flight overhead {flight_overhead:.4}x <= {MAX_TRACE_OVERHEAD_RATIO}x"
    );
}

// lint-allow(justified-allows): the JSON row simply has this many fields;
// a one-use builder struct would double the code for a bench formatter.
#[allow(clippy::too_many_arguments)]
fn format_json(
    n_bulk: usize,
    n_interactive: usize,
    barrier: &RunOutcome,
    pipelined: &RunOutcome,
    speedup: f64,
    fifo_p95: f64,
    classed_p95: f64,
    latency_ratio: f64,
    traced: &RunOutcome,
    trace_events: usize,
    trace_overhead: f64,
    flight_run: &RunOutcome,
    flight_retained: u64,
    flight_overhead: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"figure\": \"serve-layer pipelining: cross-batch phase overlap + latency classes\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": \"{n_bulk} bulk jobs (1 probe x 8 poses) + {n_interactive} interactive \
         jobs (1 probe x 1 pose), one receptor, {DEVICES} x Tesla C1060, pose_block 2, \
         max_batch_jobs 1\",\n"
    ));
    out.push_str(
        "  \"model\": \"virtual-timeline span over the pool (gpu_sim::sched::PhasePipeline); \
         barrier spans are back-to-back batch makespans\",\n",
    );
    out.push_str("  \"throughput\": {\n");
    out.push_str(&format!(
        "    \"barrier_span_ms\": {:.4},\n    \"pipelined_span_ms\": {:.4},\n    \
         \"cross_batch_overlap_ms\": {:.4},\n    \"speedup\": {:.4}\n  }},\n",
        1e3 * barrier.span_modeled_s,
        1e3 * pipelined.span_modeled_s,
        1e3 * pipelined.cross_batch_overlap_s,
        speedup
    ));
    out.push_str("  \"interactive_latency\": {\n");
    out.push_str(&format!(
        "    \"fifo_p95_ms\": {:.4},\n    \"priority_p95_ms\": {:.4},\n    \
         \"priority_over_fifo\": {:.4}\n  }},\n",
        1e3 * fifo_p95,
        1e3 * classed_p95,
        latency_ratio
    ));
    out.push_str("  \"trace_overhead\": {\n");
    out.push_str(&format!(
        "    \"noop_span_ms\": {:.4},\n    \"traced_span_ms\": {:.4},\n    \
         \"trace_events\": {trace_events},\n    \"traced_over_noop\": {trace_overhead:.4},\n    \
         \"flight_span_ms\": {:.4},\n    \"flight_retained_requests\": {flight_retained},\n    \
         \"flight_over_noop\": {flight_overhead:.4}\n  }},\n",
        1e3 * pipelined.span_modeled_s,
        1e3 * traced.span_modeled_s,
        1e3 * flight_run.span_modeled_s,
    ));
    out.push_str(&format!(
        "  \"gates\": {{\n    \"pipelined_speedup\": {{ \"metric\": \"barrier span over \
         pipelined span\", \"minimum\": {MIN_PIPELINE_SPEEDUP:.1}, \"measured\": {speedup:.4} \
         }},\n    \"interactive_p95\": {{ \"metric\": \"priority p95 over FIFO p95\", \
         \"maximum\": {MAX_INTERACTIVE_P95_RATIO:.1}, \"measured\": {latency_ratio:.4} }},\n    \
         \"noop_trace_overhead\": {{ \"metric\": \"traced span over no-op-sink span\", \
         \"maximum\": {MAX_TRACE_OVERHEAD_RATIO:.2}, \"measured\": {trace_overhead:.4} }},\n    \
         \"flight_trace_overhead\": {{ \"metric\": \"flight-recorder-sink span over no-op-sink \
         span\", \"maximum\": {MAX_TRACE_OVERHEAD_RATIO:.2}, \"measured\": {flight_overhead:.4} \
         }}\n  }}\n"
    ));
    out.push_str("}\n");
    out
}
