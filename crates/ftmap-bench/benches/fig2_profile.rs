//! Fig. 2: phase and per-step profile of the serial docking path.

use criterion::{criterion_group, criterion_main, Criterion};
use ftmap_bench::DockingWorkload;
use ftmap_math::Rotation;
use piper_dock::direct::SparseLigand;
use piper_dock::fft_engine::FftCorrelationEngine;
use piper_dock::grids::{GridSpec, LigandGrids, ReceptorGrids};
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let w = DockingWorkload::standard();
    let spec = GridSpec::centered_on(&w.protein.atoms, ftmap_bench::BENCH_GRID_DIM, 1.5);
    let receptor = ReceptorGrids::build(&w.protein.atoms, spec, 4);
    let fft = FftCorrelationEngine::new(&receptor);
    let ligand = LigandGrids::build(&w.probe.atoms, &Rotation::identity(), 1.5, 4);

    let mut group = c.benchmark_group("fig2_docking_steps");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("rotation_and_grid_assignment", |b| {
        b.iter(|| {
            std::hint::black_box(LigandGrids::build(&w.probe.atoms, &Rotation::identity(), 1.5, 4))
        })
    });
    group.bench_function("fft_correlation", |b| {
        b.iter(|| std::hint::black_box(fft.correlate_rotation(&ligand)))
    });
    let results = fft.correlate_rotation(&ligand);
    group.bench_function("accumulation_and_scoring", |b| {
        b.iter(|| {
            let desolv = piper_dock::filter::accumulate_desolvation(&results, 4);
            let scores = piper_dock::filter::score_grid(&results, &desolv, &Default::default(), 4);
            std::hint::black_box(piper_dock::filter::filter_top_k(&scores, 4, 3, 0))
        })
    });
    let sparse = SparseLigand::from_grids(&ligand);
    std::hint::black_box(sparse.len());
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
