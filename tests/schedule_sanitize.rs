//! The schedule sanitizer's acceptance gates, on a **real** traced run:
//!
//! * A warm pipelined serve workload's event stream replays cleanly — the
//!   scheduler actually honors the happens-before structure the sanitizer
//!   checks (dock→minimize edges, ready gating, serial device lanes, batch
//!   tallies, transfer attribution).
//! * The same guarantees survive the Chrome trace-event export/import round
//!   trip, which is the path CI's `trace_sanitize` binary exercises.
//! * Hand-mutated streams fail **loudly**: each corruption class applied to
//!   the real recording trips its named check. A sanitizer that stays quiet
//!   on corrupted data would be worse than none.

use ftmap::prelude::*;
use ftmap::trace::sanitize::EPS_S;
use ftmap::trace::{import_chrome_trace, Category, TraceEvent, Track};
use std::sync::Arc;

/// Runs a small warm serve workload (two devices, bulk + interactive mix)
/// and returns its resolved event stream.
fn traced_run() -> Vec<TraceEvent> {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 2;
    config.conformations_per_probe = 2;

    let recorder = Arc::new(Recorder::new());
    let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
        .batch(BatchConfig { max_batch_jobs: 2, ..BatchConfig::default() })
        .trace(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .build();
    let request = |tag: &str, probes: &[ProbeType]| {
        MappingRequest::new(protein.clone(), ff.clone(), probes.to_vec(), config.clone())
            .with_tag(tag)
    };
    let handles = vec![
        service
            .submit(request("bulk-0", &[ProbeType::Ethanol, ProbeType::Acetone]))
            .expect_admitted("admitted"),
        service.submit(request("bulk-1", &[ProbeType::Urea])).expect_admitted("admitted"),
        service
            .submit(request("fast-0", &[ProbeType::Benzene]).with_class(LatencyClass::Interactive))
            .expect_admitted("admitted"),
    ];
    for handle in &handles {
        handle.wait();
    }
    service.shutdown();
    recorder.events()
}

fn item_spans(events: &[TraceEvent]) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            matches!(e.track, Track::Device(_))
                && e.cat == Category::Sched
                && !e.is_instant()
                && (e.name == "dock" || e.name == "minimize")
        })
        .map(|(i, _)| i)
        .collect()
}

fn assert_catches(events: &[TraceEvent], check: &str, what: &str) {
    let report = sanitize(events);
    assert!(
        report.violations.iter().any(|v| v.check == check),
        "{what}: expected check {check:?} to fire, got {:?}",
        report.violations
    );
}

#[test]
fn real_pipelined_run_replays_clean_and_survives_the_export_round_trip() {
    let events = traced_run();
    let report = sanitize(&events);
    assert!(report.is_clean(), "real schedule flagged:\n{:#?}", report.violations);
    assert!(report.items >= 4, "run too small to exercise the checks: {} items", report.items);
    assert!(report.batches >= 1 && report.transfers >= 1 && report.devices == 2);

    // The CI path: export to Chrome trace JSON, import, replay again.
    let json = export_chrome_trace(&events);
    let imported = import_chrome_trace(&json).expect("re-import");
    let round_trip = sanitize(&imported);
    assert!(round_trip.is_clean(), "round-trip flagged:\n{:#?}", round_trip.violations);
    assert_eq!(round_trip.items, report.items);
    assert_eq!(round_trip.transfers, report.transfers);
}

#[test]
fn mutated_streams_fail_loudly() {
    let events = traced_run();
    assert!(sanitize(&events).is_clean());
    let items = item_spans(&events);
    let minimize_at = *items
        .iter()
        .find(|&&i| events[i].name == "minimize")
        .expect("run produced minimize items");
    let dock_at =
        *items.iter().find(|&&i| events[i].name == "dock").expect("run produced dock items");

    // 1. Swap a minimize item's start to before its dock dependency lands.
    let mut warped = events.clone();
    warped[minimize_at].start_s = 0.0;
    assert_catches(&warped, "happens-before", "time-warped minimize");

    // 2. Duplicate an executed item: same (batch, phase, probe, poses) twice.
    let mut doubled = events.clone();
    let copy = doubled[dock_at].clone();
    doubled.push(copy);
    assert_catches(&doubled, "duplicate-item", "duplicated dock item");

    // 3. Drop an executed item the batch span still accounts for.
    let mut lossy = events.clone();
    lossy.remove(minimize_at);
    assert_catches(&lossy, "lost-item", "dropped minimize item");

    // 4. Re-attribute a transfer to a different batch than the item it ran
    //    inside — the cross-batch double-counting the ledger must never see.
    let mut cross = events.clone();
    let transfer_at = cross
        .iter()
        .position(|e| e.cat == Category::Transfer && matches!(e.track, Track::Device(_)))
        .expect("run recorded device transfers");
    let owner = cross[transfer_at].tags.batch_seq.expect("transfers carry their batch");
    cross[transfer_at].tags.batch_seq = Some(owner + 1000);
    assert_catches(&cross, "cross-batch-transfer", "re-attributed transfer");

    // 5. Regress a device lane's clock: an item starts while the lane's
    //    previous item still runs.
    let mut regressed = events.clone();
    let (lane_a, lane_b) = {
        let device = regressed[dock_at].track;
        let mut on_lane = items.iter().filter(|&&i| events[i].track == device);
        (*on_lane.next().unwrap(), *on_lane.next().expect("lane ran at least two items"))
    };
    let (first, second) = if events[lane_a].start_s <= events[lane_b].start_s {
        (lane_a, lane_b)
    } else {
        (lane_b, lane_a)
    };
    regressed[second].start_s = events[first].start_s + EPS_S;
    assert_catches(&regressed, "lane-overlap", "regressed device clock");
}
