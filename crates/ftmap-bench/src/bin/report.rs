//! `report` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!   cargo run --release -p ftmap-bench --bin report                 # all experiments
//!   cargo run --release -p ftmap-bench --bin report -- table1       # one experiment
//!
//! Experiments: table1, table2, fig2a, fig2b, fig3a, fig3b, overall, batching,
//! crossover, pairslist-schemes, multicore.

use ftmap_bench::{format_table, ComparisonRow, DockingWorkload, MinimizationWorkload};
use ftmap_core::{FtMapConfig, FtMapPipeline, PipelineMode};
use ftmap_energy::minimize::EvaluationPath;
use ftmap_molecule::{ForceField, ProbeLibrary, ProbeType, ProteinSpec, SyntheticProtein};
use gpu_sim::Device;
use piper_dock::direct::SparseLigand;
use piper_dock::gpu::GpuDockingEngine;
use piper_dock::grids::{GridSpec, LigandGrids, ReceptorGrids};
use piper_dock::DockingEngineKind;

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run = |name: &str| filter == "all" || filter == name;

    if run("fig2a") {
        fig2a();
    }
    if run("fig2b") {
        fig2b();
    }
    if run("table1") {
        table1();
    }
    if run("fig3a") || run("fig3b") {
        fig3();
    }
    if run("table2") {
        table2();
    }
    if run("pairslist-schemes") {
        pairslist_schemes();
    }
    if run("batching") {
        batching();
    }
    if run("crossover") {
        crossover();
    }
    if run("multicore") {
        multicore();
    }
    if run("overall") {
        overall();
    }
}

fn fig2a() {
    println!("=== Fig. 2(a): FTMap phase split (serial pipeline) ===");
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::medium(), &ff);
    let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol]);
    let mut config = FtMapConfig::small_test(PipelineMode::Serial);
    config.docking.grid_dim = 32;
    config.docking.n_rotations = 8;
    config.conformations_per_probe = 6;
    config.minimization.max_iterations = 30;
    let result = FtMapPipeline::new(protein, ff, config).map(&library);
    let (dock, minim) = result.profile.wall_percentages();
    let rows = vec![
        ComparisonRow::new("Rigid docking", 7.0, dock),
        ComparisonRow::new("Energy minimization", 93.0, minim),
    ];
    println!("{}", format_table("Phase share of total runtime", "%", &rows));
}

fn fig2b() {
    println!("=== Fig. 2(b): per-rotation step split of serial FFT docking ===");
    let w = DockingWorkload::standard();
    let [rot, corr, accum, filt] = w.wall_percentages(DockingEngineKind::FftSerial);
    let rows = vec![
        ComparisonRow::new("FFT correlations", 93.0, corr),
        ComparisonRow::new("Rotation and grid assignment", 2.3, rot),
        ComparisonRow::new("Accumulation", 2.4, accum),
        ComparisonRow::new("Scoring and filtering", 2.3, filt),
    ];
    println!("{}", format_table("Step share of per-rotation time", "%", &rows));
}

fn table1() {
    println!("=== Table 1: per-rotation docking speedups (modeled Xeon core vs modeled C1060) ===");
    let w = DockingWorkload::standard();
    let serial = w.per_rotation_modeled_ms(DockingEngineKind::FftSerial);
    let gpu = w.per_rotation_modeled_ms(DockingEngineKind::Gpu { batch: 8 });
    let speedup = |i: usize| serial[i] / gpu[i].max(1e-12);
    let total_serial: f64 = serial.iter().sum();
    let total_gpu: f64 = gpu.iter().sum();
    let rows = vec![
        ComparisonRow::new("Rotation + grid assignment", 1.0, speedup(0)),
        ComparisonRow::new("Correlations", 267.0, speedup(1)),
        ComparisonRow::new("Accum. desolvation terms", 180.0, speedup(2)),
        ComparisonRow::new("Scoring and filtering", 6.67, speedup(3)),
        ComparisonRow::new("Total per rotation", 32.6, total_serial / total_gpu.max(1e-12)),
    ];
    println!("{}", format_table("Speedup per docking step", "x", &rows));
    println!(
        "(modeled per-rotation times, ms: serial {:?}, gpu {:?})\n",
        serial.map(|v| (v * 100.0).round() / 100.0),
        gpu.map(|v| (v * 1000.0).round() / 1000.0)
    );
}

fn fig3() {
    println!("=== Fig. 3: energy-minimization profile (serial host path) ===");
    let w = MinimizationWorkload::paper_scale();
    let device = Device::tesla_c1060();
    let (eval_frac, elec, vdw, bonded) = w.minimization_profile(EvaluationPath::Host, &device);
    let rows_a =
        vec![ComparisonRow::new("Energy evaluation share of iteration", 98.98, 100.0 * eval_frac)];
    println!("{}", format_table("Fig. 3(a)", "%", &rows_a));
    let rows_b = vec![
        ComparisonRow::new("Electrostatics", 94.4, elec),
        ComparisonRow::new("van der Waals", 5.38, vdw),
        ComparisonRow::new("Bonded", 0.2, bonded),
    ];
    println!("{}", format_table("Fig. 3(b): energy-evaluation split", "%", &rows_b));
}

fn table2() {
    println!("=== Table 2: minimization kernel speedups (measured serial vs modeled C1060) ===");
    let w = MinimizationWorkload::paper_scale();
    let device = Device::tesla_c1060();
    let (elec_ms, vdw_ms, _) = w.serial_iteration_ms();
    let (gpu_self_ms, gpu_pair_ms, gpu_force_ms) = w.gpu_iteration_ms(&device);
    // The paper's serial columns: self 6.15 ms, pairwise 2.75 ms, vdW 0.5 ms, force 0.95 ms.
    // Our serial evaluator times electrostatics (self + pairwise GB) together; split it
    // by the paper's own 6.15 : 2.75 ratio for the per-kernel comparison.
    let serial_self_ms = elec_ms * 6.15 / 8.9;
    let serial_pair_ms = elec_ms * 2.75 / 8.9 + vdw_ms;
    let serial_force_ms = 0.1 * (serial_self_ms + serial_pair_ms); // host update pass, ~10 %
    let rows = vec![
        ComparisonRow::new("Self energies", 26.7, serial_self_ms / gpu_self_ms.max(1e-12)),
        ComparisonRow::new(
            "Pairwise + van der Waals",
            17.0,
            serial_pair_ms / gpu_pair_ms.max(1e-12),
        ),
        ComparisonRow::new("Force updates", 6.7, serial_force_ms / gpu_force_ms.max(1e-12)),
    ];
    println!("{}", format_table("Speedup per minimization kernel", "x", &rows));
    println!(
        "(serial ms: self {serial_self_ms:.3}, pair+vdW {serial_pair_ms:.3}, force {serial_force_ms:.3}; modeled GPU ms: {gpu_self_ms:.4}, {gpu_pair_ms:.4}, {gpu_force_ms:.4})\n"
    );
}

fn pairslist_schemes() {
    println!("=== §IV.B ablation: neighbor-list vs pairs-list vs split assignment tables ===");
    let w = MinimizationWorkload::paper_scale();
    let device = Device::tesla_c1060();
    let (neighbor_ms, pairs_ms, split_ms) = w.scheme_comparison_ms(&device);
    println!("scheme                                   modeled ms per pass");
    println!("neighbor-list (one atom per block)       {neighbor_ms:>10.4}");
    println!("pairs-list + host accumulation           {pairs_ms:>10.4}");
    println!("split lists + assignment tables (final)  {split_ms:>10.4}");
    println!("paper: the pairs-list scheme reaches only ~3x over serial; the final scheme");
    println!("enables the 12.5x minimization speedup. The device model reproduces the ordering");
    println!("final < pairs-list; the neighbor-list scheme's intra-block load imbalance is not");
    println!("captured by merged counters (see EXPERIMENTS.md).\n");
}

fn batching() {
    println!("=== §III.A ablation: multi-rotation batching of direct correlation ===");
    let w = DockingWorkload::standard();
    let ff = &w.ff;
    let spec = GridSpec::centered_on(&w.protein.atoms, ftmap_bench::BENCH_GRID_DIM, 1.5);
    let receptor = ReceptorGrids::build(&w.protein.atoms, spec, 4);
    let device = Device::tesla_c1060();
    let gpu = GpuDockingEngine::new(&device, &receptor);
    let rotations = ftmap_math::RotationSet::uniform(8);
    let ligands: Vec<SparseLigand> = rotations
        .iter()
        .map(|r| SparseLigand::from_grids(&LigandGrids::build(&w.probe.atoms, r, 1.5, 4)))
        .collect();
    let _ = ff;

    println!("batch size   modeled ms per rotation   speedup vs batch=1");
    let mut per_rotation_1 = 0.0;
    for batch in [1usize, 2, 4, 8] {
        let mut total = 0.0;
        for chunk in ligands.chunks(batch) {
            let out = gpu.correlate_batch(chunk);
            total += out.stats.modeled_time_s + out.upload_time_s;
        }
        let per_rot = 1e3 * total / ligands.len() as f64;
        if batch == 1 {
            per_rotation_1 = per_rot;
        }
        println!("{batch:>10}   {per_rot:>23.4}   {:>18.2}", per_rotation_1 / per_rot);
    }
    println!("paper: 8 rotations per pass gave 2.7x over one rotation at a time.\n");
}

fn crossover() {
    println!("=== §III ablation: direct vs FFT correlation crossover ===");
    println!(
        "{:<12}{:>18}{:>16}{:>14}{:>10}",
        "footprint", "occupied voxels", "direct (ms)", "FFT (ms)", "winner"
    );
    for (dim, occupied, direct_ms, fft_ms) in ftmap_bench::crossover_sweep() {
        let winner = if direct_ms < fft_ms { "direct" } else { "FFT" };
        println!(
            "{:<12}{occupied:>18}{direct_ms:>16.2}{fft_ms:>14.2}{winner:>10}",
            format!("{dim}^3")
        );
    }
    println!("paper: direct correlation wins below a ligand-grid-size threshold; FTMap probes (<=4^3) are below it.\n");
}

fn multicore() {
    println!("=== §V.A: GPU vs multicore docking (modeled) ===");
    let w = DockingWorkload::standard();
    let serial: f64 = w.per_rotation_modeled_ms(DockingEngineKind::FftSerial).iter().sum();
    let multicore_fft: f64 =
        w.per_rotation_modeled_ms(DockingEngineKind::FftMulticore(4)).iter().sum();
    let multicore_direct: f64 =
        w.per_rotation_modeled_ms(DockingEngineKind::DirectMulticore(4)).iter().sum();
    let gpu: f64 = w.per_rotation_modeled_ms(DockingEngineKind::Gpu { batch: 8 }).iter().sum();
    let rows = vec![
        ComparisonRow::new("GPU vs serial FFT PIPER", 32.6, serial / gpu),
        ComparisonRow::new("GPU vs multicore FFT PIPER (4 cores)", 11.0, multicore_fft / gpu),
        ComparisonRow::new("GPU vs multicore direct PIPER (4 cores)", 6.0, multicore_direct / gpu),
    ];
    println!("{}", format_table("Docking speedups", "x", &rows));
}

fn overall() {
    println!("=== §V.B-C: minimization-phase and overall mapping speedups (modeled, scaled workload) ===");
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::medium(), &ff);
    let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Acetone]);
    let mut serial_cfg = FtMapConfig::small_test(PipelineMode::Serial);
    serial_cfg.docking.grid_dim = 32;
    serial_cfg.docking.n_rotations = 8;
    serial_cfg.conformations_per_probe = 4;
    serial_cfg.minimization.max_iterations = 20;
    let mut accel_cfg = FtMapConfig::small_test(PipelineMode::Accelerated);
    accel_cfg.docking.grid_dim = 32;
    accel_cfg.docking.n_rotations = 8;
    accel_cfg.conformations_per_probe = 4;
    accel_cfg.minimization.max_iterations = 20;

    let serial = FtMapPipeline::new(protein.clone(), ff.clone(), serial_cfg).map(&library);
    let accel = FtMapPipeline::new(protein, ff, accel_cfg).map(&library);

    let min_speedup =
        serial.profile.minimization_modeled_s / accel.profile.minimization_modeled_s.max(1e-12);
    let overall_speedup =
        serial.profile.total_modeled_s() / accel.profile.total_modeled_s().max(1e-12);
    let rows = vec![
        ComparisonRow::new("Energy minimization phase", 12.5, min_speedup),
        ComparisonRow::new("Overall mapping per probe", 13.0, overall_speedup),
    ];
    println!("{}", format_table("End-to-end speedups", "x", &rows));
    println!(
        "(paper absolute times: docking 30 min -> minimization 400 min -> total 435 min serial, 33 min GPU)\n"
    );
}
