//! Cross-crate integration tests: the full mapping pipeline, serial vs accelerated.

use ftmap::prelude::*;

fn small_setup(mode: PipelineMode) -> (FtMapPipeline, ProbeLibrary) {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Benzene]);
    let pipeline = FtMapPipeline::new(protein, ff, FtMapConfig::small_test(mode));
    (pipeline, library)
}

#[test]
fn end_to_end_mapping_finds_sites_in_both_modes() {
    for mode in [PipelineMode::Serial, PipelineMode::Accelerated] {
        let (pipeline, library) = small_setup(mode);
        let result = pipeline.map(&library);
        assert!(!result.sites.is_empty(), "{mode:?} produced no consensus sites");
        assert!(result.conformations_minimized > 0);
        // Ranks are consecutive starting at zero.
        for (i, site) in result.sites.iter().enumerate() {
            assert_eq!(site.rank, i);
            assert!(!site.cluster.members.is_empty());
        }
    }
}

#[test]
fn accelerated_mode_is_modeled_faster_than_serial() {
    let (serial, library) = small_setup(PipelineMode::Serial);
    let serial_result = serial.map(&library);
    let (accel, _) = small_setup(PipelineMode::Accelerated);
    let accel_result = accel.map(&library);
    let speedup =
        serial_result.profile.total_modeled_s() / accel_result.profile.total_modeled_s().max(1e-12);
    assert!(speedup > 1.0, "expected accelerated pipeline to win, speedup {speedup}");
}

#[test]
fn hotspot_lands_near_a_carved_pocket() {
    // The synthetic protein has concave pockets carved into its surface; the docking
    // scoring function rewards surface contact without core overlap, so the consensus
    // site should be within a few grid spacings of some pocket.
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::medium(), &ff);
    let pockets = protein.pocket_centers.clone();
    let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Acetone]);
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.grid_dim = 32;
    config.docking.spacing = 1.5;
    config.docking.n_rotations = 8;
    config.conformations_per_probe = 4;
    let pipeline = FtMapPipeline::new(protein, ff, config);
    let result = pipeline.map(&library);

    let top = result.top_hotspot().expect("a hotspot should be found");
    // The hotspot must lie inside the docking box (grid is 32 voxels × 1.5 Å centred on
    // the protein) and within the protein's neighbourhood of some carved pocket.
    assert!(top.norm() < 32.0 * 1.5, "top hotspot at {top:?} escaped the docking box");
    let nearest = pockets.iter().map(|p| p.distance(top)).fold(f64::INFINITY, f64::min);
    assert!(nearest < 30.0, "top hotspot at {top:?} is {nearest} Å from the nearest pocket");
}
