//! The sink trait instrumented layers emit into, and the no-op default.

use crate::event::TraceEvent;
use std::sync::Arc;

/// Receives trace events from instrumented layers.
///
/// The contract the instrumentation relies on: when [`TraceSink::enabled`]
/// returns `false`, callers skip event construction entirely — so a disabled
/// sink costs one virtual call (schedulers check once per item) or one
/// thread-local read (leaf hooks), never an allocation. [`NoopSink`] is the
/// canonical disabled sink and the default everywhere a sink is optional.
pub trait TraceSink: Send + Sync {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. Must be cheap and safe to call from any worker
    /// thread concurrently.
    fn record(&self, event: TraceEvent);

    /// How many recorded events this sink has since lost — orphaned anchored
    /// sub-events a [`crate::Recorder`] dropped at resolve time, or ring
    /// evictions in a bounded flight recorder. Trace data loss must itself be
    /// observable; the serve layer exports this as a gauge. Defaults to 0 for
    /// sinks that never drop.
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// The disabled sink: [`TraceSink::enabled`] is `false` and
/// [`TraceSink::record`] drops events (it is never reached by well-behaved
/// callers).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// A shared handle to the no-op sink — the default for every `with_trace`
/// seam in the stack.
pub fn noop() -> Arc<dyn TraceSink> {
    Arc::new(NoopSink)
}
