//! Kernel statistics and simple phase timers.
//!
//! [`KernelStats`] is what [`crate::Device::launch`] returns: the merged counters of all
//! blocks, the measured wall-clock time of the (CPU-parallel) execution and the modeled
//! device time from the cost model. [`PhaseTimer`] accumulates named phase durations —
//! it is how the docking and minimization pipelines regenerate the per-step breakdowns
//! of the paper's Figure 2 and Figure 3.

use crate::memory::MemoryCounters;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Statistics for one kernel launch (or one serial run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of blocks executed.
    pub blocks: usize,
    /// Threads per block configured for the launch.
    pub threads_per_block: usize,
    /// Merged counters over all blocks.
    pub counters: MemoryCounters,
    /// Measured wall-clock time of the CPU-parallel execution, seconds.
    pub wall_time_s: f64,
    /// Modeled device time from the cost model, seconds.
    pub modeled_time_s: f64,
}

impl KernelStats {
    /// A zeroed stats record (useful as an accumulator identity).
    pub fn zero() -> Self {
        KernelStats {
            blocks: 0,
            threads_per_block: 0,
            counters: MemoryCounters::new(),
            wall_time_s: 0.0,
            modeled_time_s: 0.0,
        }
    }

    /// Accumulates another launch into this record (blocks and times add, the thread
    /// count keeps the maximum).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.blocks += other.blocks;
        self.threads_per_block = self.threads_per_block.max(other.threads_per_block);
        self.counters.merge(&other.counters);
        self.wall_time_s += other.wall_time_s;
        self.modeled_time_s += other.modeled_time_s;
    }
}

/// Accumulates wall-clock durations (seconds) per named phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTimer {
    phases: BTreeMap<String, f64>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Times `f`, charging its duration to `phase`, and returns its result.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Adds `seconds` to `phase` directly (used when the duration is modeled rather
    /// than measured).
    pub fn add(&mut self, phase: &str, seconds: f64) {
        *self.phases.entry(phase.to_string()).or_insert(0.0) += seconds;
    }

    /// Accumulated seconds for a phase (0 if the phase was never recorded).
    pub fn get(&self, phase: &str) -> f64 {
        self.phases.get(phase).copied().unwrap_or(0.0)
    }

    /// Total seconds over all phases.
    pub fn total(&self) -> f64 {
        self.phases.values().sum()
    }

    /// All phases with their accumulated seconds, sorted by name.
    pub fn phases(&self) -> Vec<(String, f64)> {
        self.phases.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Each phase as a percentage of the total (empty if the total is zero).
    pub fn percentages(&self) -> Vec<(String, f64)> {
        let total = self.total();
        if total <= 0.0 {
            return Vec::new();
        }
        self.phases.iter().map(|(k, v)| (k.clone(), 100.0 * v / total)).collect()
    }

    /// Merges another timer into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (k, v) in &other.phases {
            self.add(k, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_stats_accumulate() {
        let mut total = KernelStats::zero();
        let a = KernelStats {
            blocks: 10,
            threads_per_block: 64,
            counters: MemoryCounters { flops: 100, ..Default::default() },
            wall_time_s: 0.5,
            modeled_time_s: 0.01,
        };
        let b = KernelStats {
            blocks: 5,
            threads_per_block: 128,
            counters: MemoryCounters { flops: 50, ..Default::default() },
            wall_time_s: 0.25,
            modeled_time_s: 0.02,
        };
        total.accumulate(&a);
        total.accumulate(&b);
        assert_eq!(total.blocks, 15);
        assert_eq!(total.threads_per_block, 128);
        assert_eq!(total.counters.flops, 150);
        assert!((total.wall_time_s - 0.75).abs() < 1e-12);
        assert!((total.modeled_time_s - 0.03).abs() < 1e-12);
    }

    #[test]
    fn phase_timer_accumulates_and_percentages() {
        let mut t = PhaseTimer::new();
        t.add("correlation", 93.0);
        t.add("rotation", 2.3);
        t.add("accumulation", 2.4);
        t.add("filtering", 2.3);
        assert!((t.total() - 100.0).abs() < 1e-12);
        assert_eq!(t.get("correlation"), 93.0);
        assert_eq!(t.get("missing"), 0.0);
        let pct = t.percentages();
        let corr = pct.iter().find(|(k, _)| k == "correlation").unwrap().1;
        assert!((corr - 93.0).abs() < 1e-9);
    }

    #[test]
    fn phase_timer_times_closures() {
        let mut t = PhaseTimer::new();
        let result = t.time("work", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(result > 0);
        assert!(t.get("work") > 0.0);
        // A second call accumulates rather than overwrites.
        t.time("work", || ());
        assert_eq!(t.phases().len(), 1);
    }

    #[test]
    fn phase_timer_merge() {
        let mut a = PhaseTimer::new();
        a.add("x", 1.0);
        let mut b = PhaseTimer::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
    }

    #[test]
    fn empty_percentages() {
        let t = PhaseTimer::new();
        assert!(t.percentages().is_empty());
        assert_eq!(t.total(), 0.0);
    }
}
