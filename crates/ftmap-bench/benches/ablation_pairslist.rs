//! §IV ablation: the three GPU mapping schemes for the pair-energy computation.

use criterion::{criterion_group, criterion_main, Criterion};
use ftmap_bench::MinimizationWorkload;
use ftmap_energy::gpu::{GpuMinimizationEngine, PairTerm};
use ftmap_energy::pairs::PairsList;
use gpu_sim::Device;
use std::time::Duration;

fn bench_schemes(c: &mut Criterion) {
    let w = MinimizationWorkload::medium();
    let device = Device::tesla_c1060();
    let engine = GpuMinimizationEngine::new(&device, w.ff.clone(), &w.neighbors);
    let pairs = PairsList::from_neighbor_list(&w.neighbors);

    let mut group = c.benchmark_group("ablation_pairslist_schemes");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("neighbor_list_scheme", |b| {
        b.iter(|| {
            std::hint::black_box(engine.scheme_neighbor_list(
                &w.complex,
                &w.neighbors,
                PairTerm::AceSelf,
            ))
        })
    });
    group.bench_function("pairs_list_host_accumulation", |b| {
        b.iter(|| {
            std::hint::black_box(engine.scheme_pairs_list_host_accum(
                &w.complex,
                &pairs,
                PairTerm::AceSelf,
            ))
        })
    });
    group.bench_function("split_assignment_tables", |b| {
        b.iter(|| {
            std::hint::black_box(engine.scheme_split_assignment(&w.complex, PairTerm::AceSelf))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
