//! Minimal complex arithmetic used by the FFT correlation baseline.
//!
//! PIPER computes pose scores as 3-D correlations evaluated with forward FFT,
//! per-voxel modulation by the conjugate, and inverse FFT. This module provides the
//! complex type those transforms operate on; it is deliberately small (no transcendental
//! functions beyond `exp(i\theta)`) and `Copy` so grids of complex numbers stay flat.

use crate::Real;
use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i*im` in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: Real,
    /// Imaginary part.
    pub im: Real,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: Real, im: Real) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: Real) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `exp(i * theta)` — the unit phasor used to build FFT twiddle factors.
    #[inline]
    pub fn cis(theta: Real) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> Real {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn norm(self) -> Real {
        self.norm_sq().sqrt()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: Real) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<Real> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Real) -> Complex {
        self.scale(rhs)
    }
}

impl Div<Real> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Real) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, c| acc + c)
    }
}

impl From<Real> for Complex {
    fn from(re: Real) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1 + 2i)(3 - i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a * 2.0, Complex::new(2.0, 4.0));
        assert_eq!(a / 2.0, Complex::new(0.5, 1.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!(approx_eq(a.norm(), 5.0, 1e-12));
        assert!(approx_eq(a.norm_sq(), 25.0, 1e-12));
        let prod = a * a.conj();
        assert!(approx_eq(prod.re, 25.0, 1e-12));
        assert!(approx_eq(prod.im, 0.0, 1e-12));
    }

    #[test]
    fn cis_unit_circle() {
        let q = Complex::cis(PI / 2.0);
        assert!(approx_eq(q.re, 0.0, 1e-12));
        assert!(approx_eq(q.im, 1.0, 1e-12));
        assert!(approx_eq(Complex::cis(0.3).norm(), 1.0, 1e-12));
        // cis(a) * cis(b) == cis(a + b)
        let lhs = Complex::cis(0.4) * Complex::cis(1.1);
        let rhs = Complex::cis(1.5);
        assert!(approx_eq(lhs.re, rhs.re, 1e-12));
        assert!(approx_eq(lhs.im, rhs.im, 1e-12));
    }

    #[test]
    fn sum_and_from() {
        let v = vec![Complex::ONE, Complex::I, Complex::new(2.0, 3.0)];
        let s: Complex = v.into_iter().sum();
        assert_eq!(s, Complex::new(3.0, 4.0));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }

    #[test]
    fn compound_assign() {
        let mut a = Complex::new(1.0, 1.0);
        a += Complex::ONE;
        assert_eq!(a, Complex::new(2.0, 1.0));
        a -= Complex::I;
        assert_eq!(a, Complex::new(2.0, 0.0));
        a *= Complex::I;
        assert_eq!(a, Complex::new(0.0, 2.0));
    }
}
