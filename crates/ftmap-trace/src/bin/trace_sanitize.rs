//! Schedule sanitizer for exported `trace.json` files.
//!
//! Where `trace_check` validates the Chrome trace-event *schema*, this tool
//! replays the *schedule* the events describe and checks the scheduler's
//! causal invariants: dock→minimize happens-before edges, ready-instant
//! gating, one-item-per-device lanes, duplicate/lost item detection against
//! batch tallies, pose-range tiling, and single-item transfer attribution.
//! CI runs it against the `trace_mapping` example's export; it also works on
//! any trace produced by `Recorder` + `export_chrome_trace`.
//!
//! Usage: `cargo run -p ftmap-trace --bin trace_sanitize -- trace.json`
//!        `cargo run -p ftmap-trace --bin trace_sanitize -- --list-checks`
//!
//! Exit status 0 on a causally consistent schedule, 1 on any violation
//! (each printed as `t=<instant>s: <check>: <detail>`), 2 on usage or
//! read/parse errors.

use ftmap_trace::import_chrome_trace;
use ftmap_trace::sanitize::{sanitize, CHECKS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-checks") {
        for (name, description) in CHECKS {
            println!("{name}: {description}");
        }
        return;
    }
    let path = match args.as_slice() {
        [] => "trace.json",
        [path] => path.as_str(),
        _ => {
            eprintln!("usage: trace_sanitize [trace.json | --list-checks]");
            std::process::exit(2);
        }
    };
    let content = match std::fs::read_to_string(path) {
        Ok(content) => content,
        Err(err) => {
            eprintln!("trace_sanitize: cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    let events = match import_chrome_trace(&content) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace_sanitize: {path}: {err}");
            std::process::exit(2);
        }
    };
    let report = sanitize(&events);
    if report.items == 0 {
        // A trace with no item spans would make every check vacuous; treat
        // it as a failure so a mis-pointed CI invocation cannot pass silently.
        eprintln!("trace_sanitize: {path}: no scheduler item spans found — nothing to replay");
        std::process::exit(1);
    }
    for violation in &report.violations {
        println!("trace_sanitize: {path}: {violation}");
    }
    if report.is_clean() {
        println!(
            "trace_sanitize: {path} ok — replayed {} items / {} batches / {} transfers across \
             {} device lanes, {} checks clean",
            report.items,
            report.batches,
            report.transfers,
            report.devices,
            CHECKS.len()
        );
    } else {
        eprintln!("trace_sanitize: {path}: {} violation(s)", report.violations.len());
        std::process::exit(1);
    }
}
