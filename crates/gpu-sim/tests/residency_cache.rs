//! Property tests on the residency cache's LRU invariants, driven by random
//! operation sequences (mixed lookups and insertions of random keys/sizes):
//!
//! * **capacity is never exceeded** — resident bytes stay within the budget
//!   after every operation;
//! * **the most-recently-used entry is never evicted** — whatever was touched
//!   last survives the next insertion;
//! * **a hit returns the identical payload** — the exact `Arc` that was
//!   inserted, bit-identical content included.

use gpu_sim::{Device, Residency, ResidencyCache, ResidentPayload};
use proptest::prelude::*;
use std::sync::Arc;

const CAPACITY: usize = 1000;

/// Payload carrying its key and a derived byte pattern, so hits can verify
/// content identity.
fn payload(key: u64) -> ResidentPayload {
    Arc::new((key, vec![key as u8 ^ 0x5a; 8]))
}

fn check_payload(p: &ResidentPayload, key: u64) {
    let (k, bytes) = p.downcast_ref::<(u64, Vec<u8>)>().expect("payload type");
    assert_eq!(*k, key);
    assert_eq!(*bytes, vec![key as u8 ^ 0x5a; 8]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences preserve every LRU invariant at every step.
    #[test]
    fn lru_invariants_hold_under_random_ops(
        ops in prop::collection::vec((0u64..12, 50usize..400), 1..60),
    ) {
        let cache = ResidencyCache::new(CAPACITY);
        let mut inserted_arcs: Vec<(u64, ResidentPayload)> = Vec::new();

        for (key, bytes) in ops {
            let before_keys = cache.keys_mru();
            let outcome = cache.get_or_insert_with(key, || (payload(key), bytes));
            match outcome {
                Residency::Hit(p) => {
                    // Hit ⇒ the identical Arc that was inserted earlier.
                    check_payload(&p, key);
                    let (_, original) = inserted_arcs
                        .iter()
                        .rev()
                        .find(|(k, _)| *k == key)
                        .expect("hit implies an earlier insertion");
                    prop_assert!(
                        Arc::ptr_eq(&p, original),
                        "hit returned a different allocation for key {}",
                        key
                    );
                    prop_assert!(before_keys.contains(&key));
                }
                Residency::Miss { .. } => {
                    prop_assert!(!before_keys.contains(&key));
                    let (_, current) = {
                        // Re-fetch to capture the cached Arc for later ptr_eq.
                        match cache.get(key) {
                            Some(p) => (key, p),
                            None => panic!("freshly inserted key {key} missing"),
                        }
                    };
                    inserted_arcs.push((key, current));
                }
                Residency::Uncacheable => {
                    prop_assert!(bytes > CAPACITY, "only oversize entries are uncacheable here");
                }
            }

            // Capacity never exceeded, and the bookkeeping is self-consistent.
            prop_assert!(
                cache.resident_bytes() <= CAPACITY,
                "resident {} exceeds capacity {}",
                cache.resident_bytes(),
                CAPACITY
            );
            // The most recently touched key is MRU and was not evicted.
            if bytes <= CAPACITY {
                let keys = cache.keys_mru();
                prop_assert_eq!(keys.first().copied(), Some(key));
            }
        }
    }

    /// Sequential fills evict strictly least-recently-used first.
    #[test]
    fn eviction_is_strictly_lru(
        n_entries in 3usize..20,
        touch in 0usize..20,
    ) {
        // Entries of equal size; capacity holds exactly 3.
        let cache = ResidencyCache::new(300);
        for key in 0..3u64 {
            cache.get_or_insert_with(key, || (payload(key), 100));
        }
        // Touch one resident key to promote it.
        let touched = (touch % 3) as u64;
        prop_assert!(cache.get(touched).is_some());

        // Model the full recency order (oldest → newest): the three initial
        // inserts, with the touched key moved to newest. After every further
        // insertion, the cache must hold exactly the three newest keys of the
        // model, in matching MRU order — strict LRU eviction.
        let mut recency: Vec<u64> = (0..3).filter(|k| *k != touched).collect();
        recency.push(touched);
        for step in 0..n_entries as u64 {
            let key = 100 + step;
            cache.get_or_insert_with(key, || (payload(key), 100));
            recency.push(key);
            let expected_mru: Vec<u64> = recency.iter().rev().take(3).copied().collect();
            prop_assert_eq!(cache.keys_mru(), expected_mru);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions, n_entries as u64);
        prop_assert_eq!(stats.insertions, 3 + n_entries as u64);
    }
}

// ---------------------------------------------------------------------------
// Transfer contract of derived payloads (regression tests for the batched FFT
// engine's receptor-transform residency): raw receptor grids are *uploaded*
// only on a raw miss; derived payloads (FFT transforms + plan) are *computed
// on-device* on a derived miss — they never cross the PCIe link in either
// direction — and a derived hit costs nothing at all.
// ---------------------------------------------------------------------------

const RAW_BYTES: usize = 4 * 1024;
const DERIVED_BYTES: usize = 8 * 1024;
const TRANSFORM_TAG: &str = "fft-transforms";

/// One modeled dock against `raw_key`: ensure the raw grids are resident
/// (uploading them on a miss — the `Docking::ensure_resident` contract), then
/// fetch-or-compute the derived transforms (the `BatchedFftEngine::new`
/// contract: a derived miss is recomputed from the resident raw grids with
/// modeled kernel flops, **zero** transfer bytes). Returns
/// `(raw_was_hit, derived_was_hit)`.
fn dock_once(device: &Device, raw_key: u64) -> (bool, bool) {
    let cache = device.residency();
    let raw_hit = match cache.get_or_insert_with(raw_key, || (payload(raw_key), RAW_BYTES)) {
        Residency::Hit(_) => true,
        Residency::Miss { .. } => {
            device.upload_bytes(RAW_BYTES as u64);
            false
        }
        Residency::Uncacheable => panic!("raw grids fit the device"),
    };
    let derived_hit = match cache.get_or_insert_derived_with(raw_key, TRANSFORM_TAG, || {
        (payload(raw_key ^ 1), DERIVED_BYTES)
    }) {
        Residency::Hit(_) => true,
        Residency::Miss { .. } => false,
        Residency::Uncacheable => panic!("derived payload fits the device"),
    };
    (raw_hit, derived_hit)
}

/// A warm derived-transform hit charges zero upload bytes: only the cold
/// dock's raw grids ever cross the modeled link.
#[test]
fn derived_transform_hit_charges_zero_upload_bytes() {
    let device = Device::tesla_c1060();
    let cold_mark = device.transfer_snapshot();
    assert_eq!(dock_once(&device, 7), (false, false));
    let after_cold = device.transfer_snapshot();
    let cold = after_cold.delta_since(&cold_mark);
    // The cold dock paid for the raw grids alone — the derived transforms
    // were computed on-device, not uploaded.
    assert_eq!(cold.bytes, RAW_BYTES);
    assert!(cold.upload_s > 0.0);

    // Warm dock: raw hit + derived hit, zero new transfer in either direction.
    assert_eq!(dock_once(&device, 7), (true, true));
    let warm = device.transfer_snapshot().delta_since(&after_cold);
    assert_eq!(warm.bytes, 0);
    assert_eq!(warm.upload_s, 0.0);
    assert_eq!(warm.download_s, 0.0);

    let derived = device.residency().derived_stats();
    assert_eq!((derived.hits, derived.misses, derived.insertions), (1, 1, 1));
}

/// Losing only the derived entry (raw grids still resident) re-runs the
/// transform computation but never re-uploads: the recompute is charged as
/// kernel time by the consumer, not as transfer bytes.
#[test]
fn raw_hit_with_derived_miss_recomputes_without_upload() {
    let device = Device::tesla_c1060();
    let cache = device.residency();
    assert_eq!(dock_once(&device, 7), (false, false));
    let after_cold = device.transfer_snapshot();

    // Evict exactly the derived entry: promote the raw grids to MRU, then
    // insert a filler entry big enough that the LRU derived entry must go
    // while the raw grids survive.
    assert!(cache.get(7).is_some());
    let filler_bytes = cache.capacity_bytes() - RAW_BYTES;
    let filler = cache.get_or_insert_with(99, || (payload(99), filler_bytes));
    assert!(matches!(filler, Residency::Miss { .. }));
    assert!(cache.contains(7), "raw grids must survive the filler");
    assert!(cache.get_derived(7, TRANSFORM_TAG).is_none(), "derived entry must have been evicted");
    assert_eq!(cache.derived_stats().evictions, 1);

    // Re-dock: the raw grids hit (no upload), the derived transforms miss and
    // are recomputed on-device — still zero bytes across the link.
    assert_eq!(dock_once(&device, 7), (true, false));
    let redock = device.transfer_snapshot().delta_since(&after_cold);
    assert_eq!(redock.bytes, 0, "a raw hit with a derived miss uploads nothing");
    assert_eq!(redock.upload_s, 0.0);

    // Three derived misses: the cold dock, the post-eviction probe above, the
    // re-dock. Two insertions: the probe looked up without filling.
    let derived = cache.derived_stats();
    assert_eq!((derived.misses, derived.insertions), (3, 2));
}
