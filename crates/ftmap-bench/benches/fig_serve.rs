//! Serving-layer throughput figure: warm-cache vs cold-cache job throughput
//! of the batch-mapping service, plus the pre-residency baseline (cache
//! disabled — every docking construction re-uploads the receptor grids, the
//! behavior before the serve layer existed).
//!
//! Workload: 8 single-probe jobs against one receptor on a 2-device pool,
//! sized so the receptor-grid upload is a substantial fraction of a cold
//! job's modeled time (64³ grids × 22 energy terms ≈ 46 MB ≈ 9 ms on PCIe
//! gen2 — the paper's §III.A "done only once" transfer, made to matter).
//!
//! Results are written to `BENCH_SERVE.json` at the workspace root and the
//! run **fails** if warm-cache throughput falls below 1.5× cold-cache
//! throughput — the CI regression gate for the residency cache.
//!
//! Run with: `cargo bench -p ftmap-bench --bench fig_serve`
//! (set `FTMAP_SERVE_JOBS=4` for a reduced scale).

use ftmap_core::{FtMapConfig, PipelineMode};
use ftmap_molecule::{ForceField, ProbeType, ProteinSpec, SyntheticProtein};
use ftmap_serve::{BatchMappingService, JobReport, MappingRequest};
use gpu_sim::sched::DevicePool;
use gpu_sim::CacheStats;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// The gate: minimum acceptable warm-cache throughput over cold-cache.
const MIN_WARM_OVER_COLD: f64 = 1.5;

struct Measurement {
    label: &'static str,
    jobs: usize,
    modeled_s: f64,
    wall_s: f64,
    cache: CacheStats,
}

impl Measurement {
    /// Jobs per modeled second — the serving throughput figure.
    fn throughput(&self) -> f64 {
        self.jobs as f64 / self.modeled_s.max(1e-12)
    }
}

fn jobs(n: usize) -> Vec<MappingRequest> {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    // Big resident receptor, small per-job compute: 64³ grids with the full
    // 18 desolvation components (22 terms), one rotation, docking only.
    config.docking.grid_dim = 64;
    config.docking.n_desolv = 18;
    config.docking.n_rotations = 1;
    config.conformations_per_probe = 0;
    (0..n)
        .map(|i| {
            MappingRequest::new(
                protein.clone(),
                ff.clone(),
                vec![ProbeType::Ethanol],
                config.clone(),
            )
            .with_tag(format!("job-{i}"))
        })
        .collect()
}

/// Runs the job set through a service over `pool` and returns the summed
/// modeled makespan over the distinct batches the dispatcher formed.
fn run(label: &'static str, pool: Arc<DevicePool>, requests: Vec<MappingRequest>) -> Measurement {
    let n = requests.len();
    let cache_before: Vec<CacheStats> =
        pool.devices().iter().map(|d| d.residency().stats()).collect();
    let service = BatchMappingService::builder(Arc::clone(&pool)).build();
    let start = Instant::now();
    let handles: Vec<_> =
        requests.into_iter().map(|r| service.submit(r).expect_admitted("admitted")).collect();
    let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
    let wall_s = start.elapsed().as_secs_f64();
    service.shutdown();

    // Modeled serving time: each batch runs the pool once; distinct batches
    // run back to back, so the run's modeled time is the sum of their
    // makespans (robust to however the dispatcher happened to batch).
    let mut batch_makespans: BTreeMap<usize, f64> = BTreeMap::new();
    for report in &reports {
        batch_makespans.insert(report.batch.batch_index, report.batch.makespan_modeled_s);
    }
    let modeled_s: f64 = batch_makespans.values().sum();

    let mut cache = CacheStats::default();
    for (device, before) in pool.devices().iter().zip(&cache_before) {
        cache.accumulate(&device.residency().stats().delta_since(before));
    }
    Measurement { label, jobs: n, modeled_s, wall_s, cache }
}

fn main() {
    let n_jobs: usize = std::env::var("FTMAP_SERVE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.clamp(2, 64))
        .unwrap_or(8);
    println!("fig_serve: {n_jobs} jobs, 1 receptor (64³ × 22 terms), 2 × Tesla C1060");

    // Pre-residency baseline: cache disabled, every Docking construction
    // re-uploads the receptor grids (one upload per probe shard).
    let no_cache_pool = Arc::new(DevicePool::tesla(2));
    for device in no_cache_pool.devices() {
        device.residency().set_enabled(false);
    }
    let no_cache = run("no residency (pre-serve baseline)", no_cache_pool, jobs(n_jobs));

    // Cold: fresh pool, empty caches — each device pays one grid-set upload.
    let pool = Arc::new(DevicePool::tesla(2));
    let cold = run("cold cache (first submission)", Arc::clone(&pool), jobs(n_jobs));
    // Warm: same pool, receptor already resident — zero grid uploads.
    let warm = run("warm cache (resident receptor)", pool, jobs(n_jobs));

    println!(
        "\n{:<36}{:>12}{:>16}{:>10}{:>8}{:>8}",
        "configuration", "modeled ms", "jobs/modeled s", "hits", "misses", "wall ms"
    );
    for m in [&no_cache, &cold, &warm] {
        println!(
            "{:<36}{:>12.3}{:>16.1}{:>10}{:>8}{:>8.0}",
            m.label,
            1e3 * m.modeled_s,
            m.throughput(),
            m.cache.hits,
            m.cache.misses,
            1e3 * m.wall_s
        );
    }

    let warm_over_cold = warm.throughput() / cold.throughput();
    let warm_over_no_cache = warm.throughput() / no_cache.throughput();
    println!(
        "\nwarm/cold speedup {warm_over_cold:.2}x, warm/no-residency {warm_over_no_cache:.2}x"
    );

    // Sanity: the warm run must be all hits, the cold run exactly one miss
    // per device that serviced work.
    assert_eq!(warm.cache.misses, 0, "warm run must not miss");
    assert!(cold.cache.misses <= 2, "cold run misses once per device at most");

    let json = format_json(&[&no_cache, &cold, &warm], n_jobs, warm_over_cold);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE.json");
    std::fs::write(path, json).expect("write BENCH_SERVE.json");
    println!("wrote {path}");

    assert!(
        warm_over_cold >= MIN_WARM_OVER_COLD,
        "REGRESSION: warm-cache throughput {warm_over_cold:.2}x cold fell below the \
         {MIN_WARM_OVER_COLD}x gate"
    );
    println!("gate ok: warm-cache throughput {warm_over_cold:.2}x >= {MIN_WARM_OVER_COLD}x cold");
}

fn format_json(measurements: &[&Measurement], n_jobs: usize, gate_value: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"figure\": \"batch-mapping service throughput: receptor-grid residency\",\n");
    out.push_str(&format!(
        "  \"workload\": \"{n_jobs} single-probe jobs, one receptor, 64^3 grids x 22 terms, \
         docking only, 2 x Tesla C1060 pool\",\n"
    ));
    out.push_str(
        "  \"model\": \"sum of per-batch overlapped-stream makespans over the pool \
         (gpu_sim::sched); residency cache on Device.global_mem_bytes\",\n",
    );
    out.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"configuration\": \"{}\", \"modeled_ms\": {:.4}, \
             \"jobs_per_modeled_s\": {:.2}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"wall_ms\": {:.1} }}{}\n",
            m.label,
            1e3 * m.modeled_s,
            m.throughput(),
            m.cache.hits,
            m.cache.misses,
            1e3 * m.wall_s,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"gate\": {{ \"metric\": \"warm-cache jobs/modeled-s over cold-cache\", \
         \"minimum\": {MIN_WARM_OVER_COLD:.1}, \"measured\": {gate_value:.4} }}\n"
    ));
    out.push_str("}\n");
    out
}
