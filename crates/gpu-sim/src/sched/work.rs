//! The pose-granularity work-item layer.
//!
//! The paper's unit of GPU work is the *conformation*: 500 rotations × 4
//! retained poses = 2000 minimizations per probe. Sharding at whole-probe
//! granularity wastes that parallelism twice over — a library smaller than the
//! pool leaves devices idle, and one hot probe serializes its 2000
//! minimizations on a single device. [`WorkItem`] is the finer unit: a
//! contiguous block of one probe's retained poses, scheduled independently of
//! its siblings, so one probe's minimizations spread across the pool exactly
//! like the fine-grained decompositions of the GPU MD/lattice codes the
//! scheduler borrows from (van Meel et al.; Barros et al.).
//!
//! Items carry a **cost-model weight** (their pose count): the shard queue's
//! modeled-cost stealing scales its claim-time estimate by the weight
//! ([`super::ShardQueue::execute_weighted`]), so a ragged final block is never
//! over-charged and heterogeneous pools balance per pose, not per block.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One schedulable block of retained poses: `pose_range` of probe `probe_idx`.
///
/// `probe_idx` indexes whatever per-probe list the scheduler's consumer keeps
/// (the probe library for a pipeline run; the flattened `(job, probe)` dock
/// results for a service batch) — the work layer never needs to know what a
/// probe is, only how its poses partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Index of the probe (or docked entry) this block belongs to.
    pub probe_idx: usize,
    /// The half-open range of retained-pose indices this block minimizes.
    pub pose_range: Range<usize>,
}

impl WorkItem {
    /// Number of poses in the block.
    pub fn len(&self) -> usize {
        self.pose_range.len()
    }

    /// True when the block holds no poses.
    pub fn is_empty(&self) -> bool {
        self.pose_range.is_empty()
    }

    /// The block's cost-model weight: its pose count. Per-pose minimization
    /// cost is uniform within a probe, so weight-proportional estimates keep
    /// a ragged final block from skewing the virtual clocks.
    pub fn weight(&self) -> f64 {
        self.len() as f64
    }
}

/// Partitions each probe's retained poses into blocks of at most `block`
/// poses, in `(probe, pose)` order — the deterministic re-assembly order.
///
/// `poses_per_probe[i]` is probe `i`'s retained-pose count; probes with zero
/// poses contribute no items. `block == 0` means "one block per probe" (whole-
/// probe granularity expressed in the same work-item currency).
pub fn pose_blocks(poses_per_probe: &[usize], block: usize) -> Vec<WorkItem> {
    let block = if block == 0 { usize::MAX } else { block };
    let mut items = Vec::new();
    for (probe_idx, &n_poses) in poses_per_probe.iter().enumerate() {
        let mut start = 0;
        while start < n_poses {
            let end = start.saturating_add(block).min(n_poses);
            items.push(WorkItem { probe_idx, pose_range: start..end });
            start = end;
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_each_probe_exactly() {
        let items = pose_blocks(&[5, 0, 3], 2);
        assert_eq!(
            items,
            vec![
                WorkItem { probe_idx: 0, pose_range: 0..2 },
                WorkItem { probe_idx: 0, pose_range: 2..4 },
                WorkItem { probe_idx: 0, pose_range: 4..5 },
                WorkItem { probe_idx: 2, pose_range: 0..2 },
                WorkItem { probe_idx: 2, pose_range: 2..3 },
            ]
        );
        // The ragged tail blocks weigh less than the full ones.
        assert_eq!(items[0].weight(), 2.0);
        assert_eq!(items[2].weight(), 1.0);
        assert!(!items[0].is_empty());
        assert_eq!(items[4].len(), 1);
    }

    #[test]
    fn zero_block_means_whole_probe_granularity() {
        let items = pose_blocks(&[2000, 7], 0);
        assert_eq!(
            items,
            vec![
                WorkItem { probe_idx: 0, pose_range: 0..2000 },
                WorkItem { probe_idx: 1, pose_range: 0..7 },
            ]
        );
    }

    #[test]
    fn oversized_block_degenerates_to_one_item_per_probe() {
        assert_eq!(pose_blocks(&[3], 50), vec![WorkItem { probe_idx: 0, pose_range: 0..3 }]);
        assert!(pose_blocks(&[], 4).is_empty());
        assert!(pose_blocks(&[0, 0], 4).is_empty());
    }

    #[test]
    fn block_of_one_yields_one_item_per_pose() {
        let items = pose_blocks(&[3], 1);
        assert_eq!(items.len(), 3);
        assert!(items.iter().all(|i| i.len() == 1));
        let covered: Vec<usize> = items.iter().flat_map(|i| i.pose_range.clone()).collect();
        assert_eq!(covered, vec![0, 1, 2]);
    }
}
