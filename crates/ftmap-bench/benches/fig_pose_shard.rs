//! Pose-granularity sharding figure: what scheduling pose blocks instead of
//! whole probes buys on the two workloads probe granularity handles worst.
//!
//! * **Hot probe** — ONE probe's retained poses on a 4-device pool. Probe
//!   granularity serializes every minimization on a single device (three
//!   devices idle); pose blocks spread them across the pool. The CI gate is
//!   here: pose-block modeled speedup over probe granularity must stay ≥ 2×.
//! * **Mixed pool** — a small library on a heterogeneous 3×Tesla + 1×Xeon
//!   pool. At probe granularity the work-stealing fan-out hands the modeled-
//!   slow Xeon a whole probe and the load skew blows up; pose blocks are fine
//!   enough for the cost-aware stealing to balance (measured skew ~1.14 where
//!   probe granularity measures ~1.54; gated at ≤ 1.3 to ride out claim-race
//!   variance on loaded runners).
//!
//! Results are written to `BENCH_POSE_SHARD.json` at the workspace root.
//!
//! Run with: `cargo bench -p ftmap-bench --bench fig_pose_shard`
//! (set `FTMAP_POSE_SHARD_CONFS=128` for the reduced CI scale).

use ftmap_core::{FtMapConfig, FtMapPipeline, MappingResult, PipelineMode};
use ftmap_molecule::{ForceField, ProbeLibrary, ProbeType, ProteinSpec, SyntheticProtein};
use gpu_sim::sched::DevicePool;
use std::time::Instant;

/// The gate: minimum pose-block speedup over probe granularity on the
/// hot-probe workload (1 probe × all its poses × 4 devices).
const MIN_HOT_PROBE_SPEEDUP: f64 = 2.0;
/// Safety bound on the mixed-pool pose-block skew. The committed
/// `BENCH_POSE_SHARD.json` demonstrates ~1.14 (vs ~1.54 at probe
/// granularity); the gate sits well above that because skew depends on which
/// worker wins discrete claim races — a loaded CI runner can shift it by a
/// block-sized step, and a hair-trigger bound would fail spuriously.
const MAX_POSE_SKEW: f64 = 1.3;

struct Scenario {
    label: &'static str,
    workload: String,
    probe_makespan_ms: f64,
    probe_skew: f64,
    pose_makespan_ms: f64,
    pose_skew: f64,
    pose_blocks: usize,
    speedup: f64,
    wall_ms: f64,
}

fn run(
    protein: &SyntheticProtein,
    ff: &ForceField,
    library: &ProbeLibrary,
    pool: DevicePool,
    pose_block: usize,
    conformations: usize,
) -> (MappingResult, f64) {
    let mut config =
        FtMapConfig::small_test(PipelineMode::Sharded { devices: pool.len(), pose_block });
    // Retain exactly `conformations` poses (the run keeps n_rotations ×
    // poses_per_rotation), so the hot probe really has that many
    // minimizations to spread.
    config.docking.n_rotations = conformations.div_ceil(config.docking.poses_per_rotation).max(1);
    config.conformations_per_probe = conformations;
    let pipeline = FtMapPipeline::with_pool(protein.clone(), ff.clone(), config, pool);
    let start = Instant::now();
    let result = pipeline.map(library);
    (result, start.elapsed().as_secs_f64())
}

fn assert_identical(a: &MappingResult, b: &MappingResult, label: &str) {
    assert_eq!(a.sites.len(), b.sites.len(), "{label}: site counts diverged");
    for (sa, sb) in a.sites.iter().zip(&b.sites) {
        assert!(
            sa.cluster.center.distance(sb.cluster.center) == 0.0,
            "{label}: consensus site moved between granularities"
        );
    }
}

// lint-allow(justified-allows): the scenario runner threads every fixture
// through one call; a params struct would be built once and read once.
#[allow(clippy::too_many_arguments)]
fn scenario(
    label: &'static str,
    workload: String,
    protein: &SyntheticProtein,
    ff: &ForceField,
    library: &ProbeLibrary,
    pool: &dyn Fn() -> DevicePool,
    pose_block: usize,
    conformations: usize,
) -> Scenario {
    let start = Instant::now();
    let (probe, _) = run(protein, ff, library, pool(), 0, conformations);
    let (pose, _) = run(protein, ff, library, pool(), pose_block, conformations);
    assert_identical(&probe, &pose, label);
    let probe_makespan = probe.profile.makespan_modeled_s();
    let pose_makespan = pose.profile.makespan_modeled_s();
    Scenario {
        label,
        workload,
        probe_makespan_ms: 1e3 * probe_makespan,
        probe_skew: probe.profile.load_skew(),
        pose_makespan_ms: 1e3 * pose_makespan,
        pose_skew: pose.profile.load_skew(),
        pose_blocks: pose.profile.device_loads.iter().map(|l| l.pose_blocks).sum(),
        speedup: probe_makespan / pose_makespan.max(1e-12),
        wall_ms: 1e3 * start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let conformations: usize =
        std::env::var("FTMAP_POSE_SHARD_CONFS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    let pose_block = (conformations / 20).max(1);
    println!("fig_pose_shard: {conformations} retained poses/probe, pose blocks of {pose_block}\n");

    // Scenario 1 (the gate): one hot probe on four Teslas.
    let hot_library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol]);
    let hot = scenario(
        "hot_probe_4_tesla",
        format!("1 probe x {conformations} poses, 4 x Tesla C1060"),
        &protein,
        &ff,
        &hot_library,
        &|| DevicePool::tesla(4),
        pose_block,
        conformations,
    );

    // Scenario 2: a small library on a mixed Tesla/Xeon pool. Probe
    // granularity hands the modeled-slow Xeon whole probes (the work-stealing
    // fan-out gives every idle worker one item before any cost estimate
    // exists), so its busy time balloons; pose blocks are fine enough for the
    // cost-aware stealing to shrink its claim to single poses.
    let mixed_library = ProbeLibrary::subset(
        &ff,
        &[
            ProbeType::Ethanol,
            ProbeType::Isopropanol,
            ProbeType::Acetone,
            ProbeType::Acetaldehyde,
            ProbeType::Benzene,
            ProbeType::Phenol,
            ProbeType::Urea,
            ProbeType::Methylamine,
        ],
    );
    let mixed = scenario(
        "small_library_mixed_pool",
        format!("8 probes x {conformations} poses, 3 x Tesla + 1 x Xeon"),
        &protein,
        &ff,
        &mixed_library,
        &|| DevicePool::mixed(3, 1),
        1, // finest blocks: the slow member's claim shrinks to single poses
        conformations,
    );

    println!(
        "{:>26}{:>16}{:>12}{:>16}{:>12}{:>10}{:>10}",
        "scenario", "probe ms", "skew", "pose ms", "skew", "speedup", "blocks"
    );
    for s in [&hot, &mixed] {
        println!(
            "{:>26}{:>16.2}{:>12.3}{:>16.2}{:>12.3}{:>9.2}x{:>10}",
            s.label,
            s.probe_makespan_ms,
            s.probe_skew,
            s.pose_makespan_ms,
            s.pose_skew,
            s.speedup,
            s.pose_blocks
        );
    }

    let json = format_json(&[&hot, &mixed]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_POSE_SHARD.json");
    std::fs::write(path, json).expect("write BENCH_POSE_SHARD.json");
    println!("\nwrote {path}");

    assert!(
        hot.speedup >= MIN_HOT_PROBE_SPEEDUP,
        "REGRESSION: hot-probe pose-block speedup {:.2}x fell below the \
         {MIN_HOT_PROBE_SPEEDUP}x gate",
        hot.speedup
    );
    assert!(
        mixed.pose_skew < mixed.probe_skew,
        "REGRESSION: pose blocks no longer improve the mixed-pool balance \
         ({:.3} probe vs {:.3} pose)",
        mixed.probe_skew,
        mixed.pose_skew
    );
    assert!(
        mixed.pose_skew <= MAX_POSE_SKEW,
        "REGRESSION: mixed-pool pose-block skew {:.3} exceeded {MAX_POSE_SKEW}",
        mixed.pose_skew
    );
    println!(
        "gate ok: hot-probe speedup {:.2}x >= {MIN_HOT_PROBE_SPEEDUP}x; mixed-pool skew \
         {:.3} (probe) -> {:.3} (pose)",
        hot.speedup, mixed.probe_skew, mixed.pose_skew
    );
}

fn format_json(scenarios: &[&Scenario]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"figure\": \"pose-granularity sharding vs whole-probe sharding\",\n");
    out.push_str(
        "  \"model\": \"per-device overlapped stream makespan (gpu_sim::sched); dock-once + \
         minimize-pose-block phases, cost-model weighted work stealing\",\n",
    );
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"scenario\": \"{}\", \"workload\": \"{}\", \
             \"probe_granularity_makespan_ms\": {:.4}, \"probe_granularity_skew\": {:.4}, \
             \"pose_block_makespan_ms\": {:.4}, \"pose_block_skew\": {:.4}, \
             \"pose_blocks\": {}, \"speedup\": {:.4}, \"wall_ms\": {:.1} }}{}\n",
            s.label,
            s.workload,
            s.probe_makespan_ms,
            s.probe_skew,
            s.pose_makespan_ms,
            s.pose_skew,
            s.pose_blocks,
            s.speedup,
            s.wall_ms,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"gates\": {{ \"hot_probe_min_speedup\": {MIN_HOT_PROBE_SPEEDUP:.1}, \
         \"mixed_pool_max_pose_skew\": {MAX_POSE_SKEW:.2} }}\n"
    ));
    out.push_str("}\n");
    out
}
