//! The end-to-end FTMap pipeline.
//!
//! For each probe in the library: rigid-dock it against the protein, build a complex
//! for each retained pose, minimize the complexes, and feed the minimized pose centres
//! into consensus clustering. [`PipelineMode::Serial`] reproduces the structure of the
//! original single-core FTMap; [`PipelineMode::Accelerated`] uses the paper's GPU
//! mapping (device model) for both phases.
//!
//! Both phases choose their engine through one seam: a [`PipelineMode`] maps to a
//! [`gpu_sim::ExecutionBackend`], and each phase's engine enum implements
//! [`gpu_sim::BackendSelect`] — the pipeline never hand-picks per-phase engines.

use crate::cluster::{cluster_poses, ClusterInput, ConsensusSite};
use crate::profile::MappingProfile;
use ftmap_energy::minimize::{MinimizationConfig, Minimizer};
use ftmap_math::Vec3;
use ftmap_molecule::{Complex, ForceField, Probe, ProbeLibrary, ProbeType, SyntheticProtein};
use gpu_sim::{BackendSelect, Device, ExecutionBackend};
use piper_dock::{Docking, DockingConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Whether the pipeline uses the original serial engines or the accelerated ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Serial FFT docking + host minimization (the original FTMap structure).
    Serial,
    /// GPU direct-correlation docking + GPU minimization kernels (the paper's system).
    Accelerated,
}

impl PipelineMode {
    /// The execution backend this mode runs both phases on.
    pub fn backend(self) -> ExecutionBackend {
        match self {
            PipelineMode::Serial => ExecutionBackend::Cpu,
            PipelineMode::Accelerated => ExecutionBackend::Gpu,
        }
    }

    /// Selects a phase engine for this mode through the backend seam.
    pub fn select<T: BackendSelect>(self) -> T {
        T::for_backend(self.backend())
    }
}

impl From<ExecutionBackend> for PipelineMode {
    fn from(backend: ExecutionBackend) -> Self {
        match backend {
            ExecutionBackend::Cpu => PipelineMode::Serial,
            ExecutionBackend::Gpu => PipelineMode::Accelerated,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtMapConfig {
    /// Docking configuration (grid size, rotations, retained poses, engine is overridden
    /// by the pipeline mode).
    pub docking: DockingConfig,
    /// Minimization configuration (evaluation path is overridden by the pipeline mode).
    pub minimization: MinimizationConfig,
    /// Number of top docked poses minimized per probe (FTMap minimizes all retained
    /// poses — 2000 per probe; scaled configurations minimize fewer).
    pub conformations_per_probe: usize,
    /// Clustering radius in Å for consensus-site detection.
    pub cluster_radius: f64,
    /// Pipeline mode.
    pub mode: PipelineMode,
}

impl FtMapConfig {
    /// The paper-scale configuration (500 rotations × 4 poses = 2000 conformations per
    /// probe, 128³ grids are reduced to 64³ to keep host memory modest).
    pub fn paper_scale(mode: PipelineMode) -> Self {
        FtMapConfig {
            docking: DockingConfig { engine: mode.select(), ..DockingConfig::default() },
            minimization: MinimizationConfig {
                path: mode.select(),
                ..MinimizationConfig::default()
            },
            conformations_per_probe: 2000,
            cluster_radius: 4.0,
            mode,
        }
    }

    /// A scaled-down configuration for tests and examples.
    pub fn small_test(mode: PipelineMode) -> Self {
        FtMapConfig {
            docking: DockingConfig::small_test(mode.select()),
            minimization: MinimizationConfig {
                max_iterations: 10,
                ..MinimizationConfig::small_test(mode.select())
            },
            conformations_per_probe: 3,
            cluster_radius: 6.0,
            mode,
        }
    }

    /// A scaled-down configuration addressed by backend rather than mode.
    pub fn small_test_on(backend: ExecutionBackend) -> Self {
        Self::small_test(backend.into())
    }
}

/// Result of mapping one protein with a probe library.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// Ranked consensus sites (hotspot candidates).
    pub sites: Vec<ConsensusSite>,
    /// Number of conformations minimized in total.
    pub conformations_minimized: usize,
    /// Per-phase profile (summed over probes).
    pub profile: MappingProfile,
    /// Minimized pose centres per probe type (for inspection / examples).
    pub pose_centers: Vec<(ProbeType, Vec3)>,
}

impl MappingResult {
    /// The top-ranked hotspot centre, if any site was found.
    pub fn top_hotspot(&self) -> Option<Vec3> {
        self.sites.first().map(|s| s.cluster.center)
    }
}

/// The FTMap pipeline over one protein.
pub struct FtMapPipeline {
    protein: SyntheticProtein,
    ff: ForceField,
    config: FtMapConfig,
    device: Device,
}

impl FtMapPipeline {
    /// Creates a pipeline for the given protein.
    pub fn new(protein: SyntheticProtein, ff: ForceField, config: FtMapConfig) -> Self {
        FtMapPipeline { protein, ff, config, device: Device::tesla_c1060() }
    }

    /// The configuration.
    pub fn config(&self) -> &FtMapConfig {
        &self.config
    }

    /// The protein being mapped.
    pub fn protein(&self) -> &SyntheticProtein {
        &self.protein
    }

    /// Maps the protein with every probe in `library`.
    pub fn map(&self, library: &ProbeLibrary) -> MappingResult {
        let mut profile = MappingProfile::default();
        let mut cluster_inputs: Vec<ClusterInput> = Vec::new();
        let mut pose_centers = Vec::new();
        let mut conformations = 0usize;

        for probe in library.probes() {
            let (probe_profile, inputs) = self.map_probe(probe, &mut conformations);
            profile.merge(&probe_profile);
            for input in &inputs {
                pose_centers.push((input.probe, input.center));
            }
            cluster_inputs.extend(inputs);
        }

        let sites = cluster_poses(&cluster_inputs, self.config.cluster_radius);
        MappingResult { sites, conformations_minimized: conformations, profile, pose_centers }
    }

    /// Maps a single probe: dock, minimize the top conformations, return cluster inputs.
    pub fn map_probe(
        &self,
        probe: &Probe,
        conformations: &mut usize,
    ) -> (MappingProfile, Vec<ClusterInput>) {
        let mut profile = MappingProfile::default();

        // Phase 1: rigid docking.
        let t0 = Instant::now();
        let docking = Docking::new(&self.protein.atoms, self.config.docking.clone());
        let run = docking.run(probe);
        profile.docking_wall_s += t0.elapsed().as_secs_f64();
        profile.docking_modeled_s += run.modeled.total();

        // Phase 2: minimize the top conformations.
        let minimizer = Minimizer::new(self.ff.clone(), self.config.minimization);
        let mut inputs = Vec::new();
        let n_conf = self.config.conformations_per_probe.min(run.poses.len());
        for pose in run.poses.iter().take(n_conf) {
            let rotation = docking.rotations().get(pose.rotation_index);
            let centered: Vec<Vec3> = probe.atoms.iter().map(|a| a.position).collect();
            let placed = pose.place_probe(
                rotation,
                &centered,
                run.grid.origin,
                run.grid.spacing,
                (run.grid.dim, run.grid.dim, run.grid.dim),
            );
            let mut posed_probe = probe.clone();
            for (atom, new_pos) in posed_probe.atoms.iter_mut().zip(&placed) {
                atom.position = *new_pos;
            }
            let mut complex = Complex::new(&self.protein, &posed_probe);

            let t1 = Instant::now();
            let result = minimizer.minimize(&mut complex, &self.device);
            profile.minimization_wall_s += t1.elapsed().as_secs_f64();
            profile.minimization_modeled_s += match self.config.mode {
                PipelineMode::Accelerated => {
                    let (a, b, c) = result.modeled_kernel_times_s;
                    a + b + c
                }
                // For the serial pipeline the host evaluation *is* the measured work;
                // use the measured evaluation time as the modeled serial time.
                PipelineMode::Serial => result.evaluation_time_s + result.update_time_s,
            };
            *conformations += 1;

            inputs.push(ClusterInput {
                probe: probe.probe_type,
                center: complex.probe_centroid(),
                energy: result.final_energy,
            });
        }
        (profile, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmap_molecule::{ProbeLibrary, ProteinSpec};
    use piper_dock::DockingEngineKind;

    fn small_pipeline(mode: PipelineMode) -> (FtMapPipeline, ProbeLibrary) {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Acetone]);
        let pipeline = FtMapPipeline::new(protein, ff, FtMapConfig::small_test(mode));
        (pipeline, library)
    }

    #[test]
    fn serial_pipeline_produces_consensus_sites() {
        let (pipeline, library) = small_pipeline(PipelineMode::Serial);
        let result = pipeline.map(&library);
        assert!(result.conformations_minimized > 0);
        assert!(!result.sites.is_empty());
        assert!(result.top_hotspot().is_some());
        assert!(result.profile.total_wall_s() > 0.0);
        assert_eq!(
            result.conformations_minimized,
            library.len() * pipeline.config().conformations_per_probe
        );
        assert_eq!(result.pose_centers.len(), result.conformations_minimized);
    }

    #[test]
    fn accelerated_pipeline_produces_consensus_sites() {
        let (pipeline, library) = small_pipeline(PipelineMode::Accelerated);
        let result = pipeline.map(&library);
        assert!(!result.sites.is_empty());
        assert!(result.profile.docking_modeled_s > 0.0);
        assert!(result.profile.minimization_modeled_s > 0.0);
    }

    #[test]
    fn minimization_dominates_serial_wall_time() {
        // Fig. 2(a): minimization ≈93 % of the serial FTMap runtime. With the scaled
        // test configuration the exact split differs, but minimization (many
        // conformations × many iterations) must dominate docking.
        let (pipeline, library) = small_pipeline(PipelineMode::Serial);
        let result = pipeline.map(&library);
        let (dock_pct, min_pct) = result.profile.wall_percentages();
        assert!(min_pct > dock_pct, "docking {dock_pct}% vs minimization {min_pct}%");
    }

    #[test]
    fn accelerated_modeled_time_beats_serial_modeled_time() {
        // The overall §V.C claim in miniature: the accelerated pipeline's modeled time
        // is below the serial pipeline's modeled time on the same workload.
        let (serial, library) = small_pipeline(PipelineMode::Serial);
        let serial_result = serial.map(&library);
        let (accel, _) = small_pipeline(PipelineMode::Accelerated);
        let accel_result = accel.map(&library);
        assert!(
            accel_result.profile.total_modeled_s() < serial_result.profile.total_modeled_s(),
            "accelerated {} vs serial {}",
            accel_result.profile.total_modeled_s(),
            serial_result.profile.total_modeled_s()
        );
    }

    #[test]
    fn backend_seam_selects_both_phase_engines() {
        use ftmap_energy::minimize::EvaluationPath;
        // One ExecutionBackend value drives both per-phase engine choices.
        assert_eq!(PipelineMode::Serial.backend(), ExecutionBackend::Cpu);
        assert_eq!(PipelineMode::Accelerated.backend(), ExecutionBackend::Gpu);
        assert_eq!(
            PipelineMode::Serial.select::<DockingEngineKind>(),
            DockingEngineKind::FftSerial
        );
        assert!(matches!(
            PipelineMode::Accelerated.select::<DockingEngineKind>(),
            DockingEngineKind::Gpu { batch: piper_dock::docking::DEFAULT_GPU_BATCH }
        ));
        assert_eq!(PipelineMode::Serial.select::<EvaluationPath>(), EvaluationPath::Host);
        assert_eq!(PipelineMode::Accelerated.select::<EvaluationPath>(), EvaluationPath::Gpu);
        // Round-trips through the backend.
        for backend in ExecutionBackend::ALL {
            assert_eq!(PipelineMode::from(backend).backend(), backend);
            let cfg = FtMapConfig::small_test_on(backend);
            assert_eq!(cfg.mode.backend(), backend);
        }
    }

    #[test]
    fn paper_scale_config_matches_paper_parameters() {
        let cfg = FtMapConfig::paper_scale(PipelineMode::Accelerated);
        assert_eq!(cfg.docking.n_rotations, 500);
        assert_eq!(cfg.docking.poses_per_rotation, 4);
        assert_eq!(cfg.conformations_per_probe, 2000);
        assert!(matches!(cfg.docking.engine, DockingEngineKind::Gpu { batch: 8 }));
    }
}
