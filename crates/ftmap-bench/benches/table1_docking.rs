//! Table 1: per-rotation docking work, serial FFT engine vs GPU-mapped engine.
//! The modeled speedups are printed by the `report` binary; this bench measures the
//! wall-clock cost of the two engines on this machine.

use criterion::{criterion_group, criterion_main, Criterion};
use ftmap_bench::DockingWorkload;
use piper_dock::{Docking, DockingEngineKind};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let workload = DockingWorkload::standard();
    let mut group = c.benchmark_group("table1_docking_per_rotation");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    for (name, engine) in [
        ("fft_serial", DockingEngineKind::FftSerial),
        ("direct_serial", DockingEngineKind::DirectSerial),
        ("gpu_batched", DockingEngineKind::Gpu { batch: 8 }),
    ] {
        let mut config = workload.config(engine);
        config.n_rotations = 2;
        let docking = Docking::new(&workload.protein.atoms, config);
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(docking.run(&workload.probe)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
