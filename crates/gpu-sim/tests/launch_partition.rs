//! Property tests on the launch layer: the block partition a `KernelLaunch`
//! describes must cover every work item exactly once, for any grid shape —
//! the property the unit test `block_range_partitions_work` checks for one
//! fixed shape.

use gpu_sim::kernel::partition_range;
use gpu_sim::{BlockContext, Device, KernelLaunch, StatsLedger};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every item 0..n_items appears in exactly one block's `item_range`, and
    /// the launch-side partition agrees with the context the executing kernel
    /// sees.
    #[test]
    fn kernel_launch_partition_covers_every_item_exactly_once(
        n_items in 0usize..2000,
        grid in 1usize..64,
        threads in 1usize..256,
    ) {
        let device = Device::tesla_c1060();
        let launch = KernelLaunch::on(&device).grid(grid).threads(threads);
        let mut covered = vec![0u32; n_items];
        for block in 0..grid {
            let range = launch.item_range(block, n_items);
            prop_assert!(range.end <= n_items);
            prop_assert_eq!(range.clone(), partition_range(block, grid, n_items));
            for i in range {
                covered[i] += 1;
            }
        }
        prop_assert!(
            covered.iter().all(|&c| c == 1),
            "items covered other than exactly once: {:?}",
            covered.iter().enumerate().filter(|(_, &c)| c != 1).take(5).collect::<Vec<_>>()
        );
    }

    /// `for_items` sizes the grid so the one-thread-one-item convention covers
    /// the problem: enough threads in total, and the partition stays exact.
    #[test]
    fn for_items_grid_covers_the_problem(
        n_items in 0usize..5000,
        threads in 1usize..256,
    ) {
        let device = Device::tesla_c1060();
        let launch = KernelLaunch::on(&device).threads(threads).for_items(n_items);
        let config = launch.config();
        prop_assert!(config.grid_blocks * config.threads_per_block >= n_items);
        // A one-block-smaller grid would be short of threads (when any work exists).
        if n_items > threads {
            prop_assert!((config.grid_blocks - 1) * config.threads_per_block < n_items);
        }
        let total: usize = (0..config.grid_blocks)
            .map(|b| launch.item_range(b, n_items).len())
            .sum();
        prop_assert_eq!(total, n_items);
    }

    /// The executing kernel's `block_range` matches the host-side partition and
    /// the counters it records survive the ledger round-trip.
    #[test]
    fn executed_blocks_see_the_same_partition(
        n_items in 1usize..1000,
        grid in 1usize..32,
    ) {
        let device = Device::tesla_c1060();
        let launch = KernelLaunch::on(&device).grid(grid);
        let mut ledger = StatsLedger::new();
        let kernel = |ctx: &mut BlockContext| {
            let span = ctx.block_range(n_items);
            ctx.record_flops(span.len() as u64);
        };
        launch.run_recorded(&mut ledger, "partition", &kernel);
        // Total recorded flops == one per item => blocks partitioned exactly.
        prop_assert_eq!(ledger.phase("partition").counters.flops, n_items as u64);
    }
}
