//! # piper-dock
//!
//! PIPER-style rigid docking, the first phase of FTMap (paper §II.A / §III).
//!
//! Rigid docking maps the protein (receptor) and the small-molecule probe (ligand)
//! onto 3-D grids of energy-function components and scores every pose — a rotation of
//! the probe plus a relative translation — as a sum of correlations between matching
//! receptor/ligand grids (Equation 1), combined with per-term weights (Equation 2).
//!
//! This crate provides every engine the paper compares:
//!
//! * [`fft_engine::FftCorrelationEngine`] — the original PIPER approach: forward FFT of
//!   each ligand grid, per-voxel modulation with the precomputed receptor FFTs, inverse
//!   FFT; `O(N³ log N)` per rotation, dominated by the FFT (Fig. 2(b): ~93 %).
//! * [`direct::DirectCorrelationEngine`] — direct `O(N³ · n³)` correlation, which wins
//!   for the very small (≤4³) probe grids FTMap uses; serial and multicore variants.
//! * [`gpu::GpuDockingEngine`] — the paper's GPU mapping: direct correlation with the
//!   probe grids staged in constant memory, **multi-rotation batching** (8 rotations per
//!   pass over the protein grid), desolvation-term accumulation on the device and
//!   single-block **scoring + filtering** with region exclusion (§III.A–B), all running
//!   on the [`gpu_sim`] device model.
//! * [`batched_fft::BatchedFftEngine`] — batched FFT correlation on the device model:
//!   receptor transforms + FFT plan cached as a **derived residency payload**, many
//!   rotations per forward/multiply/inverse launch, and a **fused top-K epilogue**
//!   that downloads only the retained poses (never full `N³` score grids).
//! * [`filter`] — weighted scoring and top-K filtering with neighbourhood exclusion
//!   (Fig. 5), host reference implementation.
//!
//! [`docking::Docking`] orchestrates a full run (500 rotations, 4 retained poses per
//! rotation by default) and records the per-step timing breakdown that regenerates
//! Fig. 2(b) and Table 1.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod batched_fft;
pub mod direct;
pub mod docking;
pub mod fft_engine;
pub mod filter;
pub mod gpu;
pub mod grids;
pub mod pose;

pub use batched_fft::{BatchedFftEngine, ReceptorTransforms, TransformResidency};
pub use docking::{Docking, DockingConfig, DockingEngineKind, DockingRun, GridResidency};
pub use grids::{EnergyWeights, LigandGrids, ReceptorGrids};
pub use pose::Pose;
