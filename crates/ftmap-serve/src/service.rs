//! The batch-mapping service: admission → queue → batcher → pool → reports.
//!
//! [`BatchMappingService`] is the serving layer between clients and the
//! multi-device scheduler. Services are constructed with
//! [`BatchMappingService::builder`]; clients submit [`MappingRequest`]s from
//! any thread and get a typed [`crate::AdmissionVerdict`] back immediately —
//! the SLO-aware admission controller ([`crate::admission`]) estimates each
//! request's admission-to-completion latency against the live modeled state
//! and admits, reprioritizes, degrades, or refuses it. Admitted jobs carry a
//! [`JobHandle`] (asynchronous completion); a dispatcher thread drains the
//! bounded admission queue, forms receptor-compatible, class-homogeneous
//! batches under the fairness gates ([`crate::batcher`],
//! [`crate::config::AdmissionConfig`]), and hands each batch to one of two
//! dispatchers:
//!
//! * **Pipelined** ([`DispatchMode::Pipelined`], the default) — batches are
//!   submitted to a persistent [`PhasePipeline`]: each `(job, probe)` entry is
//!   a phase-tagged dock item whose completion generates that entry's
//!   minimize-block items, so there is no per-batch phase barrier, and batch
//!   N+1's probes dock on whichever devices batch N's minimization leaves
//!   idle. [`LatencyClass::Interactive`] batches carry a more urgent
//!   scheduler priority and overtake bulk work at item boundaries (the
//!   batcher's aging bound keeps bulk from starving).
//! * **Barrier** ([`DispatchMode::Barrier`]) — the classic two-phase
//!   [`ShardQueue`] schedule, one batch at a time: dock everything, barrier,
//!   minimize everything. Kept as the measurable comparator (the
//!   `fig_serve_pipeline` bench gates pipelined throughput against it).
//!
//! Per-device receptor-grid residency (`gpu_sim::ResidencyCache`, fed by
//! `piper_dock::Docking::from_grids`) is what makes multi-tenancy cheap: the
//! first shard of a batch on each device uploads the receptor grids once, and
//! every later shard — from any job, in this batch or a later one — borrows
//! the resident set for zero transfer bytes. The service additionally memoizes
//! the *host-side* grid build per receptor fingerprint.
//!
//! Accounting under pipelining is **batch-scoped**: each item's transfers are
//! measured on the servicing device around that item alone and land on the
//! owning batch's streams ([`gpu_sim::sched::BatchReport`]), so two batches in
//! flight can never double-attribute a transfer second to the ledger — the
//! window-based scheme (reset the pool, read `total_transfer_time` at the end)
//! only works when batches are serial, which the barrier path still is.
//!
//! Determinism: a job's report depends only on its own request. Batch
//! composition, arrival order, latency class, device assignment and
//! cross-batch interleaving change modeled timings and cache statistics,
//! never consensus sites (`tests/service_determinism.rs`,
//! `tests/pipelined_service.rs`).

use crate::admission::{
    decide, request_weight, AdmissionState, AdmissionVerdict, Decision, LatencyEstimate,
    RejectReason,
};
use crate::batcher::{next_batch_admission, Batchable, LatencyClass};
use crate::job::{BatchSummary, JobHandle, JobId, JobReport, JobSlot};
use crate::queue::{JobQueue, SubmitError};
use crate::request::MappingRequest;
use ftmap_core::{
    cluster_poses, minimize_pose_blocks, AppliedDegrade, ClusterInput, FtMapConfig, FtMapPipeline,
    MappingProfile, MappingResult, PhasedMapBatch, ProbeShard,
};
use ftmap_trace::{
    AlertState, Category, FlightRecorder, MetricsRegistry, MetricsSnapshot, SampleVerdict,
    SloEngine, SloReport, SloSpec, Tags, TraceEvent, TraceSink, Track,
};
use gpu_sim::sched::{
    BatchLabel, BatchReport, DevicePool, PhasePipeline, PhasedBatch, PhasedExec, ShardQueue,
};
use gpu_sim::sync::{locked, wait_on};
use gpu_sim::{CacheStats, StatsLedger};
use piper_dock::{Docking, ReceptorGrids};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

// The configuration types moved to `crate::config` when the flat ServeConfig
// split into sub-configs; re-exported here so `service::ServeConfig` paths
// keep compiling.
pub use crate::config::{
    AdmissionConfig, BatchConfig, DispatchMode, QueueConfig, ServeConfig, TenantQuota,
};

/// Latency summary over one class's completed batches (modeled seconds on the
/// scheduler's virtual timeline).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassLatency {
    /// Batches of this class completed.
    pub batches: usize,
    /// Mean modeled latency.
    pub mean_s: f64,
    /// 95th-percentile modeled latency (nearest-rank).
    pub p95_s: f64,
    /// Worst modeled latency.
    pub max_s: f64,
}

impl ClassLatency {
    /// Summarizes a set of latency samples (seconds): count, mean,
    /// nearest-rank p95, max. The one percentile definition every consumer —
    /// `ServeStats` and the bench gates alike — reports.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return ClassLatency::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let p95_idx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
        ClassLatency {
            batches: n,
            mean_s: sorted.iter().sum::<f64>() / n as f64,
            p95_s: sorted[p95_idx],
            max_s: sorted[n - 1],
        }
    }
}

/// A point-in-time summary of what the service has done.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Jobs admitted so far.
    pub jobs_submitted: usize,
    /// Jobs completed so far.
    pub jobs_completed: usize,
    /// Batches formed and dispatched so far. Under the pipelined dispatcher a
    /// batch counts as soon as it is handed to the scheduler (its index is
    /// assigned then), so this can run ahead of completions while batches are
    /// in flight; completed-batch counts are the per-class latency views'
    /// `batches` fields.
    pub batches_run: usize,
    /// The service ledger: residency-cache events and per-batch transfer
    /// seconds (phase `"serve.batch"`, batch-scoped under pipelining).
    pub ledger: StatsLedger,
    /// Latency view of completed interactive batches (sliding window: the
    /// most recent 4096 per class; counters above remain exact forever).
    pub interactive: ClassLatency,
    /// Latency view of completed bulk batches (same sliding window).
    pub bulk: ClassLatency,
    /// Modeled span of the completed batches in the sliding window: last
    /// batch completion minus first batch start on the virtual timeline.
    /// Under pipelining this is the pool's modeled wall time — the figure the
    /// barriered dispatcher can only match by summing per-batch makespans.
    pub span_modeled_s: f64,
    /// Summed modeled batch-span seconds in excess of the timeline they
    /// jointly cover (Σ spans − their union): the span time that ran
    /// *concurrently with* other batches instead of extending the timeline —
    /// the cross-batch overlap the pipelined dispatcher wins. An instant
    /// covered by k batches contributes k−1 seconds per second, so with deep
    /// in-flight windows this can exceed [`ServeStats::span_modeled_s`]. 0
    /// under the barriered dispatcher, whose batches are serial.
    pub cross_batch_overlap_modeled_s: f64,
    /// The service metrics at snapshot time: counters/histograms fed at each
    /// admission and batch completion, gauges (queue depth, per-class latency
    /// percentiles, cache hit ratios, per-device utilization/skew) refreshed
    /// when the snapshot is taken. Render with [`ServeStats::prometheus`];
    /// every figure is modeled time, never wall clock, and every gauge agrees
    /// with the sibling `ServeStats` accessor it mirrors.
    pub metrics: MetricsSnapshot,
    /// Point-in-time evaluation of the configured latency SLOs (multi-window
    /// burn rates over the per-job latency histograms — see
    /// [`ftmap_trace::SloEngine`]). Empty when the service was built without
    /// objectives ([`Observability::slos`]).
    pub slo: SloReport,
}

impl ServeStats {
    /// The pooled residency-cache counters (hits/misses/evictions) the
    /// service's batches caused.
    pub fn cache(&self) -> CacheStats {
        self.ledger.cache_stats()
    }

    /// The pooled derived-payload cache counters (receptor FFT transforms +
    /// plans the batched FFT engine keeps next to the raw grids).
    pub fn derived_cache(&self) -> CacheStats {
        self.ledger.derived_cache_stats()
    }

    /// The per-class latency view for `class`.
    pub fn latency(&self, class: LatencyClass) -> ClassLatency {
        match class {
            LatencyClass::Interactive => self.interactive,
            LatencyClass::Bulk => self.bulk,
        }
    }

    /// Raw + derived residency counters folded into one window — the
    /// side-by-side buckets ([`ServeStats::cache`],
    /// [`ServeStats::derived_cache`]) combined, so dashboards that want a
    /// single residency figure do not re-derive it inconsistently.
    pub fn combined_cache(&self) -> CacheStats {
        let mut combined = self.cache();
        combined.accumulate(&self.derived_cache());
        combined
    }

    /// Combined hit ratio over the raw **and** derived residency buckets:
    /// total hits over total lookups, in `[0, 1]` (0 when nothing was looked
    /// up).
    pub fn combined_hit_ratio(&self) -> f64 {
        self.combined_cache().hit_rate()
    }

    /// The metrics snapshot rendered in the Prometheus text exposition
    /// format.
    pub fn prometheus(&self) -> String {
        self.metrics.prometheus()
    }

    /// The worst alert state across the configured SLOs
    /// ([`AlertState::Ok`] when none are configured).
    pub fn slo_alert(&self) -> AlertState {
        self.slo.worst_state()
    }
}

/// One admitted job travelling through the queue.
struct Job {
    id: JobId,
    request: MappingRequest,
    fingerprint: u64,
    class: LatencyClass,
    overtaken: usize,
    /// Virtual-timeline instant of admission: batch latency measures from the
    /// earliest admitted job, so time spent in the dispatcher's pending queue
    /// (waiting out `max_inflight_batches` flow control or being overtaken)
    /// counts as modeled queue wait, not just scheduler-residence time.
    admitted_v_s: f64,
    /// The trace id threaded through this job's whole lifecycle: the client's
    /// [`MappingRequest::trace_id`] when supplied, the job id otherwise.
    trace_id: u64,
    /// The fairness-quota tenant label ([`MappingRequest::tenant_label`]),
    /// resolved once at admission.
    tenant: String,
    /// The job's work units ([`request_weight`]) under the config it was
    /// admitted with (post-degrade) — the admission backlog currency.
    weight: f64,
    /// The admission controller's latency estimate at submit time (`None`
    /// until the cost model calibrates).
    estimated_s: Option<f64>,
    /// The modeled deadline the job was held to, if any.
    deadline_s: Option<f64>,
    /// The degrade the controller applied, if any.
    degrade: Option<AppliedDegrade>,
    slot: Arc<JobSlot>,
}

impl Batchable for Job {
    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn class(&self) -> LatencyClass {
        self.class
    }

    fn note_overtaken(&mut self) {
        self.overtaken += 1;
    }

    fn overtaken(&self) -> usize {
        self.overtaken
    }
}

/// Most recent batches the latency/span views cover. A long-lived service
/// completes batches indefinitely; bounding the books keeps `stats()` cost
/// and memory flat — the views are a sliding window, which is what a latency
/// dashboard wants anyway (the monotone counters remain exact forever).
const LATENCY_WINDOW: usize = 4096;

/// Per-batch latency/span bookkeeping (modeled virtual-timeline seconds),
/// bounded to the most recent [`LATENCY_WINDOW`] entries per series.
#[derive(Default)]
struct LatencyBook {
    interactive_s: Vec<f64>,
    bulk_s: Vec<f64>,
    /// `(started, completed)` per batch, completion order.
    spans: Vec<(f64, f64)>,
}

/// Appends to a sliding-window series, evicting the oldest past the cap.
fn push_windowed<T>(series: &mut Vec<T>, value: T) {
    if series.len() == LATENCY_WINDOW {
        series.remove(0);
    }
    series.push(value);
}

impl LatencyBook {
    fn record(&mut self, class: LatencyClass, latency_s: f64, span: (f64, f64)) {
        match class {
            LatencyClass::Interactive => push_windowed(&mut self.interactive_s, latency_s),
            LatencyClass::Bulk => push_windowed(&mut self.bulk_s, latency_s),
        }
        push_windowed(&mut self.spans, span);
    }

    /// `(overall span, cross-batch overlap)`: max completion minus min start,
    /// and Σ span lengths minus their union — an instant covered by k spans
    /// contributes k−1 (see [`ServeStats::cross_batch_overlap_modeled_s`]).
    fn span_stats(&self) -> (f64, f64) {
        if self.spans.is_empty() {
            return (0.0, 0.0);
        }
        let mut sorted = self.spans.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = sorted.iter().map(|(s, e)| (e - s).max(0.0)).sum();
        let first_start = sorted[0].0;
        let mut union = 0.0;
        let mut last_end = sorted[0].0;
        let mut cur = sorted[0];
        for &(s, e) in &sorted[1..] {
            if s > cur.1 {
                union += cur.1 - cur.0;
                cur = (s, e);
            } else {
                cur.1 = cur.1.max(e);
            }
            last_end = last_end.max(e);
        }
        last_end = last_end.max(cur.1);
        union += cur.1 - cur.0;
        (last_end - first_start, (total - union).max(0.0))
    }
}

struct Shared {
    queue: JobQueue<Job>,
    pool: Arc<DevicePool>,
    config: ServeConfig,
    /// The trace sink every layer below reports into: the scheduler holds its
    /// own clone, the serve layer records admission/queue-depth/completion
    /// events here. The no-op sink by default — `enabled()` is checked before
    /// any event is assembled.
    trace: Arc<dyn TraceSink>,
    /// The service metrics registry (modeled instants only, never wall
    /// clock). Counters and histograms are fed as events happen; gauges are
    /// refreshed when [`BatchMappingService::stats`] snapshots.
    metrics: Arc<MetricsRegistry>,
    /// The persistent phased scheduler (pipelined mode only).
    sched: Option<PhasePipeline>,
    /// SLO burn-rate engine over per-job modeled latencies; `None` when no
    /// objectives were configured (the untraced default).
    slo: Option<Mutex<SloEngine>>,
    /// Flight recorder for tail-sampled trace retention. When set it is
    /// normally the same recorder behind [`Shared::trace`], so the trees it
    /// retains on a breach/outlier verdict are complete.
    flight: Option<Arc<FlightRecorder>>,
    ledger: Mutex<StatsLedger>,
    latency: Mutex<LatencyBook>,
    /// Last-seen per-device residency-cache counters, `(raw, derived)` per
    /// device; batch completions take deltas against these, so cache events
    /// partition exactly across completions even when batches overlap
    /// (pipelined mode). The derived bucket counts receptor-transform/plan
    /// payloads the batched FFT engine caches next to the raw grids.
    cache_mark: Mutex<Vec<(CacheStats, CacheStats)>>,
    /// Barrier mode's modeled timeline: batches run back to back, so each
    /// batch's span is `[clock, clock + makespan)`.
    modeled_clock: Mutex<f64>,
    jobs_submitted: AtomicUsize,
    jobs_completed: AtomicUsize,
    batches_run: AtomicUsize,
    /// Host-side receptor-grid build memo, keyed by request fingerprint.
    /// MRU-ordered and capped at [`GRIDS_MEMO_CAP`] entries — a long-lived
    /// service streaming ever-new receptors must not grow host memory without
    /// bound (the device-side residency cache is budgeted for the same
    /// reason; resident `Arc`s stay alive through the caches even after the
    /// memo forgets them).
    grids: Mutex<Vec<(u64, Arc<ReceptorGrids>)>>,
    /// The admission controller's mutable state: the calibrated cost model,
    /// the not-yet-scheduled backlog per class, the fairness in-flight
    /// counters, warm-receptor tracking and the slack epoch. Lock ordering:
    /// never taken while holding a scheduler-internal lock — the submit path
    /// reads the scheduler projection *before* locking this.
    admission: Mutex<AdmissionState>,
    /// Signalled whenever admission-state slack appears (a job completes or a
    /// new job is admitted); the dispatcher waits on it when every pending
    /// job is fairness-blocked.
    slack: Condvar,
}

/// Receptor grid sets the host-side memo retains (MRU).
const GRIDS_MEMO_CAP: usize = 8;

/// Upper bounds (modeled seconds) of the per-class batch-latency histograms —
/// log-spaced around the sub-second modeled latencies the simulated pool
/// produces, with headroom for deep bulk queues.
const LATENCY_BOUNDS: [f64; 12] =
    [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0];

/// Per-job admission-to-completion latency histogram — the SLO engine's long
/// burn-rate window. Unlike the batch histogram it counts every job from its
/// *own* admission instant.
const JOB_LATENCY_METRIC: &str = "ftmap_serve_job_latency_modeled_seconds";

/// Upper bounds of the estimator-error histogram: the ratio of the admission
/// controller's estimate to the realized per-job modeled latency, log-spaced
/// around 1 (perfect). Ratios below 1 are under-estimates (the dangerous
/// direction for deadlines), above 1 over-estimates (the load-shedding
/// direction).
const ERROR_RATIO_BOUNDS: [f64; 7] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

impl Shared {
    /// The memoized receptor grids for `fingerprint`, building them from the
    /// anchor job's request on first sight. Promotes to MRU; evicts LRU past
    /// the cap.
    fn receptor_for(&self, fingerprint: u64, anchor: &Job) -> Arc<ReceptorGrids> {
        let mut memo = locked(&self.grids);
        if let Some(pos) = memo.iter().position(|(key, _)| *key == fingerprint) {
            let entry = memo.remove(pos);
            let grids = Arc::clone(&entry.1);
            memo.insert(0, entry);
            return grids;
        }
        let grids =
            Docking::build_receptor(&anchor.request.protein.atoms, &anchor.request.config.docking);
        memo.insert(0, (fingerprint, Arc::clone(&grids)));
        memo.truncate(GRIDS_MEMO_CAP);
        grids
    }

    /// Residency-cache events since the previous call, pool-wide. Completion
    /// windows never overlap (each event is counted against exactly one
    /// completion), which is what keeps the aggregate exact under pipelining.
    fn take_cache_delta(&self) -> (CacheStats, CacheStats) {
        let mut mark = locked(&self.cache_mark);
        let mut raw = CacheStats::default();
        let mut derived = CacheStats::default();
        for (device, (raw_before, derived_before)) in
            self.pool.devices().iter().zip(mark.iter_mut())
        {
            let residency = device.residency();
            let raw_now = residency.stats();
            let derived_now = residency.derived_stats();
            raw.accumulate(&raw_now.delta_since(raw_before));
            derived.accumulate(&derived_now.delta_since(derived_before));
            *raw_before = raw_now;
            *derived_before = derived_now;
        }
        (raw, derived)
    }

    /// One pipeline per job (each job keeps its own config), all sharing the
    /// pool and the prebuilt receptor grids.
    fn job_pipelines(&self, batch: &[Job], receptor: &Arc<ReceptorGrids>) -> Vec<FtMapPipeline> {
        batch
            .iter()
            .map(|job| {
                FtMapPipeline::with_shared_resources(
                    job.request.protein.clone(),
                    job.request.ff.clone(),
                    job.request.config.clone(),
                    Arc::clone(&self.pool),
                    Arc::clone(receptor),
                )
            })
            .collect()
    }

    /// The modeled "now" serve-layer edges are stamped with: the scheduler's
    /// virtual clock under pipelining, the barrier path's batch clock
    /// otherwise.
    fn now_v_s(&self) -> f64 {
        match &self.sched {
            Some(sched) => sched.now_v_s(),
            None => *locked(&self.modeled_clock),
        }
    }

    /// The modeled seconds until the pool's ready backlog at priorities
    /// `<= priority_cutoff` drains, from the scheduler's projection (0 under
    /// the barrier dispatcher, whose batches the pending-weight term covers).
    fn projected_wait_s(&self, priority_cutoff: Option<u32>) -> f64 {
        let Some(sched) = &self.sched else {
            return 0.0;
        };
        let now = sched.now_v_s();
        let earliest = sched
            .projected_completion_v_s(priority_cutoff)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        if earliest.is_finite() {
            (earliest - now).max(0.0)
        } else {
            0.0
        }
    }

    /// The admission controller's latency estimate for a candidate
    /// `(config, class)` against the live modeled state. `None` until the
    /// cost model calibrates. Lock ordering: the scheduler projection is read
    /// *before* the admission mutex — scheduler completion callbacks take the
    /// admission lock, so the reverse order could invert.
    fn estimate_for(
        &self,
        config: &FtMapConfig,
        n_probes: usize,
        fingerprint: u64,
        class: LatencyClass,
    ) -> Option<LatencyEstimate> {
        let wait_base_s = self.projected_wait_s(Some(class.priority()));
        let n_devices = self.pool.devices().len();
        let admission = locked(&self.admission);
        let pending = admission.pending_weight_through(class.priority());
        let cold = !admission.is_warm(fingerprint);
        admission.model.estimate(
            wait_base_s,
            pending,
            request_weight(config, n_probes),
            n_probes,
            n_devices,
            cold,
        )
    }

    /// The modeled retry-after hint handed back with a `QueueFull` rejection:
    /// the earliest projected completion across the pool — when slack is next
    /// expected to appear.
    fn retry_after_hint(&self) -> f64 {
        self.projected_wait_s(None)
    }

    /// Counts one admission verdict onto the verdict counter.
    fn note_verdict(&self, verdict: &'static str, class: LatencyClass) {
        self.metrics.counter_add(
            "ftmap_serve_admission_verdicts_total",
            &[("verdict", verdict), ("class", class.name())],
            1.0,
        );
    }

    /// Blocks the dispatcher until the admission epoch moves past
    /// `seen_epoch` — a completion released an in-flight slot or a new job
    /// was admitted, either of which can unblock a fairness-gated batch.
    fn wait_for_slack(&self, seen_epoch: u64) {
        let mut admission = locked(&self.admission);
        while admission.epoch == seen_epoch {
            admission = wait_on(&self.slack, admission);
        }
    }

    /// Samples the admission-queue depth onto the queue track (rendered as a
    /// Perfetto counter series) — call after any push/drain that changes it.
    fn note_queue_depth(&self, at_v_s: f64) {
        if self.trace.enabled() {
            self.trace.record(
                TraceEvent::instant(Track::Queue, "queue_depth", Category::Serve, at_v_s)
                    .with_tags(Tags::default().with_num("depth", self.queue.len() as f64)),
            );
        }
    }

    /// The serve-layer admission edge for one job: verdict + submission
    /// counters, an `admit` instant (tenant + class + verdict tags) and a
    /// queue-depth sample on the queue track. Called after the queue accepted
    /// the job.
    fn note_admitted(
        &self,
        tenant: &str,
        class: LatencyClass,
        admitted_v_s: f64,
        trace_id: u64,
        verdict: &'static str,
    ) {
        self.note_verdict(verdict, class);
        self.metrics.counter_add(
            "ftmap_serve_jobs_submitted_total",
            &[("class", class.name())],
            1.0,
        );
        if self.trace.enabled() {
            let tags = Tags {
                tenant: Some(tenant.to_string()),
                class: Some(class.name()),
                trace: Some(trace_id),
                ..Tags::default()
            }
            .with_verdict(verdict);
            self.trace.record(
                TraceEvent::instant(Track::Queue, "admit", Category::Serve, admitted_v_s)
                    .with_tags(tags),
            );
            self.note_queue_depth(admitted_v_s);
        }
    }

    /// The batch-formation edge: the dispatcher extracted `jobs` compatible
    /// jobs into batch `batch_index` and is handing it to a dispatcher. Emits
    /// one `batch-form` instant plus a per-job `job-batched` instant carrying
    /// each job's trace id, so a request's causal tree records how long it
    /// waited between admission and joining a batch.
    fn note_batch_formed(&self, batch_index: usize, jobs: &[Job], class: LatencyClass) {
        self.metrics.counter_add(
            "ftmap_serve_batches_formed_total",
            &[("class", class.name())],
            1.0,
        );
        if self.trace.enabled() {
            let at_v_s = self.now_v_s();
            let tags = Tags {
                batch_seq: Some(batch_index as u64),
                class: Some(class.name()),
                ..Tags::default()
            }
            .with_num("jobs", jobs.len() as f64);
            self.trace.record(
                TraceEvent::instant(Track::Queue, "batch-form", Category::Serve, at_v_s)
                    .with_tags(tags),
            );
            for job in jobs {
                let tags = Tags {
                    batch_seq: Some(batch_index as u64),
                    class: Some(class.name()),
                    trace: Some(job.trace_id),
                    ..Tags::default()
                };
                self.trace.record(
                    TraceEvent::instant(Track::Queue, "job-batched", Category::Serve, at_v_s)
                        .with_tags(tags),
                );
            }
            self.note_queue_depth(at_v_s);
        }
    }

    /// Per-job completion bookkeeping: the job's own admission-to-completion
    /// latency feeds the [`JOB_LATENCY_METRIC`] histogram and the SLO engine,
    /// a `job-resolve` instant closes the request's causal tree, and the
    /// tail-sampling verdict tells the flight recorder whether to retain the
    /// tree. Returns the job's modeled latency.
    fn note_job_resolved(
        &self,
        job: &Job,
        summary: &BatchSummary,
        slo_snapshot: Option<&MetricsSnapshot>,
    ) -> f64 {
        let latency_job_s = (summary.completed_modeled_s - job.admitted_v_s).max(0.0);
        let class = job.class.name();
        // Observe into the engine *before* the metric: the long window must
        // not yet contain this sample when classifying it as a p99 outlier.
        let verdict = match (&self.slo, slo_snapshot) {
            (Some(engine), Some(snapshot)) => {
                let hist = snapshot.histogram(JOB_LATENCY_METRIC, &[("class", class)]);
                locked(engine).observe(class, latency_job_s, hist)
            }
            _ => SampleVerdict::default(),
        };
        self.metrics.observe(
            JOB_LATENCY_METRIC,
            &[("class", class)],
            &LATENCY_BOUNDS,
            latency_job_s,
        );
        // Estimator accuracy: the ratio of the admission-time estimate to the
        // realized latency (1 = perfect, <1 under-estimated).
        if let Some(estimated_s) = job.estimated_s {
            if latency_job_s > 0.0 {
                self.metrics.observe(
                    "ftmap_serve_estimator_error_ratio",
                    &[("class", class)],
                    &ERROR_RATIO_BOUNDS,
                    (estimated_s / latency_job_s).min(1e6),
                );
            }
        }
        let missed = job.deadline_s.map(|deadline| latency_job_s > deadline);
        if let Some(missed) = missed {
            self.metrics.counter_add(
                "ftmap_serve_deadline_outcomes_total",
                &[("class", class), ("outcome", if missed { "missed" } else { "met" })],
                1.0,
            );
        }
        {
            let mut admission = locked(&self.admission);
            admission.release_inflight(job.fingerprint, &job.tenant);
            if let Some(missed) = missed {
                admission.note_deadline(job.class.priority(), missed);
            }
        }
        self.slack.notify_all();
        if self.trace.enabled() {
            let tags = Tags {
                batch_seq: Some(summary.batch_index as u64),
                class: Some(class),
                trace: Some(job.trace_id),
                ..Tags::default()
            }
            .with_num("latency_s", latency_job_s)
            .with_num("admitted_v_s", job.admitted_v_s);
            self.trace.record(
                TraceEvent::instant(
                    Track::Queue,
                    "job-resolve",
                    Category::Serve,
                    summary.completed_modeled_s,
                )
                .with_tags(tags),
            );
        }
        // After the resolve instant, so a retained tree includes it.
        if let Some(flight) = &self.flight {
            flight.note_request(job.trace_id, verdict.retain());
        }
        latency_job_s
    }

    /// Batch-completion bookkeeping shared by both dispatchers: completion
    /// counters, the per-class latency histogram, residency-event counters,
    /// and a `batch-resolve` instant on the queue track.
    fn note_batch_completed(&self, summary: &BatchSummary) {
        let class = summary.class.name();
        self.metrics.counter_add("ftmap_serve_batches_completed_total", &[("class", class)], 1.0);
        self.metrics.counter_add(
            "ftmap_serve_jobs_completed_total",
            &[("class", class)],
            summary.jobs as f64,
        );
        self.metrics.observe(
            "ftmap_serve_batch_latency_modeled_seconds",
            &[("class", class)],
            &LATENCY_BOUNDS,
            summary.latency_modeled_s,
        );
        for (bucket, stats) in [("raw", &summary.cache), ("derived", &summary.derived_cache)] {
            for (kind, value) in [
                ("hit", stats.hits),
                ("miss", stats.misses),
                ("evict", stats.evictions),
                ("insert", stats.insertions),
            ] {
                self.metrics.counter_add(
                    "ftmap_serve_cache_events_total",
                    &[("bucket", bucket), ("kind", kind)],
                    value as f64,
                );
            }
        }
        if self.trace.enabled() {
            let tags = Tags {
                batch_seq: Some(summary.batch_index as u64),
                class: Some(class),
                ..Tags::default()
            }
            .with_num("jobs", summary.jobs as f64)
            .with_num("latency_s", summary.latency_modeled_s)
            .with_num("makespan_s", summary.makespan_modeled_s);
            self.trace.record(
                TraceEvent::instant(
                    Track::Queue,
                    "batch-resolve",
                    Category::Serve,
                    summary.completed_modeled_s,
                )
                .with_tags(tags),
            );
        }
    }

    /// Refreshes every gauge the registry exposes so the snapshot that
    /// follows agrees with the sibling `ServeStats` fields: queue depth,
    /// per-class latency percentiles, cache hit ratios (raw / derived /
    /// combined), and — under pipelining — per-device busy seconds,
    /// utilization, and pool load skew.
    fn refresh_gauges(&self, interactive: &ClassLatency, bulk: &ClassLatency) {
        let metrics = &self.metrics;
        metrics.gauge_set("ftmap_serve_queue_depth", &[], self.queue.len() as f64);
        // Trace-loss visibility: orphaned anchored events plus (for a flight
        // recorder) ring evictions. 0 for the no-op sink.
        metrics.gauge_set("ftmap_trace_dropped_events", &[], self.trace.dropped_events() as f64);
        for (class, lat) in [("interactive", interactive), ("bulk", bulk)] {
            for (stat, value) in [("mean", lat.mean_s), ("p95", lat.p95_s), ("max", lat.max_s)] {
                metrics.gauge_set(
                    "ftmap_serve_latency_modeled_seconds",
                    &[("class", class), ("stat", stat)],
                    value,
                );
            }
        }
        let outcomes = locked(&self.admission).deadline_outcomes;
        for (class, (met, missed)) in [("interactive", outcomes[0]), ("bulk", outcomes[1])] {
            let total = met + missed;
            if total > 0 {
                metrics.gauge_set(
                    "ftmap_serve_deadline_miss_ratio",
                    &[("class", class)],
                    missed as f64 / total as f64,
                );
            }
        }
        let (raw, derived) = {
            let ledger = locked(&self.ledger);
            (ledger.cache_stats(), ledger.derived_cache_stats())
        };
        let mut combined = raw;
        combined.accumulate(&derived);
        for (bucket, stats) in [("raw", &raw), ("derived", &derived), ("combined", &combined)] {
            metrics.gauge_set(
                "ftmap_serve_cache_hit_ratio",
                &[("bucket", bucket)],
                stats.hit_rate(),
            );
        }
        if let Some(sched) = &self.sched {
            let busy = sched.device_busy_modeled_s();
            let clocks = sched.device_clocks_v_s();
            let horizon = clocks.iter().copied().fold(0.0, f64::max);
            let max_busy = busy.iter().copied().fold(0.0, f64::max);
            let min_busy = busy.iter().copied().fold(f64::INFINITY, f64::min);
            for (index, busy_s) in busy.iter().enumerate() {
                let device = index.to_string();
                metrics.gauge_set(
                    "ftmap_serve_device_busy_modeled_seconds",
                    &[("device", device.as_str())],
                    *busy_s,
                );
                metrics.gauge_set(
                    "ftmap_serve_device_utilization",
                    &[("device", device.as_str())],
                    if horizon > 0.0 { busy_s / horizon } else { 0.0 },
                );
            }
            if max_busy > 0.0 {
                metrics.gauge_set("ftmap_serve_device_skew", &[], (max_busy - min_busy) / max_busy);
            }
        }
    }
}

/// Observability wiring for [`BatchMappingService::with_observability`]:
/// the trace sink every layer records into, plus the optional SLO objectives
/// and flight recorder built on top of it.
pub struct Observability {
    /// The trace sink (scheduler items, kernels, transfers, serve edges).
    pub sink: Arc<dyn TraceSink>,
    /// Latency objectives evaluated per completed job (multi-window burn
    /// rates — see [`ftmap_trace::SloEngine`]). Empty disables the engine.
    pub slos: Vec<SloSpec>,
    /// Flight recorder for tail-sampled trace retention. Should be the same
    /// recorder `sink` records into (use [`Observability::flight`]) so the
    /// trees it retains are complete.
    pub flight: Option<Arc<FlightRecorder>>,
}

impl Observability {
    /// Tracing only: record into `sink`, no SLOs, no flight recorder.
    pub fn trace(sink: Arc<dyn TraceSink>) -> Self {
        Observability { sink, slos: Vec::new(), flight: None }
    }

    /// Flight-recorder wiring: `recorder` is both the trace sink and the
    /// tail-sampled retention store, with `slos` driving the retention
    /// verdicts (and the `ServeStats::slo` report).
    pub fn flight(recorder: Arc<FlightRecorder>, slos: Vec<SloSpec>) -> Self {
        Observability {
            sink: Arc::clone(&recorder) as Arc<dyn TraceSink>,
            slos,
            flight: Some(recorder),
        }
    }

    /// Adds latency objectives.
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }
}

/// The multi-tenant batch-mapping service. See the [module docs](crate::service).
pub struct BatchMappingService {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    next_id: AtomicU64,
}

/// Builds a [`BatchMappingService`]: the one construction path, replacing the
/// old `new` / `with_trace` / `with_observability` ladder. Obtain one from
/// [`BatchMappingService::builder`], layer on configuration and observability
/// in any order, and [`build`](ServiceBuilder::build).
///
/// ```ignore
/// let service = BatchMappingService::builder(pool)
///     .batch(BatchConfig { max_batch_jobs: 8, ..BatchConfig::default() })
///     .admission(AdmissionConfig { bulk_deadline_s: Some(5.0), ..AdmissionConfig::default() })
///     .trace(recorder)
///     .build();
/// ```
pub struct ServiceBuilder {
    pool: Arc<DevicePool>,
    config: ServeConfig,
    observability: Observability,
}

impl ServiceBuilder {
    /// Replaces the whole service configuration.
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the admission-queue knobs ([`QueueConfig`]).
    pub fn queue(mut self, queue: QueueConfig) -> Self {
        self.config.queue = queue;
        self
    }

    /// Sets the batch-formation/dispatch knobs ([`BatchConfig`]).
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.config.batch = batch;
        self
    }

    /// Sets the SLO-aware admission-control and fairness knobs
    /// ([`AdmissionConfig`]).
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.config.admission = admission;
        self
    }

    /// Records every scheduler item, kernel, transfer, residency event and
    /// serve-layer edge into `sink` on the modeled virtual timeline (resolve
    /// with [`ftmap_trace::Recorder::events`], export with
    /// [`ftmap_trace::export_chrome_trace`]). The no-op sink — one boolean
    /// check per edge — when not called.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.observability.sink = sink;
        self
    }

    /// Adds latency objectives: per-job latencies feed a burn-rate
    /// [`SloEngine`], evaluated into [`ServeStats::slo`] and the
    /// `ftmap_serve_slo_*` gauges at every
    /// [`stats`](BatchMappingService::stats) call.
    pub fn slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.observability.slos = slos;
        self
    }

    /// Wires `recorder` as both the trace sink and the tail-sampled retention
    /// store: each job's tail-sampling verdict — SLO breach or long-window
    /// p99 outlier — tells the recorder whether to retain the request's full
    /// causal tree.
    pub fn flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.observability.sink = Arc::clone(&recorder) as Arc<dyn TraceSink>;
        self.observability.flight = Some(recorder);
        self
    }

    /// Replaces the whole observability wiring at once ([`Observability`]).
    pub fn observability(mut self, observability: Observability) -> Self {
        self.observability = observability;
        self
    }

    /// Starts the service: spawns its dispatcher thread (plus, in pipelined
    /// mode, one persistent scheduler worker per pooled device).
    ///
    /// # Panics
    /// Panics if `queue.max_pending`, `batch.max_batch_jobs` or
    /// `batch.max_inflight_batches` is zero — validated here, at
    /// construction, because a bad bound discovered later, on the dispatcher
    /// thread, would kill the dispatcher and strand every in-flight job
    /// handle.
    pub fn build(self) -> BatchMappingService {
        build_service(self.pool, self.config, self.observability)
    }
}

/// The construction body every public path funnels through (the builder and
/// the deprecated constructors alike).
fn build_service(
    pool: Arc<DevicePool>,
    config: ServeConfig,
    observability: Observability,
) -> BatchMappingService {
    let Observability { sink, slos, flight } = observability;
    assert!(config.batch.max_batch_jobs > 0, "BatchConfig.max_batch_jobs must be at least 1");
    assert!(
        config.batch.max_inflight_batches > 0,
        "BatchConfig.max_inflight_batches must be at least 1"
    );
    let sched = match config.batch.dispatch {
        DispatchMode::Pipelined => {
            Some(PhasePipeline::with_trace(Arc::clone(&pool), Arc::clone(&sink)))
        }
        DispatchMode::Barrier => None,
    };
    let cache_mark = pool
        .devices()
        .iter()
        .map(|d| (d.residency().stats(), d.residency().derived_stats()))
        .collect();
    let shared = Arc::new(Shared {
        queue: JobQueue::new(config.queue.max_pending),
        pool,
        config,
        trace: sink,
        metrics: Arc::new(MetricsRegistry::new()),
        sched,
        slo: if slos.is_empty() { None } else { Some(Mutex::new(SloEngine::new(slos))) },
        flight,
        ledger: Mutex::new(StatsLedger::new()),
        latency: Mutex::new(LatencyBook::default()),
        cache_mark: Mutex::new(cache_mark),
        modeled_clock: Mutex::new(0.0),
        jobs_submitted: AtomicUsize::new(0),
        jobs_completed: AtomicUsize::new(0),
        batches_run: AtomicUsize::new(0),
        grids: Mutex::new(Vec::new()),
        admission: Mutex::new(AdmissionState::default()),
        slack: Condvar::new(),
    });
    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || dispatch_loop(&shared))
    };
    BatchMappingService { shared, dispatcher: Some(dispatcher), next_id: AtomicU64::new(0) }
}

impl BatchMappingService {
    /// Starts building a service over `pool` — see [`ServiceBuilder`].
    pub fn builder(pool: Arc<DevicePool>) -> ServiceBuilder {
        ServiceBuilder {
            pool,
            config: ServeConfig::default(),
            observability: Observability::trace(ftmap_trace::noop()),
        }
    }

    /// Starts a service over `pool` with `config` and no tracing.
    ///
    /// # Panics
    /// Same construction-time bound validation as
    /// [`ServiceBuilder::build`].
    #[deprecated(note = "use BatchMappingService::builder(pool).config(config).build()")]
    pub fn new(pool: Arc<DevicePool>, config: ServeConfig) -> Self {
        build_service(pool, config, Observability::trace(ftmap_trace::noop()))
    }

    /// Starts a service with a trace sink.
    ///
    /// # Panics
    /// Same construction-time bound validation as
    /// [`ServiceBuilder::build`].
    #[deprecated(
        note = "use BatchMappingService::builder(pool).config(config).trace(sink).build()"
    )]
    pub fn with_trace(
        pool: Arc<DevicePool>,
        config: ServeConfig,
        sink: Arc<dyn TraceSink>,
    ) -> Self {
        build_service(pool, config, Observability::trace(sink))
    }

    /// Starts a service with full observability wiring.
    ///
    /// # Panics
    /// Same construction-time bound validation as
    /// [`ServiceBuilder::build`].
    #[deprecated(note = "use BatchMappingService::builder(pool).config(config)\
                .observability(observability).build()")]
    pub fn with_observability(
        pool: Arc<DevicePool>,
        config: ServeConfig,
        observability: Observability,
    ) -> Self {
        build_service(pool, config, observability)
    }

    /// The device pool the service schedules onto.
    pub fn pool(&self) -> &Arc<DevicePool> {
        &self.shared.pool
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// The admission controller's current latency estimate for `request`,
    /// against the live modeled state — what `submit` would compare to the
    /// deadline right now. `None` until the cost model calibrates (the first
    /// batch completion).
    pub fn estimate_request(&self, request: &MappingRequest) -> Option<LatencyEstimate> {
        self.shared.estimate_for(
            &request.config,
            request.probes.len(),
            request.receptor_fingerprint(),
            request.class,
        )
    }

    fn admit(
        &self,
        request: MappingRequest,
        class: LatencyClass,
        estimated_s: Option<f64>,
        deadline_s: Option<f64>,
        degrade: Option<AppliedDegrade>,
    ) -> Job {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let admitted_v_s = match &self.shared.sched {
            Some(sched) => sched.now_v_s(),
            None => *locked(&self.shared.modeled_clock),
        };
        Job {
            id,
            fingerprint: request.receptor_fingerprint(),
            class,
            overtaken: 0,
            admitted_v_s,
            trace_id: request.trace_id.unwrap_or(id.0),
            tenant: request.tenant_label().to_string(),
            weight: request_weight(&request.config, request.probes.len()),
            estimated_s,
            deadline_s,
            degrade,
            slot: JobSlot::new(),
            request,
        }
    }

    /// Submits a request through the admission controller, **blocking** while
    /// the admission queue is full (backpressure), and returns the typed
    /// [`AdmissionVerdict`]: admitted (plain, reprioritized, or degraded)
    /// with a [`JobHandle`], or rejected with the request handed back and a
    /// modeled retry-after hint. A blocking submit is only rejected on an
    /// unmeetable deadline or a closing service.
    pub fn submit(&self, request: MappingRequest) -> AdmissionVerdict {
        self.submit_inner(request, true)
    }

    /// [`submit`](BatchMappingService::submit) without blocking: a full
    /// admission queue rejects ([`RejectReason::QueueFull`]) instead of
    /// waiting, so the client owns the shedding/retry policy.
    pub fn try_submit(&self, request: MappingRequest) -> AdmissionVerdict {
        self.submit_inner(request, false)
    }

    fn submit_inner(&self, mut request: MappingRequest, blocking: bool) -> AdmissionVerdict {
        let requested_class = request.class;
        let deadline_s = request
            .deadline_s
            .or_else(|| self.shared.config.admission.deadline_for(requested_class));
        let fingerprint = request.receptor_fingerprint();
        let n_probes = request.probes.len();
        let decision = decide(
            &self.shared.config.admission,
            requested_class,
            deadline_s,
            &request.config,
            |config, class| self.shared.estimate_for(config, n_probes, fingerprint, class),
        );
        let (class, estimated_s, degrade) = match decision {
            Decision::Admit { estimated_s } => (requested_class, estimated_s, None),
            Decision::Reprioritize { to, estimated_s } => (to, Some(estimated_s), None),
            Decision::Degrade { config, applied, estimated_s } => {
                // Grid geometry is untouched by degradation, so the receptor
                // fingerprint — the batching key — is preserved.
                request.config = config;
                (requested_class, Some(estimated_s), Some(applied))
            }
            Decision::Reject { estimated_s, deadline_s } => {
                self.shared.note_verdict("rejected", requested_class);
                return AdmissionVerdict::Rejected {
                    request,
                    reason: RejectReason::DeadlineUnmeetable { estimated_s, deadline_s },
                    retry_after_modeled_s: Some((estimated_s - deadline_s).max(0.0)),
                };
            }
        };
        let job = self.admit(request, class, estimated_s, deadline_s, degrade);
        let handle = JobHandle::new(job.id, job.request.tag.clone(), Arc::clone(&job.slot));
        let (priority, weight) = (class.priority(), job.weight);
        let (admitted_v_s, trace_id) = (job.admitted_v_s, job.trace_id);
        let tenant = job.tenant.clone();
        let pushed =
            if blocking { self.shared.queue.push(job) } else { self.shared.queue.try_push(job) };
        match pushed {
            Ok(()) => {
                self.shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                {
                    let mut admission = locked(&self.shared.admission);
                    admission.add_pending(priority, weight);
                    admission.epoch = admission.epoch.wrapping_add(1);
                }
                self.shared.slack.notify_all();
                let verdict = match degrade {
                    Some(applied) => AdmissionVerdict::Degraded { handle, applied },
                    None if class != requested_class => {
                        AdmissionVerdict::Reprioritized { handle, from: requested_class, to: class }
                    }
                    None => AdmissionVerdict::Admitted(handle),
                };
                self.shared.note_admitted(&tenant, class, admitted_v_s, trace_id, verdict.name());
                verdict
            }
            Err(SubmitError::Full(job)) => {
                self.shared.note_verdict("rejected", class);
                AdmissionVerdict::Rejected {
                    request: job.request,
                    reason: RejectReason::QueueFull,
                    retry_after_modeled_s: Some(self.shared.retry_after_hint()),
                }
            }
            Err(SubmitError::Closed(job)) => {
                self.shared.note_verdict("rejected", class);
                AdmissionVerdict::Rejected {
                    request: job.request,
                    reason: RejectReason::Closed,
                    retry_after_modeled_s: None,
                }
            }
        }
    }

    /// A snapshot of the service counters, ledger and latency views.
    pub fn stats(&self) -> ServeStats {
        let (span_modeled_s, cross_batch_overlap_modeled_s, interactive, bulk) = {
            let book = locked(&self.shared.latency);
            let (span, overlap) = book.span_stats();
            (
                span,
                overlap,
                ClassLatency::from_samples(&book.interactive_s),
                ClassLatency::from_samples(&book.bulk_s),
            )
        };
        self.shared.refresh_gauges(&interactive, &bulk);
        let slo = match &self.shared.slo {
            Some(engine) => {
                let snapshot = self.shared.metrics.snapshot();
                let report = locked(engine)
                    .evaluate(|class| snapshot.histogram(JOB_LATENCY_METRIC, &[("class", class)]));
                report.export_gauges(&self.shared.metrics, "ftmap_serve_slo");
                report
            }
            None => SloReport::default(),
        };
        ServeStats {
            jobs_submitted: self.shared.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.shared.jobs_completed.load(Ordering::Relaxed),
            batches_run: self.shared.batches_run.load(Ordering::Relaxed),
            ledger: locked(&self.shared.ledger).clone(),
            interactive,
            bulk,
            span_modeled_s,
            cross_batch_overlap_modeled_s,
            metrics: self.shared.metrics.snapshot(),
            slo,
        }
    }

    /// Stops admissions, drains every pending job (including in-flight
    /// pipelined batches), joins the dispatcher, and returns the final stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        self.shared.queue.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            // A dispatcher panic (a job panicking inside the pipeline) is a
            // service failure, but re-panicking here would abort the process
            // when it happens during Drop-while-unwinding; report and move on.
            if dispatcher.join().is_err() {
                eprintln!("ftmap-serve: dispatcher thread panicked; unfinished jobs are stranded");
            }
        }
    }
}

impl Drop for BatchMappingService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Forms the next batch under the fairness gates, reserving an in-flight
/// slot for every member as it joins. Returns the batch and the admission
/// epoch observed while forming it — when the batch comes back empty from a
/// non-empty pending list, every candidate anchor was fairness-blocked, and
/// the dispatcher waits for the epoch to move (a completion releasing slots,
/// or a fresh admission).
fn form_batch(shared: &Shared, pending: &mut Vec<Job>) -> (Vec<Job>, u64) {
    let admission = &shared.config.admission;
    let receptor_cap = admission.max_inflight_per_receptor.map(|cap| cap.max(1));
    let quota_total = admission.quota_total(&shared.config.batch);
    let state = RefCell::new(locked(&shared.admission));
    let epoch = state.borrow().epoch;
    let fits = |job: &Job, state: &AdmissionState| {
        receptor_cap.is_none_or(|cap| state.receptor_load(job.fingerprint) < cap)
            && state.tenant_load(&job.tenant) < admission.tenant_allowance(&job.tenant, quota_total)
    };
    let batch = next_batch_admission(
        pending,
        shared.config.batch.max_batch_jobs,
        shared.config.batch.bulk_aging,
        |job| fits(job, &state.borrow()),
        |job| {
            // Re-check under the same lock, then reserve: earlier members of
            // this very batch count against the later ones' caps/quotas.
            let mut state = state.borrow_mut();
            let ok = fits(job, &state);
            if ok {
                state.reserve_inflight(job.fingerprint, &job.tenant);
            }
            ok
        },
    );
    (batch, epoch)
}

/// The dispatcher: drain → batch (under the fairness gates) → dispatch,
/// until closed and empty; then wait out whatever the phased scheduler still
/// has in flight.
fn dispatch_loop(shared: &Arc<Shared>) {
    let mut pending: Vec<Job> = Vec::new();
    loop {
        // Opportunistic top-up so jobs that arrived during the previous batch
        // can join — or overtake into — the next compatible one.
        pending.extend(shared.queue.drain_now());
        if pending.is_empty() {
            match shared.queue.drain_wait() {
                Some(jobs) => pending.extend(jobs),
                None => break, // closed and fully drained
            }
        }
        let (batch, epoch) = form_batch(shared, &mut pending);
        if batch.is_empty() {
            // Every pending anchor is fairness-blocked. Allowances and caps
            // are clamped to ≥ 1, so a blocked job implies work in flight —
            // a completion is coming, and it bumps the epoch.
            shared.wait_for_slack(epoch);
            continue;
        }
        match shared.config.batch.dispatch {
            DispatchMode::Barrier => run_batch(shared, batch),
            DispatchMode::Pipelined => submit_batch(shared, batch),
        }
    }
    if let Some(sched) = &shared.sched {
        sched.drain();
    }
}

/// Pipelined dispatch: hand the batch to the phased scheduler and return as
/// soon as flow control allows — completion (result assembly, job slots,
/// ledger) happens in the scheduler's completion callback, while this thread
/// goes back to forming the next batch.
fn submit_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    if batch.is_empty() {
        return;
    }
    // A pipelined service always constructs its scheduler; if a future
    // configuration path ever violates that, degrade to the barrier
    // dispatcher (same results, no overlap) instead of panicking the
    // dispatch thread mid-service.
    let Some(sched) = shared.sched.as_ref() else {
        return run_batch(shared, batch);
    };
    // Flow control: keep at most `max_inflight_batches` on the pool — enough
    // that batch N+1 docks under batch N's minimization, bounded so priority
    // admission stays responsive and memory stays flat.
    sched.wait_capacity(shared.config.batch.max_inflight_batches);

    let batch_index = shared.batches_run.fetch_add(1, Ordering::Relaxed);
    for job in &batch {
        job.slot.set_running();
    }
    let class = batch[0].class;
    // The anchor job's tenant label stands in for the batch (batches are
    // receptor- and class-homogeneous; per-job identity stays on the admit
    // instants).
    let tenant = batch[0].tenant.clone();
    shared.note_batch_formed(batch_index, &batch, class);
    let receptor = shared.receptor_for(batch[0].fingerprint, &batch[0]);
    let receptor_key = receptor.content_key();
    let pipelines = shared.job_pipelines(&batch, &receptor);
    let entries: Vec<(usize, ftmap_molecule::Probe)> = batch
        .iter()
        .enumerate()
        .flat_map(|(job_idx, job)| {
            job.request
                .library()
                .probes()
                .iter()
                .map(move |p| (job_idx, p.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    // Per-entry trace ids: the scheduler stamps them onto its dock/minimize
    // item spans (and, via scope-tag inheritance, their kernel / transfer /
    // cache children), tying device work back to the owning request.
    let entry_traces: Vec<u64> = if shared.trace.enabled() {
        entries.iter().map(|(job_idx, _)| batch[*job_idx].trace_id).collect()
    } else {
        Vec::new()
    };
    let exec = Arc::new(PhasedMapBatch::new(pipelines, entries, shared.config.batch.pose_block));

    // The batch is now the scheduler's: its jobs leave the admission
    // controller's pending backlog (the scheduler projection covers them from
    // here on).
    {
        let mut admission = locked(&shared.admission);
        for job in &batch {
            admission.remove_pending(job.class.priority(), job.weight);
        }
    }

    let callback = {
        let shared = Arc::clone(shared);
        let exec = Arc::clone(&exec);
        Box::new(move |report: BatchReport| {
            complete_pipelined_batch(
                &shared,
                batch,
                &exec,
                receptor_key,
                batch_index,
                class,
                &report,
            );
        }) as Box<dyn FnOnce(BatchReport) + Send>
    };
    sched.submit(
        PhasedBatch {
            label: BatchLabel { tenant: Some(tenant), class: Some(class.name()) },
            entry_traces,
            priority: class.priority(),
            entries: exec.entries(),
            dock_weights: exec.dock_weights(),
            exec: exec as Arc<dyn PhasedExec>,
        },
        Some(callback),
    );
}

/// Completion of a pipelined batch (runs on a scheduler worker): batch-scoped
/// accounting, summary, per-job assembly.
fn complete_pipelined_batch(
    shared: &Shared,
    batch: Vec<Job>,
    exec: &PhasedMapBatch,
    receptor_key: u64,
    batch_index: usize,
    class: LatencyClass,
    report: &BatchReport,
) {
    let (cache_delta, derived_delta) = shared.take_cache_delta();
    let transfer_s = report.transfer_modeled_s();
    {
        let mut ledger = locked(&shared.ledger);
        ledger.record_cache(&cache_delta);
        ledger.record_derived_cache(&derived_delta);
        // Batch-scoped bucket: `transfer_s` was measured around exactly this
        // batch's items, so concurrent batches can never double-charge it.
        ledger.record_transfer_s("serve.batch", transfer_s);
    }
    // Calibrate the admission controller's cost model and warm set with what
    // the batch actually did.
    {
        let batch_weight: f64 = batch.iter().map(|job| job.weight).sum();
        let cold = cache_delta.misses > 0;
        // The fraction of the pool this batch actually occupied: devices the
        // scheduler can fill with queue neighbors drain the backlog in
        // parallel, so a half-pool batch works off queued weight twice as
        // fast as its span alone suggests.
        let footprint = report.per_device.iter().filter(|d| d.items() > 0).count();
        let device_share = footprint as f64 / report.per_device.len().max(1) as f64;
        let mut admission = locked(&shared.admission);
        admission.model.observe_batch(
            report.span_modeled_s(),
            device_share,
            batch_weight,
            cold,
            transfer_s,
        );
        admission.note_warm(batch[0].fingerprint);
    }
    // Latency counts from the earliest job's *admission* instant, so modeled
    // queue wait spent in the dispatcher's pending list (flow control,
    // overtaking) is part of the figure — not just scheduler residence.
    let admitted_v_s =
        batch.iter().map(|job| job.admitted_v_s).fold(report.submitted_v_s, f64::min);
    let latency_modeled_s = (report.completed_v_s - admitted_v_s).max(0.0);
    locked(&shared.latency).record(
        class,
        latency_modeled_s,
        (report.started_v_s, report.completed_v_s),
    );
    let summary = BatchSummary {
        batch_index,
        jobs: batch.len(),
        probes: report.docks,
        pose_blocks: report.blocks,
        receptor_key,
        cache: cache_delta,
        derived_cache: derived_delta,
        makespan_modeled_s: report.span_modeled_s(),
        class,
        latency_modeled_s,
        started_modeled_s: report.started_v_s,
        completed_modeled_s: report.completed_v_s,
        overlap_saved_modeled_s: report.overlap_saved_s(),
        transfer_modeled_s: transfer_s,
    };
    shared.note_batch_completed(&summary);
    finish_jobs(shared, batch, exec.take_shards(), summary);
}

/// Executes one batch under the two-phase barrier and completes its jobs —
/// the serial comparator path.
fn run_batch(shared: &Shared, batch: Vec<Job>) {
    if batch.is_empty() {
        return;
    }
    let batch_index = shared.batches_run.fetch_add(1, Ordering::Relaxed);
    for job in &batch {
        job.slot.set_running();
    }
    let class = batch[0].class;
    shared.note_batch_formed(batch_index, &batch, class);

    // One host-side grid build per receptor fingerprint (memoized, bounded).
    let receptor = shared.receptor_for(batch[0].fingerprint, &batch[0]);
    let pipelines = shared.job_pipelines(&batch, &receptor);
    let libraries: Vec<_> = batch.iter().map(|job| job.request.library()).collect();

    // Per-batch accounting windows: transfers reset (gauge) — sound here
    // because barrier batches are strictly serial on the pool — and cache
    // deltas taken at completion like the pipelined path.
    shared.pool.reset_transfer_stats();

    // Interleave every job's probes through work-stealing execution: one fused
    // dock+minimize item per (job, probe) under the coarse schedule, or a
    // dock-once phase followed by pose blocks from all jobs under pose
    // granularity (see `ServeConfig::pose_block`).
    let items: Vec<(usize, ftmap_molecule::Probe)> = libraries
        .iter()
        .enumerate()
        .flat_map(|(job_idx, lib)| lib.probes().iter().map(move |p| (job_idx, p.clone())))
        .collect();
    let n_items = items.len();
    let queue = ShardQueue::new(&shared.pool).with_trace(Arc::clone(&shared.trace));
    let (shards, n_pose_blocks, makespan_modeled_s) = if shared.config.batch.pose_block == 0 {
        let outcome = queue.execute(items, |ctx, (job_idx, probe)| {
            let shard = pipelines[job_idx].map_probe_shard(&probe, ctx.device);
            let kernel_s = shard.kernel_modeled_s;
            ((job_idx, shard), kernel_s)
        });
        let makespan_s = outcome.makespan_s();
        (outcome.results, 0, makespan_s)
    } else {
        // Phase 1: dock every (job, probe) pair once, sharded over the pool.
        let dock = queue.execute(items, |ctx, (job_idx, probe)| {
            let docked = pipelines[job_idx].dock_probe_shard(&probe, ctx.device);
            let kernel_s = docked.kernel_modeled_s();
            ((job_idx, docked), kernel_s)
        });

        // Phase 2: minimize pose blocks from all jobs' probes, interleaved and
        // weighted by pose count (the shared two-phase orchestration in
        // `ftmap_core::minimize_pose_blocks` — the entries here are
        // `(job, DockedProbe)` pairs, so blocks of different jobs are
        // scheduled identically to blocks of different probes).
        let phase = minimize_pose_blocks(
            &queue,
            &dock.results,
            shared.config.batch.pose_block,
            &|(job_idx, docked)| pipelines[*job_idx].retained_pose_count(docked),
            &|ctx, (job_idx, docked), range| {
                pipelines[*job_idx].minimize_pose_block(docked, range, ctx.device)
            },
        );
        let shards: Vec<(usize, ProbeShard)> = dock
            .results
            .iter()
            .zip(phase.block_folds)
            .map(|((job_idx, docked), fold)| {
                let mut shard = docked.to_shard();
                shard.absorb(fold);
                (*job_idx, shard)
            })
            .collect();
        // The phases are barrier-separated (every block needs its probe's dock
        // result), so the batch is as fast as each phase's busiest device in
        // turn.
        (shards, phase.n_blocks, dock.makespan_s() + phase.makespan_s)
    };

    let (cache_delta, derived_delta) = shared.take_cache_delta();
    let transfer_s = shared.pool.total_transfer_time();
    {
        let mut ledger = locked(&shared.ledger);
        ledger.record_cache(&cache_delta);
        ledger.record_derived_cache(&derived_delta);
        ledger.record_transfer_s("serve.batch", transfer_s);
    }
    // Admission-controller feedback: the batch has executed, so its jobs
    // leave the pending backlog (kept there through execution on this path —
    // barrier batches have no scheduler projection covering them), and the
    // realized makespan calibrates the cost model.
    {
        let batch_weight: f64 = batch.iter().map(|job| job.weight).sum();
        let mut admission = locked(&shared.admission);
        for job in &batch {
            admission.remove_pending(job.class.priority(), job.weight);
        }
        // Barrier batches run strictly back to back and monopolize the
        // modeled timeline whatever their footprint: full device share.
        admission.model.observe_batch(
            makespan_modeled_s,
            1.0,
            batch_weight,
            cache_delta.misses > 0,
            transfer_s,
        );
        admission.note_warm(batch[0].fingerprint);
    }

    // Barrier batches run back to back on the modeled timeline; latency
    // counts from the earliest job's admission instant (the clock value when
    // it was admitted), so queue wait behind earlier batches is included.
    let (started_modeled_s, completed_modeled_s) = {
        let mut clock = locked(&shared.modeled_clock);
        let started = *clock;
        *clock += makespan_modeled_s;
        (started, *clock)
    };
    let admitted_v_s = batch.iter().map(|job| job.admitted_v_s).fold(started_modeled_s, f64::min);
    let latency_modeled_s = (completed_modeled_s - admitted_v_s).max(0.0);
    locked(&shared.latency).record(
        class,
        latency_modeled_s,
        (started_modeled_s, completed_modeled_s),
    );

    let summary = BatchSummary {
        batch_index,
        jobs: batch.len(),
        probes: n_items,
        pose_blocks: n_pose_blocks,
        receptor_key: receptor.content_key(),
        cache: cache_delta,
        derived_cache: derived_delta,
        makespan_modeled_s,
        class,
        latency_modeled_s,
        started_modeled_s,
        completed_modeled_s,
        overlap_saved_modeled_s: 0.0,
        transfer_modeled_s: transfer_s,
    };
    shared.note_batch_completed(&summary);
    finish_jobs(shared, batch, shards, summary);
}

/// Re-assembles each job's result from its own shards and completes the job
/// slots. Shards arrive in `(job, probe)` submission order (both dispatchers
/// guarantee it), so each job sees its probes in library order and its sites
/// are identical to a dedicated single-job run.
fn finish_jobs(
    shared: &Shared,
    batch: Vec<Job>,
    shards: Vec<(usize, ProbeShard)>,
    summary: BatchSummary,
) {
    let mut per_job: Vec<(MappingProfile, Vec<ClusterInput>, usize)> =
        (0..batch.len()).map(|_| (MappingProfile::default(), Vec::new(), 0)).collect();
    for (job_idx, shard) in shards {
        let (profile, inputs, conformations) = &mut per_job[job_idx];
        profile.merge(&shard.profile);
        *conformations += shard.conformations;
        inputs.extend(shard.inputs);
    }
    // One registry snapshot for the whole batch: the SLO engine compares each
    // job against the long window as it stood *before* this batch completed.
    let slo_snapshot = shared.slo.as_ref().map(|_| shared.metrics.snapshot());
    for (job, (profile, inputs, conformations)) in batch.into_iter().zip(per_job) {
        let latency_job_s = shared.note_job_resolved(&job, &summary, slo_snapshot.as_ref());
        let pose_centers = inputs.iter().map(|i| (i.probe, i.center)).collect();
        let sites = cluster_poses(&inputs, job.request.config.cluster_radius);
        let result =
            MappingResult { sites, conformations_minimized: conformations, profile, pose_centers };
        let report = Arc::new(JobReport {
            job_id: job.id,
            tag: job.request.tag.clone(),
            result,
            batch: summary.clone(),
            trace_id: job.trace_id,
            admitted_modeled_s: job.admitted_v_s,
            latency_modeled_s: latency_job_s,
            deadline_s: job.deadline_s,
            estimated_latency_s: job.estimated_s,
            degrade: job.degrade,
        });
        job.slot.complete(report);
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobStatus;
    use ftmap_core::{FtMapConfig, PipelineMode};
    use ftmap_molecule::{ForceField, ProbeType, ProteinSpec, SyntheticProtein};

    fn request(probes: &[ProbeType], tag: &str) -> MappingRequest {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
        config.docking.n_rotations = 2;
        config.conformations_per_probe = 1;
        MappingRequest::new(protein, ff, probes.to_vec(), config).with_tag(tag)
    }

    #[test]
    fn submitted_jobs_complete_with_results() {
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2))).build();
        let a = service.submit(request(&[ProbeType::Ethanol], "a")).expect_admitted("admitted");
        let b = service
            .submit(request(&[ProbeType::Acetone, ProbeType::Urea], "b"))
            .expect_admitted("admitted");
        let report_a = a.wait();
        let report_b = b.wait();
        assert_eq!(a.status(), JobStatus::Completed);
        assert_eq!(report_a.tag, "a");
        assert_eq!(report_b.tag, "b");
        assert!(!report_a.result.sites.is_empty());
        assert_eq!(report_a.result.conformations_minimized, 1);
        assert_eq!(report_b.result.conformations_minimized, 2);
        assert!(report_b.batch.makespan_modeled_s > 0.0);
        assert_eq!(report_b.batch.class, LatencyClass::Bulk);
        let stats = service.shutdown();
        assert_eq!(stats.jobs_submitted, 2);
        assert_eq!(stats.jobs_completed, 2);
        assert!(stats.batches_run >= 1);
        assert!(stats.bulk.batches >= 1);
        assert_eq!(stats.interactive.batches, 0);
        assert!(stats.span_modeled_s > 0.0);
        // Residency: at most one grid-set miss per device, everything else hit.
        assert!(stats.cache().misses <= 2);
        assert!(stats.cache().lookups() >= 3, "one lookup per probe shard");
    }

    #[test]
    fn service_result_matches_dedicated_pipeline() {
        // A job's sites through the service must be bit-identical to running
        // its pipeline alone — multi-tenancy never changes answers.
        let req = request(&[ProbeType::Ethanol, ProbeType::Benzene], "solo");
        let dedicated = FtMapPipeline::new(req.protein.clone(), req.ff.clone(), req.config.clone())
            .map(&req.library());
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2))).build();
        // Surround it with noise jobs in the same batch.
        let noise1 =
            service.submit(request(&[ProbeType::Acetone], "n1")).expect_admitted("admitted");
        let job = service.submit(req).expect_admitted("admitted");
        let noise2 = service.submit(request(&[ProbeType::Urea], "n2")).expect_admitted("admitted");
        let report = job.wait();
        noise1.wait();
        noise2.wait();
        assert_eq!(report.result.sites.len(), dedicated.sites.len());
        for (a, b) in report.result.sites.iter().zip(&dedicated.sites) {
            assert_eq!(a.rank, b.rank);
            assert!(a.cluster.center.distance(b.cluster.center) == 0.0);
            assert_eq!(a.cluster.members.len(), b.cluster.members.len());
        }
        assert_eq!(report.result.pose_centers.len(), dedicated.pose_centers.len());
        assert_eq!(report.result.conformations_minimized, dedicated.conformations_minimized);
    }

    #[test]
    fn batched_fft_jobs_share_receptor_transforms() {
        // Two jobs against the same receptor under the batched FFT engine:
        // the first probe dock on the device computes and caches the receptor
        // transforms as a derived residency payload; every later dock — the
        // first job's other probe and the entire second job — reuses them.
        // Multi-tenancy still never changes answers.
        let make = |probes: &[ProbeType], tag: &str| {
            let mut req = request(probes, tag);
            req.config.docking.engine = piper_dock::DockingEngineKind::BatchedFft { batch: 4 };
            req
        };
        let req = make(&[ProbeType::Ethanol, ProbeType::Benzene], "first");
        let dedicated = FtMapPipeline::new(req.protein.clone(), req.ff.clone(), req.config.clone())
            .map(&req.library());
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(1))).build();
        let first = service.submit(req).expect_admitted("admitted");
        let second =
            service.submit(make(&[ProbeType::Acetone], "second")).expect_admitted("admitted");
        let first_report = first.wait();
        second.wait();
        assert_eq!(first_report.result.sites.len(), dedicated.sites.len());
        for (a, b) in first_report.result.sites.iter().zip(&dedicated.sites) {
            assert_eq!(a.rank, b.rank);
            assert!(a.cluster.center.distance(b.cluster.center) == 0.0);
        }
        let stats = service.shutdown();
        // One device, one receptor: the raw grids and the derived transforms
        // each miss exactly once; the remaining two probe docks are hits in
        // both buckets (3 docks total across the two jobs).
        let raw = stats.cache();
        assert_eq!(raw.misses, 1);
        let derived = stats.derived_cache();
        assert_eq!(derived.misses, 1, "one transform computation for the whole pool");
        assert_eq!(derived.insertions, 1);
        assert_eq!(derived.hits, 2, "every later dock borrows the resident transforms");
        assert_eq!(derived.evictions, 0);
    }

    #[test]
    fn pose_block_dispatch_matches_fused_and_counts_blocks() {
        // The same job through a fused (pose_block: 0) service and a
        // pose-granularity (pose_block: 1) service: identical sites and pose
        // centres — scheduling granularity never changes answers — and the
        // pose-block batch reports one block per minimized conformation.
        let make = || {
            let mut req = request(&[ProbeType::Ethanol, ProbeType::Benzene], "pose");
            req.config.conformations_per_probe = 2;
            req
        };
        let fused_service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
            .batch(BatchConfig { pose_block: 0, ..BatchConfig::default() })
            .build();
        let fused = fused_service.submit(make()).expect_admitted("admitted").wait();
        assert_eq!(fused.batch.pose_blocks, 0, "fused batches schedule no blocks");

        let pose_service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
            .batch(BatchConfig { pose_block: 1, ..BatchConfig::default() })
            .build();
        let pose = pose_service.submit(make()).expect_admitted("admitted").wait();
        assert_eq!(pose.result.conformations_minimized, 4);
        // Block size 1 ⇒ one block per minimized conformation across the batch.
        assert_eq!(pose.batch.pose_blocks, pose.result.conformations_minimized);
        assert!(pose.batch.makespan_modeled_s > 0.0);

        assert_eq!(fused.result.pose_centers.len(), pose.result.pose_centers.len());
        for ((pa, ca), (pb, cb)) in fused.result.pose_centers.iter().zip(&pose.result.pose_centers)
        {
            assert_eq!(pa, pb);
            assert!(ca.x == cb.x && ca.y == cb.y && ca.z == cb.z);
        }
        assert_eq!(fused.result.sites.len(), pose.result.sites.len());
        for (a, b) in fused.result.sites.iter().zip(&pose.result.sites) {
            assert_eq!(a.rank, b.rank);
            assert!(a.cluster.center.distance(b.cluster.center) == 0.0);
        }
    }

    #[test]
    fn barrier_dispatch_still_works_and_matches_pipelined_results() {
        // The comparator path: same job set through DispatchMode::Barrier and
        // DispatchMode::Pipelined — identical per-job sites.
        let make = || request(&[ProbeType::Ethanol, ProbeType::Acetone], "cmp");
        let barrier_service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
            .batch(BatchConfig { dispatch: DispatchMode::Barrier, ..BatchConfig::default() })
            .build();
        let barrier = barrier_service.submit(make()).expect_admitted("admitted").wait();
        let pipelined_service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
            .batch(BatchConfig { dispatch: DispatchMode::Pipelined, ..BatchConfig::default() })
            .build();
        let pipelined = pipelined_service.submit(make()).expect_admitted("admitted").wait();
        assert_eq!(barrier.result.sites.len(), pipelined.result.sites.len());
        for (a, b) in barrier.result.sites.iter().zip(&pipelined.result.sites) {
            assert_eq!(a.rank, b.rank);
            assert!(a.cluster.center.distance(b.cluster.center) == 0.0);
        }
        // The barrier path reports no phase overlap; the pipelined path's
        // summary carries the virtual-timeline fields.
        assert_eq!(barrier.batch.overlap_saved_modeled_s, 0.0);
        assert!(pipelined.batch.completed_modeled_s >= pipelined.batch.started_modeled_s);
        let stats = barrier_service.shutdown();
        assert_eq!(stats.cross_batch_overlap_modeled_s, 0.0, "barrier batches are serial");
        pipelined_service.shutdown();
    }

    #[test]
    fn interactive_jobs_report_their_class_and_latency_view() {
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
            .batch(BatchConfig { max_batch_jobs: 1, ..BatchConfig::default() })
            .build();
        let bulk =
            service.submit(request(&[ProbeType::Ethanol], "bulk")).expect_admitted("admitted");
        let inter = service
            .submit(request(&[ProbeType::Acetone], "inter").with_class(LatencyClass::Interactive))
            .expect_admitted("admitted");
        let bulk_report = bulk.wait();
        let inter_report = inter.wait();
        assert_eq!(bulk_report.batch.class, LatencyClass::Bulk);
        assert_eq!(inter_report.batch.class, LatencyClass::Interactive);
        assert!(inter_report.batch.latency_modeled_s >= 0.0);
        let stats = service.shutdown();
        assert_eq!(stats.interactive.batches, 1);
        assert!(stats.bulk.batches >= 1);
        assert_eq!(stats.latency(LatencyClass::Interactive), stats.interactive);
        assert!(stats.interactive.max_s >= stats.interactive.p95_s);
        assert!(stats.interactive.p95_s >= 0.0);
    }

    #[test]
    fn pipelined_transfer_buckets_are_batch_scoped_not_windowed() {
        // Regression for the double-attribution bug: two batches overlapping
        // on the pool must partition the pool's cumulative transfer time —
        // the ledger's "serve.batch" bucket equals the pool total exactly,
        // and each batch's own figure is positive. Under the old windowed
        // scheme (reset + read total around each batch) the overlap would
        // charge batch N+1's uploads to batch N as well.
        let pool = Arc::new(DevicePool::tesla(2));
        pool.reset_transfer_stats();
        let service = BatchMappingService::builder(Arc::clone(&pool))
            // Force distinct consecutive batches that overlap in flight.
            .batch(BatchConfig {
                max_batch_jobs: 1,
                max_inflight_batches: 2,
                ..BatchConfig::default()
            })
            .build();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                service
                    .submit(request(&[ProbeType::Ethanol, ProbeType::Urea], &format!("t{i}")))
                    .expect_admitted("admitted")
            })
            .collect();
        let reports: Vec<_> = handles.iter().map(|h| h.wait()).collect();
        let stats = service.shutdown();
        let pool_total = pool.total_transfer_time();
        assert!(pool_total > 0.0);
        let ledger_total = stats.ledger.transfer_s("serve.batch");
        assert!(
            (ledger_total - pool_total).abs() < 1e-9,
            "ledger bucket {ledger_total} != pool total {pool_total}"
        );
        let batch_sum: f64 = {
            // Each distinct batch contributes once (jobs share summaries).
            let mut seen = std::collections::BTreeMap::new();
            for r in &reports {
                seen.insert(r.batch.batch_index, r.batch.transfer_modeled_s);
            }
            seen.values().sum()
        };
        assert!(
            (batch_sum - pool_total).abs() < 1e-9,
            "per-batch transfers {batch_sum} != pool total {pool_total}"
        );
    }

    fn tiny_service() -> BatchMappingService {
        BatchMappingService::builder(Arc::new(DevicePool::tesla(1)))
            .queue(QueueConfig { max_pending: 1 })
            .batch(BatchConfig { max_batch_jobs: 1, ..BatchConfig::default() })
            .build()
    }

    #[test]
    fn try_submit_sheds_when_the_queue_is_full() {
        // A service whose dispatcher is busy accumulates pending jobs; with
        // max_pending = 1 the second concurrent try_submit must be rejected
        // and hand the request back. Use a closed service for a deterministic
        // variant as well.
        let service = tiny_service();
        let stats = service.shutdown();
        assert_eq!(stats.jobs_submitted, 0);

        let service = tiny_service();
        // Saturate: keep pushing until one submission reports QueueFull. The
        // dispatcher drains concurrently, so retry a few times.
        let mut saw_full = false;
        let mut handles = Vec::new();
        for i in 0..32 {
            match service.try_submit(request(&[ProbeType::Ethanol], &format!("j{i}"))) {
                AdmissionVerdict::Rejected {
                    request: req,
                    reason: RejectReason::QueueFull,
                    retry_after_modeled_s,
                } => {
                    saw_full = true;
                    // The request comes back intact for the client to retry,
                    // with a modeled retry-after hint.
                    assert_eq!(req.probes, vec![ProbeType::Ethanol]);
                    assert!(retry_after_modeled_s.is_some_and(|s| s >= 0.0));
                    break;
                }
                AdmissionVerdict::Rejected { reason, .. } => {
                    panic!("unexpected rejection: {reason:?}")
                }
                verdict => handles.push(verdict.expect_admitted("open service admits")),
            }
        }
        assert!(saw_full, "a 1-deep queue must refuse under a 32-job burst");
        for handle in handles {
            handle.wait();
        }
        drop(service);
    }

    #[test]
    fn closed_service_rejects_with_no_retry_hint() {
        let mut service = tiny_service();
        service.close_and_join();
        match service.try_submit(request(&[ProbeType::Ethanol], "late")) {
            AdmissionVerdict::Rejected {
                reason: RejectReason::Closed,
                retry_after_modeled_s,
                ..
            } => assert_eq!(retry_after_modeled_s, None, "closed has no later"),
            verdict => panic!("expected Closed rejection, got {}", verdict.name()),
        }
    }

    #[test]
    #[should_panic(expected = "max_batch_jobs")]
    fn zero_batch_bound_is_rejected_at_construction() {
        // Validated on the caller thread — discovered on the dispatcher
        // thread it would strand every job handle instead of failing fast.
        let _ = BatchMappingService::builder(Arc::new(DevicePool::tesla(1)))
            .batch(BatchConfig { max_batch_jobs: 0, ..BatchConfig::default() })
            .build();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_admission_bound_is_rejected_at_construction() {
        let _ = BatchMappingService::builder(Arc::new(DevicePool::tesla(1)))
            .queue(QueueConfig { max_pending: 0 })
            .build();
    }

    #[test]
    #[should_panic(expected = "max_inflight_batches")]
    fn zero_inflight_bound_is_rejected_at_construction() {
        let _ = BatchMappingService::builder(Arc::new(DevicePool::tesla(1)))
            .batch(BatchConfig { max_inflight_batches: 0, ..BatchConfig::default() })
            .build();
    }

    #[test]
    fn shutdown_drains_pending_jobs_before_returning() {
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(1))).build();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                service
                    .submit(request(&[ProbeType::Ethanol], &format!("x{i}")))
                    .expect_admitted("admitted")
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.jobs_completed, 3);
        for handle in &handles {
            assert!(handle.is_completed(), "{} left incomplete by shutdown", handle.tag());
        }
    }

    #[test]
    fn class_latency_percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let lat = ClassLatency::from_samples(&samples);
        assert_eq!(lat.batches, 100);
        assert_eq!(lat.p95_s, 95.0);
        assert_eq!(lat.max_s, 100.0);
        assert!((lat.mean_s - 50.5).abs() < 1e-12);
        assert_eq!(ClassLatency::from_samples(&[]), ClassLatency::default());
        let one = ClassLatency::from_samples(&[2.5]);
        assert_eq!(one.p95_s, 2.5);
        assert_eq!(one.batches, 1);
    }

    #[test]
    fn span_stats_measure_cross_batch_overlap() {
        let mut book = LatencyBook::default();
        book.record(LatencyClass::Bulk, 4.0, (0.0, 4.0));
        book.record(LatencyClass::Bulk, 5.0, (3.0, 8.0));
        book.record(LatencyClass::Interactive, 1.0, (10.0, 11.0));
        let (span, overlap) = book.span_stats();
        assert!((span - 11.0).abs() < 1e-12);
        // [3,4) is covered twice: one modeled second of cross-batch overlap.
        assert!((overlap - 1.0).abs() < 1e-12);
        assert_eq!(LatencyBook::default().span_stats(), (0.0, 0.0));
    }

    #[test]
    fn trace_ids_thread_through_admit_batching_items_and_resolve() {
        // The tentpole end-to-end: every job's trace id must appear on its
        // admit / job-batched / job-resolve instants AND on the scheduler's
        // dock (and, under pose blocks, minimize) item spans, so the causal
        // tree reassembles and its exact latency breakdown sums to the job's
        // own modeled latency.
        let recorder = Arc::new(ftmap_trace::Recorder::new());
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
            .batch(BatchConfig { pose_block: 1, ..BatchConfig::default() })
            .trace(Arc::clone(&recorder) as Arc<dyn TraceSink>)
            .build();
        let a = service.submit(request(&[ProbeType::Ethanol], "a")).expect_admitted("admitted");
        let b = service
            .submit(request(&[ProbeType::Acetone], "b").with_trace_id(0xFEED))
            .expect_admitted("admitted");
        let report_a = a.wait();
        let report_b = b.wait();
        assert_eq!(report_b.trace_id, 0xFEED, "client-supplied trace ids are honored");
        assert_eq!(report_a.trace_id, report_a.job_id.0, "default trace id is the job id");
        assert!(report_a.latency_modeled_s >= 0.0 && report_a.admitted_modeled_s >= 0.0);
        service.shutdown();

        let trees = ftmap_trace::build_request_trees(&recorder.events());
        for report in [&report_a, &report_b] {
            let tree = trees
                .iter()
                .find(|t| t.trace_id == report.trace_id)
                .expect("each job has a causal tree");
            assert!(tree.admitted_v_s.is_some(), "admit instant recorded");
            assert!(tree.batched.is_some(), "job-batched instant recorded");
            assert!(tree.resolved_v_s.is_some(), "job-resolve instant recorded");
            assert!(
                (tree.latency_s().expect("latency") - report.latency_modeled_s).abs() < 1e-9,
                "stamped latency matches the report"
            );
            assert!(tree.items.iter().any(ftmap_trace::ItemNode::is_dock), "dock item tagged");
            assert!(
                tree.items.iter().any(|i| !i.is_dock()),
                "minimize items tagged under pose blocks"
            );
            let analysis = ftmap_trace::analyze(tree).expect("analyzable tree");
            assert!(
                (analysis.breakdown.total_s() - report.latency_modeled_s).abs() < 1e-9,
                "breakdown segments sum exactly to the job's modeled latency"
            );
        }
    }

    #[test]
    fn slo_breaches_page_and_the_flight_recorder_retains_the_trees() {
        // An unmeetable objective (any positive latency breaches a 0-second
        // target) must drive both burn windows past PAGE_BURN, and every
        // breaching request's tree must survive in the flight recorder.
        let flight = Arc::new(ftmap_trace::FlightRecorder::new());
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(2)))
            .batch(BatchConfig { max_batch_jobs: 1, ..BatchConfig::default() })
            .flight_recorder(Arc::clone(&flight))
            .slos(vec![SloSpec::new(LatencyClass::Bulk.name(), 0.0, 0.99)])
            .build();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                service
                    .submit(request(&[ProbeType::Ethanol], &format!("s{i}")))
                    .expect_admitted("admitted")
            })
            .collect();
        let reports: Vec<_> = handles.iter().map(|h| h.wait()).collect();
        let stats = service.shutdown();

        let status = stats.slo.class("bulk").expect("bulk SLO evaluated");
        assert_eq!(status.samples, 3);
        assert!(status.burn_long >= ftmap_trace::PAGE_BURN);
        assert_eq!(status.state, AlertState::Page);
        assert_eq!(stats.slo_alert(), AlertState::Page);
        assert!(
            stats.metrics.gauge("ftmap_serve_slo_alert_state", &[("class", "bulk")]).is_some(),
            "alert gauge exported into the registry"
        );
        assert!(
            stats
                .metrics
                .histogram(JOB_LATENCY_METRIC, &[("class", "bulk")])
                .is_some_and(|h| h.count == 3),
            "per-job latency histogram fed once per job"
        );

        let retained = flight.retained_trace_ids();
        for report in &reports {
            assert!(
                retained.contains(&report.trace_id),
                "breaching request {} retained by tail-sampling",
                report.trace_id
            );
        }
        let dump = flight.dump_perfetto();
        assert!(dump.contains("job-resolve"), "retained trees include the resolve edge");
    }

    #[test]
    fn deprecated_constructors_still_build_working_services() {
        // The migration contract: the old ladder keeps compiling (against the
        // nested config) and behaving until callers move to the builder.
        // lint-allow(justified-allows): this test exists to exercise the
        // deprecated shims; suppressing the deprecation warning is the point.
        #[allow(deprecated)]
        {
            let service =
                BatchMappingService::new(Arc::new(DevicePool::tesla(1)), ServeConfig::default());
            let report = service
                .submit(request(&[ProbeType::Ethanol], "old-new"))
                .expect_admitted("admitted")
                .wait();
            assert!(!report.result.sites.is_empty());

            let recorder = Arc::new(ftmap_trace::Recorder::new());
            let service = BatchMappingService::with_trace(
                Arc::new(DevicePool::tesla(1)),
                ServeConfig::default(),
                Arc::clone(&recorder) as Arc<dyn TraceSink>,
            );
            service
                .submit(request(&[ProbeType::Ethanol], "old-trace"))
                .expect_admitted("admitted")
                .wait();
            service.shutdown();
            assert!(!recorder.events().is_empty());

            let service = BatchMappingService::with_observability(
                Arc::new(DevicePool::tesla(1)),
                ServeConfig::default(),
                Observability::trace(ftmap_trace::noop()),
            );
            service
                .submit(request(&[ProbeType::Ethanol], "old-obs"))
                .expect_admitted("admitted")
                .wait();
        }
    }

    #[test]
    fn reports_carry_estimates_deadlines_and_degrades() {
        // First job: uncalibrated model, no deadline configured → plain
        // admission, no estimate on the report. Second job (same receptor,
        // model now calibrated): the report carries the admission-time
        // estimate, the per-request deadline, and the deadline outcome.
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(1))).build();
        let first = service
            .submit(request(&[ProbeType::Ethanol], "calibrate"))
            .expect_admitted("admitted")
            .wait();
        assert_eq!(first.estimated_latency_s, None, "model was uncalibrated");
        assert_eq!(first.deadline_s, None);
        assert_eq!(first.deadline_missed(), None);
        assert_eq!(first.degrade, None);

        let estimate = service
            .estimate_request(&request(&[ProbeType::Ethanol], "probe"))
            .expect("calibrated after first batch");
        assert!(estimate.total_s() > 0.0);
        let second = service
            .submit(request(&[ProbeType::Ethanol], "timed").with_deadline_s(1e9))
            .expect_admitted("admitted")
            .wait();
        assert!(second.estimated_latency_s.is_some_and(|s| s > 0.0));
        assert_eq!(second.deadline_s, Some(1e9));
        assert_eq!(second.deadline_missed(), Some(false));
        let stats = service.shutdown();
        assert!(
            stats
                .metrics
                .counter(
                    "ftmap_serve_admission_verdicts_total",
                    &[("verdict", "admitted"), ("class", "bulk"),]
                )
                .is_some_and(|count| count >= 2.0),
            "verdict counter fed per submission"
        );
    }

    #[test]
    fn unmeetable_deadlines_degrade_then_reject() {
        use ftmap_core::DegradePolicy;
        // Calibrate on one completed batch, then submit with deadlines the
        // estimator cannot meet: with a degrade policy the request is
        // admitted reduced; without headroom even degraded, it is rejected
        // with a modeled retry-after.
        let policy = DegradePolicy {
            rotation_factor: 0.5,
            min_rotations: 1,
            conformation_factor: 1.0,
            min_conformations: 1,
        };
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(1)))
            .admission(AdmissionConfig { degrade: Some(policy), ..AdmissionConfig::default() })
            .build();
        service
            .submit(request(&[ProbeType::Ethanol], "calibrate"))
            .expect_admitted("admitted")
            .wait();
        let estimate = service
            .estimate_request(&request(&[ProbeType::Ethanol], "probe"))
            .expect("calibrated")
            .total_s();

        // An impossible deadline: nothing — not even the degraded config —
        // fits a 1e-6× margin. Structural guarantee: flagged-unmeetable is
        // rejected, never admitted-then-missed.
        match service
            .submit(request(&[ProbeType::Ethanol], "doomed").with_deadline_s(estimate * 1e-6))
        {
            AdmissionVerdict::Rejected {
                reason: RejectReason::DeadlineUnmeetable { estimated_s, deadline_s },
                retry_after_modeled_s,
                ..
            } => {
                assert!(estimated_s > deadline_s);
                assert!(retry_after_modeled_s.is_some_and(|s| s > 0.0));
            }
            verdict => panic!("expected rejection, got {}", verdict.name()),
        }

        // A deadline only the degraded request fits: the test config runs 2
        // rotations + 1 conformation per probe (weight 3); halving rotations
        // gives weight 2, ≈ 2/3 of the estimate. A deadline at 0.8× the
        // full-fidelity estimate is unmeetable as-is but fits degraded.
        match service
            .submit(request(&[ProbeType::Ethanol], "reduced").with_deadline_s(estimate * 0.8))
        {
            AdmissionVerdict::Degraded { handle, applied } => {
                assert!(!applied.is_noop());
                assert_eq!(applied.rotations, (2, 1), "rotation halving, clamped to min 1");
                let report = handle.wait();
                assert_eq!(report.degrade, Some(applied));
                assert!(
                    report.result.conformations_minimized > 0,
                    "degraded jobs still produce results"
                );
            }
            verdict => panic!("expected degraded admission, got {}", verdict.name()),
        }
        service.shutdown();
    }

    #[test]
    fn untraced_service_keeps_slo_and_flight_disabled() {
        // The default path must not pay for observability: no SLO report, no
        // trace-loss, and reports still carry per-job latencies.
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(1))).build();
        let report =
            service.submit(request(&[ProbeType::Ethanol], "plain")).expect_admitted("ok").wait();
        assert!(report.latency_modeled_s >= 0.0);
        let stats = service.shutdown();
        assert!(stats.slo.classes.is_empty());
        assert_eq!(stats.slo_alert(), AlertState::Ok);
        assert_eq!(stats.metrics.gauge("ftmap_trace_dropped_events", &[]), Some(0.0));
    }
}
