// Fixture: seeded `justified-allows` violations. Never compiled.

#[allow(clippy::too_many_arguments)] // line 3: violation (no justification)
fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {}

#[allow(dead_code)] // line 6: violation
struct Unused;

// lint-allow(justified-allows): the fixture's example of a written reason —
// this allow is load-bearing and the comment says why.
#[allow(clippy::large_enum_variant)]
enum Justified {
    Small(u8),
    Big([u8; 1024]),
}

/// Doc comments and the justification merge into one comment block — the
/// suppression still counts when doc lines sit above it.
// lint-allow(justified-allows): reason recorded mid-block.
#[allow(clippy::module_name_repetitions)]
pub struct AlsoJustified;

// Other attributes never trigger the rule:
#[derive(Debug, Clone)]
#[cfg(feature = "extra")]
struct Attributed;

#[cfg(test)]
mod tests {
    // Allows inside test regions are exempt.
    #[allow(dead_code)]
    fn test_helper() {}
}
