//! Table 2: one minimization iteration — serial neighbor-list evaluation vs the three
//! GPU kernels on the device model.

use criterion::{criterion_group, criterion_main, Criterion};
use ftmap_bench::MinimizationWorkload;
use ftmap_energy::gpu::GpuMinimizationEngine;
use ftmap_energy::Evaluator;
use gpu_sim::Device;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let workload = MinimizationWorkload::paper_scale();
    let device = Device::tesla_c1060();
    let evaluator = Evaluator::new(workload.ff.clone());
    let gpu_engine = GpuMinimizationEngine::new(&device, workload.ff.clone(), &workload.neighbors);

    let mut group = c.benchmark_group("table2_minimization_iteration");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("serial_neighbor_list", |b| {
        b.iter(|| std::hint::black_box(evaluator.evaluate(&workload.complex, &workload.neighbors)))
    });
    group.bench_function("gpu_three_kernels", |b| {
        b.iter(|| std::hint::black_box(gpu_engine.evaluate(&workload.complex)))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
