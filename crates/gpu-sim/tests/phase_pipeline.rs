//! Property tests on the cross-batch phased pipeline: for any batch shape,
//! pool size, priority mix and interleaving, every phase-tagged item is
//! dispatched **exactly once**, every entry's minimize blocks run strictly
//! after that entry's dock (the per-probe dependency edge), and the
//! batch-scoped accounting covers every item.

use gpu_sim::sched::{
    BatchHandle, DevicePool, PhasePipeline, PhasedBatch, PhasedDeviceReport, PhasedExec, ShardCtx,
};
use proptest::prelude::*;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Records every dock/minimize event so the properties can audit the run.
struct AuditExec {
    blocks_per_entry: usize,
    dock_runs: Vec<AtomicUsize>,
    block_runs: Vec<Vec<AtomicUsize>>,
    /// Minimize calls that observed their entry's dock incomplete.
    dependency_violations: AtomicUsize,
}

impl AuditExec {
    fn new(entries: usize, blocks_per_entry: usize) -> Self {
        AuditExec {
            blocks_per_entry,
            dock_runs: (0..entries).map(|_| AtomicUsize::new(0)).collect(),
            block_runs: (0..entries)
                .map(|_| (0..blocks_per_entry).map(|_| AtomicUsize::new(0)).collect())
                .collect(),
            dependency_violations: AtomicUsize::new(0),
        }
    }
}

impl PhasedExec for AuditExec {
    fn dock(&self, ctx: &ShardCtx<'_>, entry: usize) -> (f64, Vec<(Range<usize>, f64)>) {
        ctx.device.upload_bytes(256 << 10);
        self.dock_runs[entry].fetch_add(1, Ordering::SeqCst);
        ((entry as f64 + 1.0) * 1e-4, (0..self.blocks_per_entry).map(|b| (b..b + 1, 1.0)).collect())
    }

    fn minimize(&self, ctx: &ShardCtx<'_>, entry: usize, pose_range: Range<usize>) -> f64 {
        ctx.device.download_bytes(64 << 10);
        if self.dock_runs[entry].load(Ordering::SeqCst) != 1 {
            self.dependency_violations.fetch_add(1, Ordering::SeqCst);
        }
        self.block_runs[entry][pose_range.start].fetch_add(1, Ordering::SeqCst);
        2e-4
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once dispatch with dock-before-minimize per entry, for any
    /// number of batches of any shape on any pool, with priorities drawn from
    /// the batch index (so urgent and patient batches interleave).
    #[test]
    fn every_phased_item_runs_exactly_once_after_its_dock(
        pool_size in 1usize..5,
        n_batches in 1usize..5,
        shape in (0usize..7, 1usize..4),
    ) {
        let (entries, blocks_per_entry) = shape;
        let pool = Arc::new(DevicePool::tesla(pool_size));
        pool.reset_transfer_stats();
        let pipeline = PhasePipeline::new(Arc::clone(&pool));
        let execs: Vec<Arc<AuditExec>> =
            (0..n_batches).map(|_| Arc::new(AuditExec::new(entries, blocks_per_entry))).collect();
        let handles: Vec<BatchHandle> = execs
            .iter()
            .enumerate()
            .map(|(i, exec)| {
                pipeline.submit(
                    PhasedBatch {
                        label: Default::default(),
                        entry_traces: Vec::new(),
                        // Alternate urgency so overtaking paths are exercised.
                        priority: (i % 2) as u32,
                        entries,
                        dock_weights: vec![1.0; entries],
                        exec: Arc::clone(exec) as Arc<dyn PhasedExec>,
                    },
                    None,
                )
            })
            .collect();
        let reports: Vec<_> = handles.iter().map(BatchHandle::wait).collect();
        pipeline.drain();
        let pipelined_makespan = pipeline.makespan_modeled_s();
        pipeline.shutdown();

        let mut batch_transfer_total = 0.0;
        for (exec, report) in execs.iter().zip(&reports) {
            // Exactly-once, dependency-ordered execution.
            for entry in 0..entries {
                prop_assert_eq!(exec.dock_runs[entry].load(Ordering::SeqCst), 1);
                for block in &exec.block_runs[entry] {
                    prop_assert_eq!(block.load(Ordering::SeqCst), 1);
                }
            }
            prop_assert_eq!(exec.dependency_violations.load(Ordering::SeqCst), 0);
            // The report accounts every item of this batch, once.
            prop_assert_eq!(report.docks, entries);
            prop_assert_eq!(report.blocks, entries * blocks_per_entry);
            let dock_ops: usize = report.per_device.iter().map(|d| d.dock.ops).sum();
            let minimize_ops: usize = report.per_device.iter().map(|d| d.minimize.ops).sum();
            prop_assert_eq!(dock_ops, entries);
            prop_assert_eq!(minimize_ops, entries * blocks_per_entry);
            // Virtual-timeline coherence.
            prop_assert!(report.completed_v_s >= report.started_v_s - 1e-15);
            prop_assert!(report.latency_modeled_s() >= report.span_modeled_s() - 1e-12);
            prop_assert!(pipelined_makespan >= report.completed_v_s - 1e-12);
            let busy: f64 = report.per_device.iter().map(PhasedDeviceReport::busy_s).sum();
            prop_assert!(busy >= 0.0);
            batch_transfer_total += report.transfer_modeled_s();
        }
        // Batch-scoped transfers partition the pool total exactly — no
        // double-attribution no matter how batches overlapped.
        prop_assert!(
            (batch_transfer_total - pool.total_transfer_time()).abs() < 1e-9,
            "batch transfers {} vs pool {}",
            batch_transfer_total,
            pool.total_transfer_time()
        );
    }
}
