//! Kernel statistics and simple phase timers.
//!
//! [`KernelStats`] is what [`crate::Device::launch`] returns: the merged counters of all
//! blocks, the measured wall-clock time of the (CPU-parallel) execution and the modeled
//! device time from the cost model. [`PhaseTimer`] accumulates named phase durations —
//! it is how the docking and minimization pipelines regenerate the per-step breakdowns
//! of the paper's Figure 2 and Figure 3. [`StreamOp`] / [`StreamStats`] are the
//! stream-overlap view used by the multi-device scheduler ([`crate::sched`]): one
//! upload → kernel → download triple per work item, summarized with and without
//! copy/compute overlap so overlapped transfer time is never double-counted.

use crate::memory::MemoryCounters;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
// lint-allow(no-wall-clock): this module IS the wall-profiling layer — the one
// place modeled code is allowed to read the host clock from.
use std::time::Instant;

/// Runs `f`, returning its result and the measured wall-clock seconds it took.
///
/// This is the workspace's **only** sanctioned wall-clock entry point for
/// modeled code (enforced by the `no-wall-clock` lint rule): pipelines that
/// report a measured `wall_*` figure next to their modeled one route the
/// measurement through here, so no `Instant::now` can leak into modeled-time
/// arithmetic unnoticed.
pub fn wall_timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Statistics for one kernel launch (or one serial run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of blocks executed.
    pub blocks: usize,
    /// Threads per block configured for the launch.
    pub threads_per_block: usize,
    /// Merged counters over all blocks.
    pub counters: MemoryCounters,
    /// Measured wall-clock time of the CPU-parallel execution, seconds.
    pub wall_time_s: f64,
    /// Modeled device time from the cost model, seconds.
    pub modeled_time_s: f64,
}

impl KernelStats {
    /// A zeroed stats record (useful as an accumulator identity).
    pub fn zero() -> Self {
        KernelStats {
            blocks: 0,
            threads_per_block: 0,
            counters: MemoryCounters::new(),
            wall_time_s: 0.0,
            modeled_time_s: 0.0,
        }
    }

    /// Accumulates another launch into this record (blocks and times add, the thread
    /// count keeps the maximum).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.blocks += other.blocks;
        self.threads_per_block = self.threads_per_block.max(other.threads_per_block);
        self.counters.merge(&other.counters);
        self.wall_time_s += other.wall_time_s;
        self.modeled_time_s += other.modeled_time_s;
    }
}

/// One stream work item: the modeled seconds of its host→device upload, its
/// kernel (compute) work, and its device→host download.
///
/// The three stages are the overlappable intervals of the scheduler's stream
/// model: on a device with asynchronous copy engines, item `i+1`'s upload can
/// proceed while item `i`'s kernels run and item `i-1`'s results download.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamOp {
    /// Modeled host→device transfer seconds for this item.
    pub upload_s: f64,
    /// Modeled kernel seconds for this item (transfers excluded).
    pub kernel_s: f64,
    /// Modeled device→host transfer seconds for this item.
    pub download_s: f64,
}

impl StreamOp {
    /// A stream op from its three stage durations.
    pub fn new(upload_s: f64, kernel_s: f64, download_s: f64) -> Self {
        StreamOp { upload_s, kernel_s, download_s }
    }

    /// The item's duration with no copy/compute overlap (synchronous
    /// `cudaMemcpy` on both sides of the launch).
    pub fn serialized_s(&self) -> f64 {
        self.upload_s + self.kernel_s + self.download_s
    }
}

/// Summary of one stream's work, with and without copy/compute overlap.
///
/// `serialized_s` is what a device without asynchronous copy engines would
/// take (every stage back-to-back); `overlapped_s` is the makespan of the
/// three-stage pipeline computed by [`crate::cost::overlapped_stream_time`].
/// The difference ([`StreamStats::savings_s`]) is modeled transfer time hidden
/// under kernel execution — time that must be counted **once**, which is why
/// stream consumers report `overlapped_s` instead of adding transfer totals on
/// top of kernel totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Number of work items issued to the stream.
    pub ops: usize,
    /// Total upload seconds over all items.
    pub upload_s: f64,
    /// Total kernel seconds over all items.
    pub kernel_s: f64,
    /// Total download seconds over all items.
    pub download_s: f64,
    /// Total with no overlap (uploads + kernels + downloads, back-to-back).
    pub serialized_s: f64,
    /// Pipeline makespan with copy/compute overlap.
    pub overlapped_s: f64,
}

impl StreamStats {
    /// Modeled transfer seconds hidden under kernel execution (never negative).
    pub fn savings_s(&self) -> f64 {
        (self.serialized_s - self.overlapped_s).max(0.0)
    }

    /// Fraction of the serialized time saved by overlap (0 for an empty or
    /// overlap-free stream).
    pub fn overlap_fraction(&self) -> f64 {
        if self.serialized_s <= 0.0 {
            0.0
        } else {
            self.savings_s() / self.serialized_s
        }
    }
}

/// Accumulates wall-clock durations (seconds) per named phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTimer {
    phases: BTreeMap<String, f64>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Times `f`, charging its duration to `phase`, and returns its result.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Adds `seconds` to `phase` directly (used when the duration is modeled rather
    /// than measured).
    pub fn add(&mut self, phase: &str, seconds: f64) {
        *self.phases.entry(phase.to_string()).or_insert(0.0) += seconds;
    }

    /// Accumulated seconds for a phase (0 if the phase was never recorded).
    pub fn get(&self, phase: &str) -> f64 {
        self.phases.get(phase).copied().unwrap_or(0.0)
    }

    /// Total seconds over all phases.
    pub fn total(&self) -> f64 {
        self.phases.values().sum()
    }

    /// All phases with their accumulated seconds, sorted by name.
    pub fn phases(&self) -> Vec<(String, f64)> {
        self.phases.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Each phase as a percentage of the total (empty if the total is zero).
    pub fn percentages(&self) -> Vec<(String, f64)> {
        let total = self.total();
        if total <= 0.0 {
            return Vec::new();
        }
        self.phases.iter().map(|(k, v)| (k.clone(), 100.0 * v / total)).collect()
    }

    /// Merges another timer into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (k, v) in &other.phases {
            self.add(k, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_stats_accumulate() {
        let mut total = KernelStats::zero();
        let a = KernelStats {
            blocks: 10,
            threads_per_block: 64,
            counters: MemoryCounters { flops: 100, ..Default::default() },
            wall_time_s: 0.5,
            modeled_time_s: 0.01,
        };
        let b = KernelStats {
            blocks: 5,
            threads_per_block: 128,
            counters: MemoryCounters { flops: 50, ..Default::default() },
            wall_time_s: 0.25,
            modeled_time_s: 0.02,
        };
        total.accumulate(&a);
        total.accumulate(&b);
        assert_eq!(total.blocks, 15);
        assert_eq!(total.threads_per_block, 128);
        assert_eq!(total.counters.flops, 150);
        assert!((total.wall_time_s - 0.75).abs() < 1e-12);
        assert!((total.modeled_time_s - 0.03).abs() < 1e-12);
    }

    #[test]
    fn phase_timer_accumulates_and_percentages() {
        let mut t = PhaseTimer::new();
        t.add("correlation", 93.0);
        t.add("rotation", 2.3);
        t.add("accumulation", 2.4);
        t.add("filtering", 2.3);
        assert!((t.total() - 100.0).abs() < 1e-12);
        assert_eq!(t.get("correlation"), 93.0);
        assert_eq!(t.get("missing"), 0.0);
        let pct = t.percentages();
        let corr = pct.iter().find(|(k, _)| k == "correlation").unwrap().1;
        assert!((corr - 93.0).abs() < 1e-9);
    }

    #[test]
    fn phase_timer_times_closures() {
        let mut t = PhaseTimer::new();
        let result = t.time("work", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(result > 0);
        assert!(t.get("work") > 0.0);
        // A second call accumulates rather than overwrites.
        t.time("work", || ());
        assert_eq!(t.phases().len(), 1);
    }

    #[test]
    fn phase_timer_merge() {
        let mut a = PhaseTimer::new();
        a.add("x", 1.0);
        let mut b = PhaseTimer::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
    }

    #[test]
    fn empty_percentages() {
        let t = PhaseTimer::new();
        assert!(t.percentages().is_empty());
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn stream_op_serializes_stages() {
        let op = StreamOp::new(1.0, 3.0, 0.5);
        assert!((op.serialized_s() - 4.5).abs() < 1e-12);
        assert_eq!(StreamOp::default().serialized_s(), 0.0);
    }

    #[test]
    fn stream_stats_savings_and_fraction() {
        let stats = StreamStats {
            ops: 4,
            upload_s: 2.0,
            kernel_s: 10.0,
            download_s: 1.0,
            serialized_s: 13.0,
            overlapped_s: 10.75,
        };
        assert!((stats.savings_s() - 2.25).abs() < 1e-12);
        assert!((stats.overlap_fraction() - 2.25 / 13.0).abs() < 1e-12);
        let empty = StreamStats::default();
        assert_eq!(empty.savings_s(), 0.0);
        assert_eq!(empty.overlap_fraction(), 0.0);
    }
}
