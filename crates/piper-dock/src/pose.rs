//! Docked poses.
//!
//! A pose is a rotation index (into the rotation set being scored) plus a translation
//! of the probe grid relative to the protein grid, together with its weighted score.
//! PIPER retains a handful of poses per rotation (FTMap keeps 4); the retained poses
//! become the conformations minimized in phase two.

use ftmap_math::{Real, Rotation, Vec3};
use serde::{Deserialize, Serialize};

/// A scored rigid-body pose of the probe relative to the protein.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Index of the rotation in the rotation set used for the docking run.
    pub rotation_index: usize,
    /// Translation in voxel units `(α, β, γ)` of Equation (1).
    pub translation: (usize, usize, usize),
    /// Weighted correlation score; more negative is better (stronger predicted binding).
    pub score: Real,
}

impl Pose {
    /// Converts the voxel translation to a Cartesian offset in Å, given the grid
    /// spacing and the grid dimensions (translations beyond half the grid wrap to
    /// negative offsets, the usual cyclic-correlation convention).
    pub fn cartesian_offset(&self, spacing: Real, dims: (usize, usize, usize)) -> Vec3 {
        let unwrap = |t: usize, n: usize| -> Real {
            let t = t as isize;
            let n = n as isize;
            let signed = if t > n / 2 { t - n } else { t };
            signed as Real
        };
        Vec3::new(
            unwrap(self.translation.0, dims.0),
            unwrap(self.translation.1, dims.1),
            unwrap(self.translation.2, dims.2),
        ) * spacing
    }

    /// The probe-centroid position implied by this pose: the receptor-grid location the
    /// probe footprint is translated to. `result[d] = Σ_v L[v]·R[v+d]`, so a probe whose
    /// footprint is anchored at ligand voxel 0 lands at receptor voxel `d`:
    /// `origin + d · spacing` (the small half-footprint offset of the probe centroid
    /// within its own grid is neglected — under one voxel for FTMap-sized probes).
    pub fn probe_center(
        &self,
        grid_origin: Vec3,
        spacing: Real,
        dims: (usize, usize, usize),
    ) -> Vec3 {
        let _ = dims;
        grid_origin
            + Vec3::new(
                self.translation.0 as Real,
                self.translation.1 as Real,
                self.translation.2 as Real,
            ) * spacing
    }

    /// Applies the pose to a set of probe atom positions (already centred on the probe
    /// centroid): rotate, then translate to the pose centre.
    pub fn place_probe(
        &self,
        rotation: &Rotation,
        centered_positions: &[Vec3],
        grid_origin: Vec3,
        spacing: Real,
        dims: (usize, usize, usize),
    ) -> Vec<Vec3> {
        let center = self.probe_center(grid_origin, spacing, dims);
        centered_positions.iter().map(|&p| rotation.apply(p) + center).collect()
    }
}

/// Orders poses best-first (most negative score first), with stable tie-breaking on
/// rotation index and translation so sorting is deterministic.
pub fn sort_best_first(poses: &mut [Pose]) {
    poses.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .expect("pose scores must not be NaN")
            .then(a.rotation_index.cmp(&b.rotation_index))
            .then(a.translation.cmp(&b.translation))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_offset_wraps_large_translations() {
        let pose = Pose { rotation_index: 0, translation: (1, 0, 7), score: -1.0 };
        let off = pose.cartesian_offset(1.0, (8, 8, 8));
        assert_eq!(off, Vec3::new(1.0, 0.0, -1.0));
        let pose2 = Pose { rotation_index: 0, translation: (4, 4, 4), score: -1.0 };
        // Exactly half the grid stays positive by convention (t > n/2 wraps).
        assert_eq!(pose2.cartesian_offset(2.0, (8, 8, 8)), Vec3::new(8.0, 8.0, 8.0));
    }

    #[test]
    fn sort_best_first_orders_by_score_then_ties() {
        let mut poses = vec![
            Pose { rotation_index: 2, translation: (0, 0, 0), score: -1.0 },
            Pose { rotation_index: 1, translation: (0, 0, 0), score: -5.0 },
            Pose { rotation_index: 0, translation: (0, 0, 1), score: -1.0 },
            Pose { rotation_index: 0, translation: (0, 0, 0), score: -1.0 },
        ];
        sort_best_first(&mut poses);
        assert_eq!(poses[0].score, -5.0);
        assert_eq!(poses[1].rotation_index, 0);
        assert_eq!(poses[1].translation, (0, 0, 0));
        assert_eq!(poses[2].translation, (0, 0, 1));
        assert_eq!(poses[3].rotation_index, 2);
    }

    #[test]
    fn place_probe_translates_and_rotates() {
        let pose = Pose { rotation_index: 0, translation: (2, 0, 0), score: 0.0 };
        let rot = Rotation::identity();
        let pts = vec![Vec3::ZERO, Vec3::X];
        let placed = pose.place_probe(&rot, &pts, Vec3::ZERO, 1.0, (8, 8, 8));
        assert_eq!(placed[0], Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(placed[1], Vec3::new(3.0, 0.0, 0.0));
    }
}
