//! Serial reference evaluator over neighbor lists.
//!
//! This is the structure of the original FTMap minimization code (paper Fig. 7): cycle
//! through the atom pairs of the neighbor list, compute the partial energies of both
//! atoms of each pair, and accumulate them into the per-atom energy array. It is the
//! correctness oracle for every GPU scheme in [`crate::gpu`], and its per-term timing
//! split regenerates Fig. 3(b).

use crate::terms;
use ftmap_math::{Real, Vec3};
use ftmap_molecule::{Complex, ForceField, NeighborList};
use gpu_sim::wall_timed;
use serde::{Deserialize, Serialize};

/// Energy of one conformation, split by term (the decomposition of Equation 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// ACE electrostatics: Born self energies + pairwise self corrections + GB pairs.
    pub electrostatics: Real,
    /// van der Waals energy.
    pub vdw: Real,
    /// Bonded energy (bond + angle + torsion + improper).
    pub bonded: Real,
    /// Wall-clock seconds spent evaluating the electrostatic terms.
    pub elec_time_s: f64,
    /// Wall-clock seconds spent evaluating the van der Waals term.
    pub vdw_time_s: f64,
    /// Wall-clock seconds spent evaluating the bonded terms.
    pub bonded_time_s: f64,
}

impl EnergyBreakdown {
    /// Total potential energy.
    pub fn total(&self) -> Real {
        self.electrostatics + self.vdw + self.bonded
    }

    /// Total evaluation time.
    pub fn total_time_s(&self) -> f64 {
        self.elec_time_s + self.vdw_time_s + self.bonded_time_s
    }

    /// Percentage split `(electrostatics, vdw, bonded)` of the evaluation time —
    /// the quantities of Fig. 3(b).
    pub fn time_percentages(&self) -> (f64, f64, f64) {
        let t = self.total_time_s();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (100.0 * self.elec_time_s / t, 100.0 * self.vdw_time_s / t, 100.0 * self.bonded_time_s / t)
    }
}

/// The serial neighbor-list evaluator.
pub struct Evaluator {
    ff: ForceField,
}

/// The result of one full evaluation: per-atom energies, forces, and the breakdown.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Per-atom non-bonded energy (self + half of each pair term assigned to each atom).
    pub atom_energies: Vec<Real>,
    /// Per-atom forces (negative energy gradient), kcal/mol/Å.
    pub forces: Vec<Vec3>,
    /// Term-by-term totals and timings.
    pub breakdown: EnergyBreakdown,
}

impl Evaluator {
    /// Creates an evaluator with the given force field.
    pub fn new(ff: ForceField) -> Self {
        Evaluator { ff }
    }

    /// The force field in use.
    pub fn force_field(&self) -> &ForceField {
        &self.ff
    }

    /// Evaluates the full potential of `complex` using the pairs of `neighbors`.
    pub fn evaluate(&self, complex: &Complex, neighbors: &NeighborList) -> Evaluation {
        self.evaluate_inner(complex, neighbors, true)
    }

    fn evaluate_inner(
        &self,
        complex: &Complex,
        neighbors: &NeighborList,
        include_bonded: bool,
    ) -> Evaluation {
        let n = complex.n_atoms();
        let mut atom_energies = vec![0.0; n];
        let mut forces = vec![Vec3::ZERO; n];
        let mut breakdown = EnergyBreakdown::default();

        // --- Electrostatics: Born self term per atom, ACE pair corrections and GB pairs.
        let (elec, elec_wall_s) = wall_timed(|| {
            let mut elec = 0.0;
            for (i, atom) in complex.atoms.iter().enumerate() {
                let e = terms::born_self_energy(atom, &self.ff);
                atom_energies[i] += e;
                elec += e;
            }
            for (i, j) in neighbors.iter_pairs() {
                let ai = &complex.atoms[i];
                let aj = &complex.atoms[j];
                let r = ai.position.distance(aj.position);

                // ACE pairwise self-energy corrections, both directions (E_ik and E_ki).
                let (e_ik, d_ik) = terms::ace_pair_self_energy(ai, aj, r, &self.ff);
                let (e_ki, d_ki) = terms::ace_pair_self_energy(aj, ai, r, &self.ff);
                // GB pairwise interaction, shared half-and-half between the two atoms.
                let (e_gb, d_gb) = terms::gb_pair_energy(ai, aj, r, &self.ff);

                atom_energies[i] += e_ik + 0.5 * e_gb;
                atom_energies[j] += e_ki + 0.5 * e_gb;
                elec += e_ik + e_ki + e_gb;

                let de_dr = d_ik + d_ki + d_gb;
                let f = terms::radial_force(ai.position, aj.position, de_dr);
                forces[i] += f;
                forces[j] -= f;
            }
            elec
        });
        breakdown.electrostatics = elec;
        breakdown.elec_time_s = elec_wall_s;

        // --- van der Waals over the same pairs.
        let (vdw, vdw_wall_s) = wall_timed(|| {
            let mut vdw = 0.0;
            for (i, j) in neighbors.iter_pairs() {
                let ai = &complex.atoms[i];
                let aj = &complex.atoms[j];
                let r = ai.position.distance(aj.position);
                let (e, de_dr) = terms::vdw_pair_energy(ai, aj, r, &self.ff);
                atom_energies[i] += 0.5 * e;
                atom_energies[j] += 0.5 * e;
                vdw += e;
                let f = terms::radial_force(ai.position, aj.position, de_dr);
                forces[i] += f;
                forces[j] -= f;
            }
            vdw
        });
        breakdown.vdw = vdw;
        breakdown.vdw_time_s = vdw_wall_s;

        // --- Bonded terms (left on the host in the paper as well).
        if !include_bonded {
            return Evaluation { atom_energies, forces, breakdown };
        }
        let (bonded, bonded_wall_s) = wall_timed(|| {
            let mut bonded = 0.0;
            for bond in complex.topology.bonds() {
                let pi = complex.atoms[bond.i].position;
                let pj = complex.atoms[bond.j].position;
                let r = pi.distance(pj);
                let (e, de_dr) = terms::bond_energy(r, &self.ff);
                bonded += e;
                let f = terms::radial_force(pi, pj, de_dr);
                forces[bond.i] += f;
                forces[bond.j] -= f;
            }
            for angle in complex.topology.angles() {
                let (e, _) = terms::angle_energy(
                    complex.atoms[angle.i].position,
                    complex.atoms[angle.j].position,
                    complex.atoms[angle.k].position,
                    &self.ff,
                );
                bonded += e;
            }
            for torsion in complex.topology.torsions() {
                let (e, _) = terms::torsion_energy(
                    complex.atoms[torsion.i].position,
                    complex.atoms[torsion.j].position,
                    complex.atoms[torsion.k].position,
                    complex.atoms[torsion.l].position,
                    &self.ff,
                );
                bonded += e;
            }
            for improper in complex.topology.impropers() {
                let (e, _) = terms::improper_energy(
                    complex.atoms[improper.i].position,
                    complex.atoms[improper.j].position,
                    complex.atoms[improper.k].position,
                    complex.atoms[improper.l].position,
                    &self.ff,
                );
                bonded += e;
            }
            bonded
        });
        breakdown.bonded = bonded;
        breakdown.bonded_time_s = bonded_wall_s;

        Evaluation { atom_energies, forces, breakdown }
    }

    /// Evaluates only the non-bonded energy terms (energies *and* forces exclude the
    /// bonded contributions); used by tests comparing against the GPU kernels, which
    /// handle exactly this part.
    pub fn evaluate_nonbonded(&self, complex: &Complex, neighbors: &NeighborList) -> Evaluation {
        self.evaluate_inner(complex, neighbors, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmap_molecule::{Probe, ProbeType, ProteinSpec, SyntheticProtein};

    fn small_system() -> (Complex, NeighborList, Evaluator) {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let probe = Probe::new(ProbeType::Ethanol, &ff);
        // Place the probe at the first pocket so it is in contact with the protein.
        let mut posed = probe.clone();
        let target = protein.pocket_centers[0];
        for a in &mut posed.atoms {
            a.position += target;
        }
        let complex = Complex::new(&protein, &posed);
        let excluded = complex.topology.excluded_pairs();
        let neighbors = NeighborList::build(&complex.atoms, ff.cutoff, &excluded);
        (complex, neighbors, Evaluator::new(ff))
    }

    #[test]
    fn evaluation_produces_finite_energies_and_forces() {
        let (complex, neighbors, evaluator) = small_system();
        let eval = evaluator.evaluate(&complex, &neighbors);
        assert_eq!(eval.atom_energies.len(), complex.n_atoms());
        assert_eq!(eval.forces.len(), complex.n_atoms());
        assert!(eval.breakdown.total().is_finite());
        assert!(eval.atom_energies.iter().all(|e| e.is_finite()));
        assert!(eval.forces.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn electrostatics_dominates_evaluation_time() {
        // Fig. 3(b): electrostatics ~94 %, vdW ~5 %, bonded ~0.2 %. The exact numbers
        // depend on the machine; the ordering must hold.
        let (complex, neighbors, evaluator) = small_system();
        // Average over a few evaluations to stabilize timings.
        let mut elec = 0.0;
        let mut vdw = 0.0;
        let mut bonded = 0.0;
        for _ in 0..5 {
            let eval = evaluator.evaluate(&complex, &neighbors);
            elec += eval.breakdown.elec_time_s;
            vdw += eval.breakdown.vdw_time_s;
            bonded += eval.breakdown.bonded_time_s;
        }
        assert!(elec > vdw, "elec {elec} vs vdw {vdw}");
        assert!(vdw > 0.0);
        assert!(elec > bonded, "elec {elec} vs bonded {bonded}");
    }

    #[test]
    fn per_atom_energies_sum_to_nonbonded_total() {
        let (complex, neighbors, evaluator) = small_system();
        let eval = evaluator.evaluate(&complex, &neighbors);
        let sum: Real = eval.atom_energies.iter().sum();
        let nonbonded = eval.breakdown.electrostatics + eval.breakdown.vdw;
        assert!(
            (sum - nonbonded).abs() < 1e-6 * (1.0 + nonbonded.abs()),
            "per-atom sum {sum} vs breakdown {nonbonded}"
        );
    }

    #[test]
    fn forces_sum_to_zero_for_pair_terms() {
        // Newton's third law: radial pair forces cancel in the total. (Angular bonded
        // terms contribute no forces in this implementation.)
        let (complex, neighbors, evaluator) = small_system();
        let eval = evaluator.evaluate(&complex, &neighbors);
        let net: Vec3 = eval.forces.iter().copied().sum();
        let scale: Real = eval.forces.iter().map(|f| f.norm()).sum::<Real>().max(1.0);
        assert!(net.norm() / scale < 1e-9, "net force {net:?}");
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let b = EnergyBreakdown {
            electrostatics: -10.0,
            vdw: -1.0,
            bonded: 0.5,
            elec_time_s: 94.4,
            vdw_time_s: 5.4,
            bonded_time_s: 0.2,
        };
        let (e, v, d) = b.time_percentages();
        assert!((e + v + d - 100.0).abs() < 1e-9);
        assert!(e > 90.0);
        assert!((b.total() - (-10.5)).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::default().time_percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn nonbonded_evaluation_excludes_bonded_terms() {
        let (complex, neighbors, evaluator) = small_system();
        let nb = evaluator.evaluate_nonbonded(&complex, &neighbors);
        assert_eq!(nb.breakdown.bonded, 0.0);
        let full = evaluator.evaluate(&complex, &neighbors);
        assert!((nb.breakdown.electrostatics - full.breakdown.electrostatics).abs() < 1e-9);
    }

    #[test]
    fn moving_probe_away_reduces_interaction() {
        let (mut complex, _, evaluator) = small_system();
        let ff = evaluator.force_field().clone();
        let excluded = complex.topology.excluded_pairs();
        let near_neighbors = NeighborList::build(&complex.atoms, ff.cutoff, &excluded);
        let near = evaluator.evaluate(&complex, &near_neighbors);

        // Translate the probe 100 Å away: non-bonded cross terms vanish.
        let offset = Vec3::new(100.0, 0.0, 0.0);
        let mut positions = complex.positions();
        for pos in positions.iter_mut().skip(complex.probe_offset) {
            *pos += offset;
        }
        complex.set_positions(&positions);
        let far_neighbors = NeighborList::build(&complex.atoms, ff.cutoff, &excluded);
        let far = evaluator.evaluate(&complex, &far_neighbors);

        // The far configuration has fewer interacting pairs.
        assert!(far_neighbors.n_pairs() < near_neighbors.n_pairs());
        assert!(near.breakdown.total().is_finite() && far.breakdown.total().is_finite());
    }
}
