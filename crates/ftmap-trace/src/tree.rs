//! Per-request causal trees, reassembled from the flat resolved event stream.
//!
//! The serve layer stamps every job with a trace id and threads it through
//! the whole request lifecycle ([`crate::Tags::trace`]):
//!
//! * `admit` instant on the queue track — admission at `admitted_v_s`;
//! * `job-batched` instant on the queue track — the job joined a formed
//!   batch (`batch_seq` tag);
//! * `dock` / `minimize` item spans on device tracks (with their anchored
//!   kernel / transfer / cache children, which inherit the scope tags and so
//!   carry the same trace id);
//! * `job-resolve` instant on the queue track — batch completion resolved the
//!   job (`latency_s` num = admission-to-completion modeled latency).
//!
//! [`build_request_trees`] groups a resolved event list (from
//! [`crate::Recorder::events`] or re-imported via
//! [`crate::import_chrome_trace`]) by trace id into [`RequestTrace`] values —
//! the input to [`crate::critical_path`] analysis.

use crate::event::{Category, TraceEvent};
use std::collections::BTreeMap;

/// Tolerance for containment tests between an item span and its children on
/// the modeled timeline (mirrors the reconstruction tests).
const EPS: f64 = 1e-9;

/// One scheduler work item (a `dock` or `minimize` span) executed on behalf
/// of a request, with its anchored leaf children.
#[derive(Debug, Clone)]
pub struct ItemNode {
    /// The item span itself (name `"dock"` or `"minimize"`, device track).
    pub span: TraceEvent,
    /// Leaf children (kernel / transfer / cache / marker events) recorded
    /// inside the item, in timeline order.
    pub children: Vec<TraceEvent>,
}

impl ItemNode {
    /// True for a dock-phase item.
    pub fn is_dock(&self) -> bool {
        self.span.name == "dock"
    }

    /// The entry (probe) index the item worked on, if tagged.
    pub fn entry(&self) -> Option<u32> {
        self.span.tags.probe
    }

    /// The item's ready instant (`ready_v_s` num): batch submit for dock
    /// items, the dock's completion for minimize items.
    pub fn ready_v_s(&self) -> Option<f64> {
        self.span.tags.nums.iter().find(|(k, _)| *k == "ready_v_s").map(|(_, v)| *v)
    }

    /// Sum of modeled transfer seconds among the children, split as
    /// `(upload_s, download_s)`.
    pub fn transfer_split_s(&self) -> (f64, f64) {
        let mut upload = 0.0;
        let mut download = 0.0;
        for child in &self.children {
            if child.cat == Category::Transfer {
                match child.name.as_str() {
                    "upload" => upload += child.dur_s,
                    "download" => download += child.dur_s,
                    _ => {}
                }
            }
        }
        (upload, download)
    }

    /// True when a residency-cache miss was recorded inside this item (its
    /// uploads paid a cache-miss penalty rather than steady-state staging).
    pub fn had_cache_miss(&self) -> bool {
        self.children.iter().any(|c| c.cat == Category::Cache && c.name == "cache-miss")
    }
}

/// The causal tree of one request: its lifecycle instants plus every
/// scheduler item that ran on its behalf.
#[derive(Debug, Clone, Default)]
pub struct RequestTrace {
    /// The request's trace id.
    pub trace_id: u64,
    /// Tenant tag, if the admit event carried one.
    pub tenant: Option<String>,
    /// Admission verdict name, if the admit event carried one
    /// (`"admitted"` / `"reprioritized"` / `"degraded"`; rejected requests
    /// never reach the queue, so their verdict only shows in metrics).
    pub verdict: Option<&'static str>,
    /// Latency class name.
    pub class: Option<&'static str>,
    /// Admission instant on the modeled timeline (`admit` event).
    pub admitted_v_s: Option<f64>,
    /// Batch-formation instant and the batch sequence number (`job-batched`).
    pub batched: Option<(f64, u64)>,
    /// Resolve instant (`job-resolve` = the batch's completion instant).
    pub resolved_v_s: Option<f64>,
    /// Admission-to-completion modeled latency as stamped by the serve layer
    /// (`latency_s` num on `job-resolve`).
    pub latency_modeled_s: Option<f64>,
    /// Scheduler items that ran for this request, in timeline order.
    pub items: Vec<ItemNode>,
}

impl RequestTrace {
    /// The request's admission-to-completion latency, preferring the stamped
    /// value and falling back to `resolved - admitted`.
    pub fn latency_s(&self) -> Option<f64> {
        self.latency_modeled_s.or(match (self.admitted_v_s, self.resolved_v_s) {
            (Some(a), Some(r)) => Some(r - a),
            _ => None,
        })
    }

    /// The item finishing last — the one that gates this request's batch
    /// completion from the request's own point of view.
    pub fn last_item(&self) -> Option<&ItemNode> {
        self.items.iter().max_by(|a, b| a.span.end_s().total_cmp(&b.span.end_s()))
    }

    /// The dock item for `entry`, if recorded.
    pub fn dock_for_entry(&self, entry: Option<u32>) -> Option<&ItemNode> {
        self.items.iter().find(|item| item.is_dock() && item.entry() == entry)
    }
}

fn is_item_span(event: &TraceEvent) -> bool {
    event.cat == Category::Sched
        && !event.is_instant()
        && (event.name == "dock" || event.name == "minimize")
}

fn is_leaf(event: &TraceEvent) -> bool {
    matches!(event.cat, Category::Kernel | Category::Transfer | Category::Cache)
        || (event.cat == Category::Sched && event.is_instant())
}

/// Groups a **resolved** event list by trace id into per-request causal
/// trees, ordered by trace id. Events without a trace tag (device utilisation
/// counters, batch lifecycle edges) are ignored; leaf events are attached to
/// the item span containing them on the same track.
pub fn build_request_trees(events: &[TraceEvent]) -> Vec<RequestTrace> {
    let mut trees: BTreeMap<u64, RequestTrace> = BTreeMap::new();
    fn tree(trees: &mut BTreeMap<u64, RequestTrace>, id: u64) -> &mut RequestTrace {
        trees.entry(id).or_insert_with(|| RequestTrace { trace_id: id, ..RequestTrace::default() })
    }
    // First pass: lifecycle instants and item spans.
    for event in events {
        let Some(id) = event.tags.trace else { continue };
        if is_item_span(event) {
            tree(&mut trees, id).items.push(ItemNode { span: event.clone(), children: Vec::new() });
            continue;
        }
        let node = tree(&mut trees, id);
        match event.name.as_str() {
            "admit" => {
                node.admitted_v_s = Some(event.start_s);
                node.tenant = event.tags.tenant.clone();
                node.verdict = node.verdict.or(event.tags.verdict);
                node.class = node.class.or(event.tags.class);
            }
            "job-batched" => {
                node.batched = Some((event.start_s, event.tags.batch_seq.unwrap_or(0)));
                node.class = node.class.or(event.tags.class);
            }
            "job-resolve" => {
                node.resolved_v_s = Some(event.start_s);
                node.class = node.class.or(event.tags.class);
                node.latency_modeled_s =
                    event.tags.nums.iter().find(|(k, _)| *k == "latency_s").map(|(_, v)| *v);
            }
            _ => {}
        }
    }
    // Second pass: attach leaves to the containing item on the same track.
    for event in events {
        let Some(id) = event.tags.trace else { continue };
        if is_item_span(event) || !is_leaf(event) {
            continue;
        }
        if let Some(node) = trees.get_mut(&id) {
            if let Some(item) = node.items.iter_mut().find(|item| {
                item.span.track == event.track
                    && event.start_s >= item.span.start_s - EPS
                    && event.end_s() <= item.span.end_s() + EPS
            }) {
                item.children.push(event.clone());
            }
        }
    }
    // Deterministic order within each tree.
    let mut out: Vec<RequestTrace> = trees.into_values().collect();
    for tree in &mut out {
        tree.items.sort_by(|a, b| a.span.start_s.total_cmp(&b.span.start_s));
        for item in &mut tree.items {
            item.children.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, Track};

    fn tagged(mut event: TraceEvent, trace: u64) -> TraceEvent {
        event.tags.trace = Some(trace);
        event
    }

    #[test]
    fn trees_group_lifecycle_items_and_children_by_trace_id() {
        let mut admit = tagged(TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.0), 5);
        admit.tags.tenant = Some("t".to_string());
        admit.tags.class = Some("bulk");
        admit.tags.verdict = Some("admitted");
        let mut batched =
            tagged(TraceEvent::instant(Track::Queue, "job-batched", Category::Serve, 0.1), 5);
        batched.tags.batch_seq = Some(3);
        let mut dock =
            tagged(TraceEvent::span(Track::Device(0), "dock", Category::Sched, 0.2, 0.4), 5);
        dock.tags.probe = Some(0);
        dock.tags.nums.push(("ready_v_s", 0.15));
        let upload =
            tagged(TraceEvent::span(Track::Device(0), "upload", Category::Transfer, 0.2, 0.1), 5);
        let miss =
            tagged(TraceEvent::instant(Track::Device(0), "cache-miss", Category::Cache, 0.2), 5);
        let mut resolve =
            tagged(TraceEvent::instant(Track::Queue, "job-resolve", Category::Serve, 0.9), 5);
        resolve.tags.nums.push(("latency_s", 0.9));
        let other = tagged(TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.05), 8);
        let untagged = TraceEvent::instant(Track::Queue, "queue_depth", Category::Serve, 0.0);

        let trees =
            build_request_trees(&[admit, batched, dock, upload, miss, resolve, other, untagged]);
        assert_eq!(trees.len(), 2);
        let tree = &trees[0];
        assert_eq!(tree.trace_id, 5);
        assert_eq!(tree.tenant.as_deref(), Some("t"));
        assert_eq!(tree.class, Some("bulk"));
        assert_eq!(tree.verdict, Some("admitted"));
        assert_eq!(tree.admitted_v_s, Some(0.0));
        assert_eq!(tree.batched, Some((0.1, 3)));
        assert_eq!(tree.resolved_v_s, Some(0.9));
        assert!((tree.latency_s().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(tree.items.len(), 1);
        let item = &tree.items[0];
        assert!(item.is_dock());
        assert_eq!(item.entry(), Some(0));
        assert!((item.ready_v_s().unwrap() - 0.15).abs() < 1e-12);
        assert_eq!(item.children.len(), 2);
        assert!(item.had_cache_miss());
        let (up, down) = item.transfer_split_s();
        assert!((up - 0.1).abs() < 1e-12 && down == 0.0);
        assert_eq!(trees[1].trace_id, 8);
    }
}
