//! Dense 3-D grids.
//!
//! Both PIPER energy-function grids (shape complementarity, electrostatics,
//! desolvation pairwise potentials) and the correlation *result* grid the GPU kernels
//! compute are represented as [`Grid3`]: a flat row-major `Vec<T>` with `(nx, ny, nz)`
//! dimensions, `z` fastest. The flat layout is what both the FFT engine and the
//! device-model kernels index directly.

use crate::{Real, Vec3};
use serde::{Deserialize, Serialize};

/// A dense 3-D grid of values of type `T`, stored flat in row-major order
/// (`index = (x * ny + y) * nz + z`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid3<T> {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Physical spacing between adjacent voxels (Å). PIPER/FTMap use ~1 Å steps.
    pub spacing: Real,
    /// Physical coordinates of voxel (0, 0, 0) (Å).
    pub origin: Vec3,
    data: Vec<T>,
}

impl<T: Clone + Default> Grid3<T> {
    /// Creates a grid of the given dimensions filled with `T::default()`.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Grid3 {
            nx,
            ny,
            nz,
            spacing: 1.0,
            origin: Vec3::ZERO,
            data: vec![T::default(); nx * ny * nz],
        }
    }

    /// Creates a cubic grid of side `n`.
    pub fn cubic(n: usize) -> Self {
        Grid3::new(n, n, n)
    }

    /// Creates a grid filled with a specific value.
    pub fn filled(nx: usize, ny: usize, nz: usize, value: T) -> Self {
        Grid3 { nx, ny, nz, spacing: 1.0, origin: Vec3::ZERO, data: vec![value; nx * ny * nz] }
    }

    /// Resets every voxel to `T::default()` without reallocating.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = T::default();
        }
    }
}

impl<T> Grid3<T> {
    /// Builds a grid from existing flat data.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny * nz`.
    pub fn from_vec(nx: usize, ny: usize, nz: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), nx * ny * nz, "Grid3::from_vec length mismatch");
        Grid3 { nx, ny, nz, spacing: 1.0, origin: Vec3::ZERO, data }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of voxels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid has no voxels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of voxel `(x, y, z)`.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`Grid3::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let z = idx % self.nz;
        let y = (idx / self.nz) % self.ny;
        let x = idx / (self.ny * self.nz);
        (x, y, z)
    }

    /// Reference to voxel `(x, y, z)`.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> &T {
        &self.data[self.index(x, y, z)]
    }

    /// Mutable reference to voxel `(x, y, z)`.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize, z: usize) -> &mut T {
        let idx = self.index(x, y, z);
        &mut self.data[idx]
    }

    /// Returns the voxel value if the (possibly signed) coordinates are inside the grid.
    #[inline]
    pub fn get_checked(&self, x: isize, y: isize, z: isize) -> Option<&T> {
        if x < 0 || y < 0 || z < 0 {
            return None;
        }
        let (x, y, z) = (x as usize, y as usize, z as usize);
        if x >= self.nx || y >= self.ny || z >= self.nz {
            return None;
        }
        Some(self.at(x, y, z))
    }

    /// The flat underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The flat underlying mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning the flat data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Physical position (Å) of the center of voxel `(x, y, z)`.
    #[inline]
    pub fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        self.origin + Vec3::new(x as Real, y as Real, z as Real) * self.spacing
    }

    /// Maps a physical position to the containing voxel, if inside the grid.
    pub fn position_to_voxel(&self, p: Vec3) -> Option<(usize, usize, usize)> {
        let rel = (p - self.origin) / self.spacing;
        let x = rel.x.round();
        let y = rel.y.round();
        let z = rel.z.round();
        if x < 0.0 || y < 0.0 || z < 0.0 {
            return None;
        }
        let (x, y, z) = (x as usize, y as usize, z as usize);
        if x >= self.nx || y >= self.ny || z >= self.nz {
            return None;
        }
        Some((x, y, z))
    }

    /// Iterates over `(x, y, z, &value)` in storage order.
    pub fn iter_voxels(&self) -> impl Iterator<Item = (usize, usize, usize, &T)> + '_ {
        self.data.iter().enumerate().map(move |(i, v)| {
            let (x, y, z) = self.coords(i);
            (x, y, z, v)
        })
    }
}

impl Grid3<Real> {
    /// Sum of all voxel values.
    pub fn sum(&self) -> Real {
        self.data.iter().sum()
    }

    /// Maximum voxel value (`-inf` for an empty grid).
    pub fn max_value(&self) -> Real {
        self.data.iter().copied().fold(Real::NEG_INFINITY, Real::max)
    }

    /// Minimum voxel value (`+inf` for an empty grid).
    pub fn min_value(&self) -> Real {
        self.data.iter().copied().fold(Real::INFINITY, Real::min)
    }

    /// Index and value of the minimum voxel; `None` for an empty grid.
    /// PIPER-style scoring takes the *most negative* (best) correlation value.
    pub fn argmin(&self) -> Option<(usize, Real)> {
        self.data.iter().copied().enumerate().fold(None, |best, (i, v)| match best {
            None => Some((i, v)),
            Some((_, bv)) if v < bv => Some((i, v)),
            other => other,
        })
    }

    /// Number of voxels whose absolute value exceeds `threshold`.
    pub fn count_above(&self, threshold: Real) -> usize {
        self.data.iter().filter(|v| v.abs() > threshold).count()
    }

    /// Copies this grid into the lower corner of a zero-padded grid of dimensions
    /// `(nx, ny, nz)`; used to pad the (small) ligand grid up to the protein grid
    /// size before FFT correlation.
    ///
    /// # Panics
    /// Panics if the target dimensions are smaller than the source dimensions.
    pub fn zero_padded(&self, nx: usize, ny: usize, nz: usize) -> Grid3<Real> {
        assert!(
            nx >= self.nx && ny >= self.ny && nz >= self.nz,
            "zero_padded target must not be smaller than source"
        );
        let mut out = Grid3::new(nx, ny, nz);
        out.spacing = self.spacing;
        out.origin = self.origin;
        for x in 0..self.nx {
            for y in 0..self.ny {
                for z in 0..self.nz {
                    *out.at_mut(x, y, z) = *self.at(x, y, z);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn index_round_trip() {
        let g: Grid3<Real> = Grid3::new(3, 4, 5);
        for x in 0..3 {
            for y in 0..4 {
                for z in 0..5 {
                    let idx = g.index(x, y, z);
                    assert_eq!(g.coords(idx), (x, y, z));
                }
            }
        }
        assert_eq!(g.len(), 60);
    }

    #[test]
    fn default_fill_and_mutation() {
        let mut g: Grid3<Real> = Grid3::cubic(4);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
        *g.at_mut(1, 2, 3) = 7.5;
        assert_eq!(*g.at(1, 2, 3), 7.5);
        g.clear();
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn filled_constructor() {
        let g = Grid3::filled(2, 2, 2, 3.0_f64);
        assert!(g.as_slice().iter().all(|&v| v == 3.0));
        assert!(approx_eq(g.sum(), 24.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_wrong_length_panics() {
        let _ = Grid3::from_vec(2, 2, 2, vec![0.0_f64; 7]);
    }

    #[test]
    fn get_checked_bounds() {
        let g: Grid3<Real> = Grid3::cubic(2);
        assert!(g.get_checked(0, 0, 0).is_some());
        assert!(g.get_checked(1, 1, 1).is_some());
        assert!(g.get_checked(-1, 0, 0).is_none());
        assert!(g.get_checked(2, 0, 0).is_none());
        assert!(g.get_checked(0, 0, 5).is_none());
    }

    #[test]
    fn min_max_argmin() {
        let mut g: Grid3<Real> = Grid3::cubic(3);
        *g.at_mut(1, 1, 1) = -5.0;
        *g.at_mut(2, 2, 2) = 4.0;
        assert_eq!(g.max_value(), 4.0);
        assert_eq!(g.min_value(), -5.0);
        let (idx, v) = g.argmin().unwrap();
        assert_eq!(v, -5.0);
        assert_eq!(g.coords(idx), (1, 1, 1));
        assert_eq!(g.count_above(3.0), 2);
    }

    #[test]
    fn voxel_center_and_position_round_trip() {
        let mut g: Grid3<Real> = Grid3::cubic(8);
        g.spacing = 0.5;
        g.origin = Vec3::new(-2.0, -2.0, -2.0);
        let c = g.voxel_center(3, 4, 5);
        assert_eq!(g.position_to_voxel(c), Some((3, 4, 5)));
        assert_eq!(g.position_to_voxel(Vec3::new(100.0, 0.0, 0.0)), None);
        assert_eq!(g.position_to_voxel(Vec3::new(-50.0, 0.0, 0.0)), None);
    }

    #[test]
    fn zero_padding_preserves_values() {
        let mut small: Grid3<Real> = Grid3::cubic(2);
        *small.at_mut(0, 1, 1) = 2.5;
        *small.at_mut(1, 0, 0) = -1.0;
        let padded = small.zero_padded(4, 4, 4);
        assert_eq!(padded.dims(), (4, 4, 4));
        assert_eq!(*padded.at(0, 1, 1), 2.5);
        assert_eq!(*padded.at(1, 0, 0), -1.0);
        assert!(approx_eq(padded.sum(), small.sum(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "must not be smaller")]
    fn zero_padding_rejects_shrink() {
        let g: Grid3<Real> = Grid3::cubic(4);
        let _ = g.zero_padded(2, 4, 4);
    }

    #[test]
    fn iter_voxels_covers_all() {
        let g: Grid3<Real> = Grid3::new(2, 3, 2);
        let count = g.iter_voxels().count();
        assert_eq!(count, 12);
        let mut seen = std::collections::HashSet::new();
        for (x, y, z, _) in g.iter_voxels() {
            seen.insert((x, y, z));
        }
        assert_eq!(seen.len(), 12);
    }
}
