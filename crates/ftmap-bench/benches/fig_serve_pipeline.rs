//! Serve-layer pipelining figure: what the cross-batch phased dispatcher and
//! latency classes buy over the two-phase-barrier, FIFO service.
//!
//! Two measurements on a 4 × Tesla C1060 pool, one receptor:
//!
//! 1. **Throughput** — a stream of single-probe bulk jobs (1 dock item, many
//!    pose blocks each; `max_batch_jobs: 1` so every job is its own batch).
//!    The barrier dispatcher runs batches serially, idling the pool at every
//!    phase boundary (a 1-probe dock phase busies 1 of 4 devices); the
//!    pipelined dispatcher fills those holes with the next batch's work. The
//!    figure is the ratio of total modeled span (barrier ÷ pipelined) —
//!    **CI-gated at ≥ 1.3×**.
//! 2. **Interactive latency under bulk load** — the same bulk stream with
//!    small interactive jobs submitted after it. FIFO baseline: interactive
//!    jobs carry `LatencyClass::Bulk`, so they wait out the whole queue.
//!    Priority run: `LatencyClass::Interactive`, so their batches overtake at
//!    item boundaries (aging-bounded). The figure is the ratio of the
//!    interactive jobs' p95 modeled latency (priority ÷ FIFO) — **CI-gated at
//!    ≤ 0.5×**.
//!
//! 3. **SLO-aware admission under overload** — the same bulk stream bursted
//!    at a deadline only the head of the queue can meet. Uncontrolled, the
//!    tail blows through the deadline; with the admission controller on
//!    (degrade + refuse), every admission is estimate-backed and the
//!    miss rate is **CI-gated at ≤ 0.5×** the uncontrolled rate while goodput
//!    stays **≥ 0.9×**.
//! 4. **Tenant fairness** — a hot tenant floods the queue ahead of a light
//!    tenant; weighted in-flight quotas interleave the light tenant's jobs
//!    instead of making them wait out the flood (**CI-gated at ≤ 0.8×** the
//!    unquoted light-tenant latency).
//!
//! Results are written to `BENCH_SERVE_PIPELINE.json` at the workspace root;
//! the committed snapshot is the bench-trend baseline (`bench_trend` fails CI
//! if a gated metric regresses > 15% against it).
//!
//! Run with: `cargo bench -p ftmap-bench --bench fig_serve_pipeline`
//! (`FTMAP_SERVE_PIPELINE_JOBS` scales the bulk-job count for local
//! experiments; CI runs the full default scale — the latency ratio depends
//! on queue depth, so the trend gate must compare like with like).

use ftmap_core::{DegradePolicy, FtMapConfig, PipelineMode};
use ftmap_molecule::{ForceField, ProbeType, ProteinSpec, SyntheticProtein};
use ftmap_serve::service::ClassLatency;
use ftmap_serve::{
    AdmissionConfig, AdmissionVerdict, BatchConfig, BatchMappingService, DispatchMode, JobReport,
    LatencyClass, MappingRequest, Observability, ServeConfig, TenantQuota,
};
use gpu_sim::sched::DevicePool;
use std::sync::Arc;
use std::time::Instant;

/// Throughput gate: minimum pipelined-over-barrier modeled span ratio.
const MIN_PIPELINE_SPEEDUP: f64 = 1.3;
/// Latency gate: maximum priority-over-FIFO interactive p95 ratio.
const MAX_INTERACTIVE_P95_RATIO: f64 = 0.5;
/// Observability gate: maximum traced-over-untraced modeled span ratio.
/// Instrumentation feeds off the modeled timeline and must never perturb it —
/// a full recorder run and the default no-op-sink run are the same schedule,
/// so anything above 1% modeled drift means a hook started charging time.
/// The same ceiling covers the flight-recorder sink (ring buffer + SLO
/// engine + tail-sampled retention): the heaviest observability wiring the
/// service supports must still leave the schedule untouched.
const MAX_TRACE_OVERHEAD_RATIO: f64 = 1.01;

/// Admission gate: controlled deadline-miss rate over uncontrolled (the
/// SLO-aware controller must cut misses at least 2×).
const MAX_ADMISSION_MISS_RATIO: f64 = 0.5;
/// Admission gate: controlled over uncontrolled goodput (jobs per modeled
/// second) — admission control may cost at most 10% throughput.
const MIN_ADMISSION_THROUGHPUT_RATIO: f64 = 0.9;
/// Fairness gate: light-tenant mean latency under quotas over without — the
/// weighted quota must shield the light tenant from the hot tenant's flood.
const MAX_TENANT_FAIRNESS_RATIO: f64 = 0.8;

const DEVICES: usize = 4;

fn base_config() -> FtMapConfig {
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 2;
    config.conformations_per_probe = 8;
    config
}

/// A heavy bulk job: one probe, 8 retained poses — 1 dock item + 4 pose
/// blocks at `pose_block: 2`, so its dock phase busies 1 of 4 devices.
fn bulk_job(protein: &SyntheticProtein, ff: &ForceField, i: usize) -> MappingRequest {
    MappingRequest::new(protein.clone(), ff.clone(), vec![ProbeType::Ethanol], base_config())
        .with_tag(format!("bulk-{i}"))
}

/// A small interactive job: one probe, one pose.
fn interactive_job(
    protein: &SyntheticProtein,
    ff: &ForceField,
    i: usize,
    class: LatencyClass,
) -> MappingRequest {
    let mut config = base_config();
    config.conformations_per_probe = 1;
    MappingRequest::new(protein.clone(), ff.clone(), vec![ProbeType::Urea], config)
        .with_tag(format!("inter-{i}"))
        .with_class(class)
}

fn serve_config(dispatch: DispatchMode) -> ServeConfig {
    ServeConfig::with_batch(BatchConfig {
        dispatch,
        max_batch_jobs: 1, // one job per batch: the batch stream the pipeline overlaps
        pose_block: 2,
        max_inflight_batches: 2,
        bulk_aging: 4,
    })
}

struct RunOutcome {
    reports: Vec<Arc<JobReport>>,
    span_modeled_s: f64,
    cross_batch_overlap_s: f64,
    wall_s: f64,
}

/// Runs `jobs` through a fresh service (fresh pool) and collects the modeled
/// figures. The builder installs the no-op trace sink by default, so this is
/// the untraced baseline the overhead gate compares against.
fn run(dispatch: DispatchMode, jobs: Vec<MappingRequest>) -> RunOutcome {
    run_with_sink(dispatch, jobs, ftmap_trace::noop())
}

/// [`run`] with an explicit trace sink attached to the service.
fn run_with_sink(
    dispatch: DispatchMode,
    jobs: Vec<MappingRequest>,
    sink: Arc<dyn ftmap_trace::TraceSink>,
) -> RunOutcome {
    run_with_observability(dispatch, jobs, Observability::trace(sink))
}

/// [`run`] with full observability wiring — trace sink, SLO engine, and
/// (optionally) the tail-sampling flight recorder.
fn run_with_observability(
    dispatch: DispatchMode,
    jobs: Vec<MappingRequest>,
    observability: Observability,
) -> RunOutcome {
    let pool = Arc::new(DevicePool::tesla(DEVICES));
    let service = BatchMappingService::builder(pool)
        .config(serve_config(dispatch))
        .observability(observability)
        .build();
    let start = Instant::now();
    let handles: Vec<_> =
        jobs.into_iter().map(|r| service.submit(r).expect_admitted("admitted")).collect();
    let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
    let wall_s = start.elapsed().as_secs_f64();
    let stats = service.shutdown();
    RunOutcome {
        reports,
        span_modeled_s: stats.span_modeled_s,
        cross_batch_overlap_s: stats.cross_batch_overlap_modeled_s,
        wall_s,
    }
}

/// One overload run for the admission figure: two warmup jobs calibrate the
/// cost model (and warm the residency cache) outside the measurement, then
/// `n_burst` heavy bulk jobs arrive back to back against the live backlog.
struct AdmissionRun {
    /// Reports of the jobs that were admitted (possibly degraded or
    /// reprioritized) — the population the miss rate is computed over.
    reports: Vec<Arc<JobReport>>,
    degraded: usize,
    reprioritized: usize,
    rejected: usize,
}

impl AdmissionRun {
    /// Admission-to-completion span of the burst on the virtual timeline.
    fn burst_span_s(&self) -> f64 {
        let start = self.reports.iter().map(|r| r.admitted_modeled_s).fold(f64::INFINITY, f64::min);
        let end = self.reports.iter().map(|r| r.batch.completed_modeled_s).fold(0.0f64, f64::max);
        (end - start).max(1e-12)
    }

    /// Completed jobs per modeled second of the burst (goodput).
    fn throughput(&self) -> f64 {
        self.reports.len() as f64 / self.burst_span_s()
    }

    /// Fraction of admitted jobs whose realized modeled latency exceeded
    /// `deadline_s`.
    fn miss_rate(&self, deadline_s: f64) -> f64 {
        let missed = self.reports.iter().filter(|r| r.latency_modeled_s > deadline_s).count();
        missed as f64 / (self.reports.len() as f64).max(1.0)
    }
}

fn run_admission(
    admission: AdmissionConfig,
    protein: &SyntheticProtein,
    ff: &ForceField,
    n_burst: usize,
) -> AdmissionRun {
    let pool = Arc::new(DevicePool::tesla(DEVICES));
    let service = BatchMappingService::builder(pool)
        .config(serve_config(DispatchMode::Pipelined))
        .admission(admission)
        .build();
    for i in 0..2 {
        let job = bulk_job(protein, ff, i).with_tag(format!("warm-{i}"));
        service.submit(job).expect_admitted("warmup admitted").wait();
    }
    let mut handles = Vec::new();
    let (mut degraded, mut reprioritized, mut rejected) = (0usize, 0usize, 0usize);
    for i in 0..n_burst {
        match service.submit(bulk_job(protein, ff, i)) {
            AdmissionVerdict::Admitted(handle) => handles.push(handle),
            AdmissionVerdict::Reprioritized { handle, .. } => {
                reprioritized += 1;
                handles.push(handle);
            }
            AdmissionVerdict::Degraded { handle, .. } => {
                degraded += 1;
                handles.push(handle);
            }
            AdmissionVerdict::Rejected { .. } => rejected += 1,
        }
    }
    let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
    service.shutdown();
    AdmissionRun { reports, degraded, reprioritized, rejected }
}

/// One run of the tenant-fairness figure: the hot tenant floods the queue,
/// then the light tenant submits a couple of jobs behind it. Returns the
/// light tenant's mean modeled latency.
fn run_tenant_mix(admission: AdmissionConfig, protein: &SyntheticProtein, ff: &ForceField) -> f64 {
    let (n_hot, n_light) = (8usize, 2usize);
    let pool = Arc::new(DevicePool::tesla(DEVICES));
    let service = BatchMappingService::builder(pool)
        .config(serve_config(DispatchMode::Pipelined))
        .admission(admission)
        .build();
    let mut handles = Vec::new();
    for i in 0..n_hot {
        let job = bulk_job(protein, ff, i).with_tag(format!("hot-{i}")).with_tenant("hot");
        handles.push(service.submit(job).expect_admitted("hot admitted"));
    }
    for i in 0..n_light {
        let job = bulk_job(protein, ff, i).with_tag(format!("light-{i}")).with_tenant("light");
        handles.push(service.submit(job).expect_admitted("light admitted"));
    }
    let reports: Vec<Arc<JobReport>> = handles.iter().map(|h| h.wait()).collect();
    service.shutdown();
    let light: Vec<f64> = reports
        .iter()
        .filter(|r| r.tag.starts_with("light-"))
        .map(|r| r.latency_modeled_s)
        .collect();
    light.iter().sum::<f64>() / light.len() as f64
}

/// p95 of the tagged jobs' modeled batch latencies — through the service's
/// own [`ClassLatency`] summary, so the gate measures exactly the percentile
/// definition `ServeStats` reports.
fn p95_latency(reports: &[Arc<JobReport>], tag_prefix: &str) -> f64 {
    let latencies: Vec<f64> = reports
        .iter()
        .filter(|r| r.tag.starts_with(tag_prefix))
        .map(|r| r.batch.latency_modeled_s)
        .collect();
    assert!(!latencies.is_empty(), "no jobs tagged {tag_prefix}*");
    ClassLatency::from_samples(&latencies).p95_s
}

fn main() {
    let n_bulk: usize = std::env::var("FTMAP_SERVE_PIPELINE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.clamp(4, 64))
        .unwrap_or(8);
    let n_interactive = 4usize;
    println!(
        "fig_serve_pipeline: {n_bulk} bulk + {n_interactive} interactive jobs, \
         1 receptor, {DEVICES} x Tesla C1060, pose_block 2, 1 job/batch"
    );

    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let bulk_jobs =
        |n: usize| -> Vec<MappingRequest> { (0..n).map(|i| bulk_job(&protein, &ff, i)).collect() };

    // --- 1. Throughput: bulk stream, barrier vs pipelined.
    let barrier = run(DispatchMode::Barrier, bulk_jobs(n_bulk));
    let pipelined = run(DispatchMode::Pipelined, bulk_jobs(n_bulk));
    let speedup = barrier.span_modeled_s / pipelined.span_modeled_s.max(1e-12);
    println!("\n{:<40}{:>14}{:>16}{:>12}", "dispatcher", "modeled ms", "overlap ms", "wall ms");
    for (label, outcome) in
        [("two-phase barrier (serial batches)", &barrier), ("pipelined (cross-batch)", &pipelined)]
    {
        println!(
            "{:<40}{:>14.3}{:>16.3}{:>12.0}",
            label,
            1e3 * outcome.span_modeled_s,
            1e3 * outcome.cross_batch_overlap_s,
            1e3 * outcome.wall_s
        );
    }
    println!("pipelined throughput speedup: {speedup:.2}x");
    assert!(barrier.cross_batch_overlap_s == 0.0, "barrier batches must be serial");
    assert!(pipelined.cross_batch_overlap_s > 0.0, "pipelining must overlap batches");

    // --- Observability overhead: the same pipelined stream with a full
    // trace recorder attached. Tracing reads the modeled timeline, it never
    // writes it — the traced span must equal the no-op-sink span.
    let recorder = Arc::new(ftmap_trace::Recorder::new());
    let traced = run_with_sink(
        DispatchMode::Pipelined,
        bulk_jobs(n_bulk),
        Arc::clone(&recorder) as Arc<dyn ftmap_trace::TraceSink>,
    );
    let trace_events = recorder.events().len();
    let trace_overhead = traced.span_modeled_s / pipelined.span_modeled_s.max(1e-12);
    println!(
        "\ntraced rerun: {:.3} ms modeled span over {} trace events \
         ({:.4}x the untraced span)",
        1e3 * traced.span_modeled_s,
        trace_events,
        trace_overhead
    );
    assert!(trace_events > 0, "the recorder run must capture events");

    // --- Flight recorder: the heaviest observability wiring — bounded ring
    // sink + per-job SLO evaluation + tail-sampled tree retention (an
    // unmeetable 0 s bulk target makes every request breach, so retention is
    // exercised on every job). Same schedule, same gate.
    let flight = Arc::new(ftmap_trace::FlightRecorder::new());
    let flight_run = run_with_observability(
        DispatchMode::Pipelined,
        bulk_jobs(n_bulk),
        Observability::flight(
            Arc::clone(&flight),
            vec![ftmap_trace::SloSpec::new(LatencyClass::Bulk.name(), 0.0, 0.99)],
        ),
    );
    let flight_retained = flight.retained_total();
    let flight_overhead = flight_run.span_modeled_s / pipelined.span_modeled_s.max(1e-12);
    println!(
        "flight rerun: {:.3} ms modeled span, {} ring events, {} retained trees \
         ({:.4}x the untraced span)",
        1e3 * flight_run.span_modeled_s,
        flight.ring_len(),
        flight_retained,
        flight_overhead
    );
    assert!(flight.ring_len() > 0, "the flight ring must capture events");
    assert!(
        flight_retained as usize == n_bulk,
        "the unmeetable SLO must retain every request's tree"
    );

    // --- 2. Interactive latency under bulk load: FIFO vs priority classes.
    let mixed = |class: LatencyClass| -> Vec<MappingRequest> {
        let mut jobs = bulk_jobs(n_bulk);
        jobs.extend((0..n_interactive).map(|i| interactive_job(&protein, &ff, i, class)));
        jobs
    };
    let fifo = run(DispatchMode::Pipelined, mixed(LatencyClass::Bulk));
    let classed = run(DispatchMode::Pipelined, mixed(LatencyClass::Interactive));
    let fifo_p95 = p95_latency(&fifo.reports, "inter-");
    let classed_p95 = p95_latency(&classed.reports, "inter-");
    let latency_ratio = classed_p95 / fifo_p95.max(1e-12);
    println!(
        "\ninteractive p95 modeled latency: FIFO {:.3} ms, priority {:.3} ms ({:.2}x)",
        1e3 * fifo_p95,
        1e3 * classed_p95,
        latency_ratio
    );

    // --- 3. SLO-aware admission under overload: the same heavy bulk stream,
    // bursted at a service whose deadline only the head of the queue can
    // meet. Uncontrolled, every job is admitted and the tail blows through
    // the deadline; controlled, the admission controller estimates each
    // request against the live backlog and degrades (fewer rotations /
    // conformations) or refuses the ones that cannot make it.
    let n_burst = n_bulk;
    let uncontrolled = run_admission(AdmissionConfig::default(), &protein, &ff, n_burst);
    let mut realized: Vec<f64> = uncontrolled.reports.iter().map(|r| r.latency_modeled_s).collect();
    realized.sort_by(f64::total_cmp);
    // The overload deadline: rank ~40% of the uncontrolled burst latencies,
    // so the majority of the uncontrolled burst misses it.
    let deadline_s = realized[(realized.len() * 2 / 5).min(realized.len() - 1)];
    let uncontrolled_miss = uncontrolled.miss_rate(deadline_s);
    let controlled = run_admission(
        AdmissionConfig {
            bulk_deadline_s: Some(deadline_s),
            degrade: Some(DegradePolicy {
                rotation_factor: 0.5,
                min_rotations: 1,
                conformation_factor: 0.5,
                min_conformations: 1,
            }),
            // Reprioritizing a bulk-only burst would let late arrivals
            // overtake already-admitted jobs and invalidate their
            // admission-time estimates; degrade/refuse keeps every admitted
            // estimate structurally honest.
            reprioritize: false,
            ..AdmissionConfig::default()
        },
        &protein,
        &ff,
        n_burst,
    );
    let controlled_miss = controlled.miss_rate(deadline_s);
    let miss_ratio = controlled_miss / uncontrolled_miss.max(1e-12);
    let admission_throughput_ratio = controlled.throughput() / uncontrolled.throughput().max(1e-12);
    println!(
        "\nadmission under overload (deadline {:.3} ms): uncontrolled miss {:.0}% over \
         {} jobs; controlled miss {:.0}% over {} admitted ({} degraded, {} reprioritized, \
         {} refused) — miss ratio {:.3}x, goodput ratio {:.3}x",
        1e3 * deadline_s,
        100.0 * uncontrolled_miss,
        uncontrolled.reports.len(),
        100.0 * controlled_miss,
        controlled.reports.len(),
        controlled.degraded,
        controlled.reprioritized,
        controlled.rejected,
        miss_ratio,
        admission_throughput_ratio,
    );
    assert!(uncontrolled_miss > 0.0, "the uncontrolled burst must overload the deadline");
    assert!(!controlled.reports.is_empty(), "the controller must admit part of the burst");
    // Structural invariant: everything the controller admitted, it admitted
    // because the live estimate fit the deadline.
    for report in &controlled.reports {
        let estimate = report.estimated_latency_s.expect("calibrated burst admissions estimate");
        let deadline = report.deadline_s.expect("burst jobs carry the bulk deadline");
        assert!(
            estimate <= deadline + 1e-9,
            "{}: admitted with estimate {estimate} above deadline {deadline}",
            report.tag
        );
    }

    // --- 4. Tenant fairness: a hot tenant floods the queue ahead of a light
    // tenant; weighted in-flight quotas let the light tenant's jobs interleave
    // instead of waiting out the whole flood.
    let unquoted_light_s = run_tenant_mix(AdmissionConfig::default(), &protein, &ff);
    let quota = AdmissionConfig {
        tenant_quotas: vec![
            TenantQuota { tenant: "hot".into(), weight: 1.0 },
            TenantQuota { tenant: "light".into(), weight: 1.0 },
        ],
        ..AdmissionConfig::default()
    };
    let quoted_light_s = run_tenant_mix(quota, &protein, &ff);
    let fairness_ratio = quoted_light_s / unquoted_light_s.max(1e-12);
    println!(
        "tenant fairness: light-tenant mean latency {:.3} ms unquoted vs {:.3} ms under \
         weighted quotas ({:.3}x)",
        1e3 * unquoted_light_s,
        1e3 * quoted_light_s,
        fairness_ratio,
    );

    let admission = AdmissionFigures {
        deadline_s,
        uncontrolled_miss,
        controlled_miss,
        miss_ratio,
        throughput_ratio: admission_throughput_ratio,
        degraded: controlled.degraded,
        reprioritized: controlled.reprioritized,
        rejected: controlled.rejected,
        unquoted_light_s,
        quoted_light_s,
        fairness_ratio,
    };
    let json = format_json(
        n_bulk,
        n_interactive,
        &barrier,
        &pipelined,
        speedup,
        fifo_p95,
        classed_p95,
        latency_ratio,
        &traced,
        trace_events,
        trace_overhead,
        &flight_run,
        flight_retained,
        flight_overhead,
        &admission,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE_PIPELINE.json");
    std::fs::write(path, json).expect("write BENCH_SERVE_PIPELINE.json");
    println!("wrote {path}");

    assert!(
        speedup >= MIN_PIPELINE_SPEEDUP,
        "REGRESSION: pipelined dispatch {speedup:.2}x over the barrier fell below the \
         {MIN_PIPELINE_SPEEDUP}x gate"
    );
    assert!(
        latency_ratio <= MAX_INTERACTIVE_P95_RATIO,
        "REGRESSION: interactive p95 under priority is {latency_ratio:.2}x FIFO, above the \
         {MAX_INTERACTIVE_P95_RATIO}x gate"
    );
    assert!(
        trace_overhead <= MAX_TRACE_OVERHEAD_RATIO,
        "REGRESSION: tracing inflated the modeled span {trace_overhead:.4}x, above the \
         {MAX_TRACE_OVERHEAD_RATIO}x gate — a hook is charging modeled time"
    );
    assert!(
        flight_overhead <= MAX_TRACE_OVERHEAD_RATIO,
        "REGRESSION: the flight-recorder sink (ring + SLO engine + retention) inflated the \
         modeled span {flight_overhead:.4}x, above the {MAX_TRACE_OVERHEAD_RATIO}x gate"
    );
    assert!(
        miss_ratio <= MAX_ADMISSION_MISS_RATIO,
        "REGRESSION: admission control left the deadline-miss rate at {miss_ratio:.2}x the \
         uncontrolled run, above the {MAX_ADMISSION_MISS_RATIO}x gate"
    );
    assert!(
        admission_throughput_ratio >= MIN_ADMISSION_THROUGHPUT_RATIO,
        "REGRESSION: admission control cost {admission_throughput_ratio:.2}x of the \
         uncontrolled goodput, below the {MIN_ADMISSION_THROUGHPUT_RATIO}x gate"
    );
    assert!(
        fairness_ratio <= MAX_TENANT_FAIRNESS_RATIO,
        "REGRESSION: weighted tenant quotas left the light tenant at {fairness_ratio:.2}x its \
         unquoted latency, above the {MAX_TENANT_FAIRNESS_RATIO}x gate"
    );
    println!(
        "gates ok: throughput {speedup:.2}x >= {MIN_PIPELINE_SPEEDUP}x, \
         interactive p95 {latency_ratio:.2}x <= {MAX_INTERACTIVE_P95_RATIO}x, \
         trace overhead {trace_overhead:.4}x <= {MAX_TRACE_OVERHEAD_RATIO}x, \
         flight overhead {flight_overhead:.4}x <= {MAX_TRACE_OVERHEAD_RATIO}x, \
         admission miss {miss_ratio:.2}x <= {MAX_ADMISSION_MISS_RATIO}x at goodput \
         {admission_throughput_ratio:.2}x >= {MIN_ADMISSION_THROUGHPUT_RATIO}x, \
         tenant fairness {fairness_ratio:.2}x <= {MAX_TENANT_FAIRNESS_RATIO}x"
    );
}

/// The admission-control and tenant-fairness figures, bundled for the JSON
/// formatter.
struct AdmissionFigures {
    deadline_s: f64,
    uncontrolled_miss: f64,
    controlled_miss: f64,
    miss_ratio: f64,
    throughput_ratio: f64,
    degraded: usize,
    reprioritized: usize,
    rejected: usize,
    unquoted_light_s: f64,
    quoted_light_s: f64,
    fairness_ratio: f64,
}

// lint-allow(justified-allows): the JSON row simply has this many fields;
// a one-use builder struct would double the code for a bench formatter.
#[allow(clippy::too_many_arguments)]
fn format_json(
    n_bulk: usize,
    n_interactive: usize,
    barrier: &RunOutcome,
    pipelined: &RunOutcome,
    speedup: f64,
    fifo_p95: f64,
    classed_p95: f64,
    latency_ratio: f64,
    traced: &RunOutcome,
    trace_events: usize,
    trace_overhead: f64,
    flight_run: &RunOutcome,
    flight_retained: u64,
    flight_overhead: f64,
    admission: &AdmissionFigures,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"figure\": \"serve-layer pipelining: cross-batch phase overlap + latency classes\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": \"{n_bulk} bulk jobs (1 probe x 8 poses) + {n_interactive} interactive \
         jobs (1 probe x 1 pose), one receptor, {DEVICES} x Tesla C1060, pose_block 2, \
         max_batch_jobs 1\",\n"
    ));
    out.push_str(
        "  \"model\": \"virtual-timeline span over the pool (gpu_sim::sched::PhasePipeline); \
         barrier spans are back-to-back batch makespans\",\n",
    );
    out.push_str("  \"throughput\": {\n");
    out.push_str(&format!(
        "    \"barrier_span_ms\": {:.4},\n    \"pipelined_span_ms\": {:.4},\n    \
         \"cross_batch_overlap_ms\": {:.4},\n    \"speedup\": {:.4}\n  }},\n",
        1e3 * barrier.span_modeled_s,
        1e3 * pipelined.span_modeled_s,
        1e3 * pipelined.cross_batch_overlap_s,
        speedup
    ));
    out.push_str("  \"interactive_latency\": {\n");
    out.push_str(&format!(
        "    \"fifo_p95_ms\": {:.4},\n    \"priority_p95_ms\": {:.4},\n    \
         \"priority_over_fifo\": {:.4}\n  }},\n",
        1e3 * fifo_p95,
        1e3 * classed_p95,
        latency_ratio
    ));
    out.push_str("  \"trace_overhead\": {\n");
    out.push_str(&format!(
        "    \"noop_span_ms\": {:.4},\n    \"traced_span_ms\": {:.4},\n    \
         \"trace_events\": {trace_events},\n    \"traced_over_noop\": {trace_overhead:.4},\n    \
         \"flight_span_ms\": {:.4},\n    \"flight_retained_requests\": {flight_retained},\n    \
         \"flight_over_noop\": {flight_overhead:.4}\n  }},\n",
        1e3 * pipelined.span_modeled_s,
        1e3 * traced.span_modeled_s,
        1e3 * flight_run.span_modeled_s,
    ));
    out.push_str("  \"admission_control\": {\n");
    out.push_str(&format!(
        "    \"deadline_ms\": {:.4},\n    \"uncontrolled_miss_rate\": {:.4},\n    \
         \"controlled_miss_rate\": {:.4},\n    \"degraded\": {},\n    \"reprioritized\": {},\n    \
         \"rejected\": {},\n    \"goodput_ratio\": {:.4}\n  }},\n",
        1e3 * admission.deadline_s,
        admission.uncontrolled_miss,
        admission.controlled_miss,
        admission.degraded,
        admission.reprioritized,
        admission.rejected,
        admission.throughput_ratio,
    ));
    out.push_str("  \"fairness\": {\n");
    out.push_str(&format!(
        "    \"light_tenant_unquoted_ms\": {:.4},\n    \"light_tenant_quoted_ms\": {:.4}\n  }},\n",
        1e3 * admission.unquoted_light_s,
        1e3 * admission.quoted_light_s,
    ));
    out.push_str(&format!(
        "  \"gates\": {{\n    \"pipelined_speedup\": {{ \"metric\": \"barrier span over \
         pipelined span\", \"minimum\": {MIN_PIPELINE_SPEEDUP:.1}, \"measured\": {speedup:.4} \
         }},\n    \"interactive_p95\": {{ \"metric\": \"priority p95 over FIFO p95\", \
         \"maximum\": {MAX_INTERACTIVE_P95_RATIO:.1}, \"measured\": {latency_ratio:.4} }},\n    \
         \"noop_trace_overhead\": {{ \"metric\": \"traced span over no-op-sink span\", \
         \"maximum\": {MAX_TRACE_OVERHEAD_RATIO:.2}, \"measured\": {trace_overhead:.4} }},\n    \
         \"flight_trace_overhead\": {{ \"metric\": \"flight-recorder-sink span over no-op-sink \
         span\", \"maximum\": {MAX_TRACE_OVERHEAD_RATIO:.2}, \"measured\": {flight_overhead:.4} \
         }},\n    \"admission_miss\": {{ \"metric\": \"controlled deadline-miss rate over \
         uncontrolled\", \"maximum\": {MAX_ADMISSION_MISS_RATIO:.1}, \"measured\": {:.4} }},\n    \
         \"admission_goodput\": {{ \"metric\": \"controlled goodput over uncontrolled\", \
         \"minimum\": {MIN_ADMISSION_THROUGHPUT_RATIO:.1}, \"measured\": {:.4} }},\n    \
         \"tenant_fairness\": {{ \"metric\": \"light-tenant mean latency, quoted over \
         unquoted\", \"maximum\": {MAX_TENANT_FAIRNESS_RATIO:.1}, \"measured\": {:.4} \
         }}\n  }}\n",
        admission.miss_ratio, admission.throughput_ratio, admission.fairness_ratio,
    ));
    out.push_str("}\n");
    out
}
