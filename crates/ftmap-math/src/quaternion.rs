//! Unit quaternions and rigid-body rotations.
//!
//! PIPER's exhaustive search rotates the probe grid by an incremental angle; FTMap
//! samples 500 rotations of SO(3) (see [`crate::rotations`]). The rotations themselves
//! are represented here as unit quaternions with conversion to 3×3 matrices for the
//! hot rotate-all-atoms loops.

use crate::{Real, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`. Rotations use unit quaternions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quaternion {
    /// Scalar part.
    pub w: Real,
    /// i component.
    pub x: Real,
    /// j component.
    pub y: Real,
    /// k component.
    pub z: Real,
}

impl Quaternion {
    /// The identity rotation.
    pub const IDENTITY: Quaternion = Quaternion { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a quaternion from components.
    #[inline]
    pub const fn new(w: Real, x: Real, y: Real, z: Real) -> Self {
        Quaternion { w, x, y, z }
    }

    /// Builds the rotation of `angle` radians about `axis` (normalized internally).
    pub fn from_axis_angle(axis: Vec3, angle: Real) -> Self {
        let axis = axis.normalized();
        let half = angle * 0.5;
        let s = half.sin();
        Quaternion::new(half.cos(), axis.x * s, axis.y * s, axis.z * s)
    }

    /// Builds a rotation from intrinsic Z-Y-Z Euler angles `(phi, theta, psi)`,
    /// the convention used by PIPER's rotation files.
    pub fn from_euler_zyz(phi: Real, theta: Real, psi: Real) -> Self {
        let qz1 = Quaternion::from_axis_angle(Vec3::Z, phi);
        let qy = Quaternion::from_axis_angle(Vec3::Y, theta);
        let qz2 = Quaternion::from_axis_angle(Vec3::Z, psi);
        qz1 * qy * qz2
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(self) -> Real {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Norm.
    #[inline]
    pub fn norm(self) -> Real {
        self.norm_sq().sqrt()
    }

    /// Returns the normalized (unit) quaternion; identity if the norm is ~0.
    pub fn normalized(self) -> Quaternion {
        let n = self.norm();
        if n <= Real::EPSILON {
            Quaternion::IDENTITY
        } else {
            Quaternion::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// Conjugate; for unit quaternions this is the inverse rotation.
    #[inline]
    pub fn conjugate(self) -> Quaternion {
        Quaternion::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotates a vector by this (unit) quaternion.
    #[inline]
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // q * (0, v) * q^-1 expanded to avoid building intermediate quaternions.
        let u = Vec3::new(self.x, self.y, self.z);
        let uv = u.cross(v);
        let uuv = u.cross(uv);
        v + (uv * self.w + uuv) * 2.0
    }

    /// Dot product of two quaternions (cosine of half the angle between rotations,
    /// up to sign).
    #[inline]
    pub fn dot(self, rhs: Quaternion) -> Real {
        self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Geodesic angle (radians, in `[0, pi]`) between the two rotations represented
    /// by unit quaternions, accounting for the double cover.
    pub fn angle_to(self, rhs: Quaternion) -> Real {
        let d = self.dot(rhs).abs().clamp(0.0, 1.0);
        2.0 * d.acos()
    }
}

impl Mul for Quaternion {
    type Output = Quaternion;
    #[inline]
    fn mul(self, r: Quaternion) -> Quaternion {
        Quaternion::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

/// A rigid-body rotation stored both as a unit quaternion and as the equivalent
/// 3×3 row-major matrix.
///
/// The matrix form is what the grid-rotation and atom-rotation inner loops use
/// (9 multiplies, no trig); the quaternion form is kept for composition and for
/// measuring angular distances between rotations when clustering poses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rotation {
    quat: Quaternion,
    mat: [[Real; 3]; 3],
}

impl Rotation {
    /// The identity rotation.
    pub fn identity() -> Self {
        Rotation::from_quaternion(Quaternion::IDENTITY)
    }

    /// Builds a rotation from a quaternion (normalized internally).
    pub fn from_quaternion(q: Quaternion) -> Self {
        let q = q.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        let mat = [
            [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)],
            [2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)],
            [2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)],
        ];
        Rotation { quat: q, mat }
    }

    /// Builds the rotation of `angle` radians about `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: Real) -> Self {
        Rotation::from_quaternion(Quaternion::from_axis_angle(axis, angle))
    }

    /// Builds a rotation from Z-Y-Z Euler angles.
    pub fn from_euler_zyz(phi: Real, theta: Real, psi: Real) -> Self {
        Rotation::from_quaternion(Quaternion::from_euler_zyz(phi, theta, psi))
    }

    /// The underlying unit quaternion.
    #[inline]
    pub fn quaternion(&self) -> Quaternion {
        self.quat
    }

    /// The row-major rotation matrix.
    #[inline]
    pub fn matrix(&self) -> &[[Real; 3]; 3] {
        &self.mat
    }

    /// Applies the rotation to a vector using the cached matrix.
    #[inline]
    pub fn apply(&self, v: Vec3) -> Vec3 {
        let m = &self.mat;
        Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        )
    }

    /// Applies the rotation about a pivot point: `pivot + R (v - pivot)`.
    #[inline]
    pub fn apply_about(&self, v: Vec3, pivot: Vec3) -> Vec3 {
        pivot + self.apply(v - pivot)
    }

    /// The inverse rotation.
    pub fn inverse(&self) -> Rotation {
        Rotation::from_quaternion(self.quat.conjugate())
    }

    /// Composition: `self` applied after `other` (matrix product `self * other`).
    pub fn compose(&self, other: &Rotation) -> Rotation {
        Rotation::from_quaternion(self.quat * other.quat)
    }

    /// Geodesic angle (radians) to another rotation.
    pub fn angle_to(&self, other: &Rotation) -> Real {
        self.quat.angle_to(other.quat)
    }

    /// Rotates every point in `points`, writing results into `out`.
    ///
    /// `out` must have the same length as `points`. Used by the docking engine to
    /// rotate the probe once per rotation, reusing a workhorse buffer.
    pub fn apply_all_into(&self, points: &[Vec3], out: &mut [Vec3]) {
        assert_eq!(points.len(), out.len(), "output buffer length mismatch");
        for (dst, &src) in out.iter_mut().zip(points) {
            *dst = self.apply(src);
        }
    }
}

impl Default for Rotation {
    fn default() -> Self {
        Rotation::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_eq(a: Vec3, b: Vec3) {
        assert!(approx_eq(a.x, b.x, 1e-9), "{a:?} vs {b:?}");
        assert!(approx_eq(a.y, b.y, 1e-9), "{a:?} vs {b:?}");
        assert!(approx_eq(a.z, b.z, 1e-9), "{a:?} vs {b:?}");
    }

    #[test]
    fn identity_leaves_vectors_unchanged() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_eq(Quaternion::IDENTITY.rotate(v), v);
        assert_vec_eq(Rotation::identity().apply(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let r = Rotation::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert_vec_eq(r.apply(Vec3::X), Vec3::Y);
        assert_vec_eq(r.apply(Vec3::Y), -Vec3::X);
        assert_vec_eq(r.apply(Vec3::Z), Vec3::Z);
    }

    #[test]
    fn rotation_preserves_length_and_angles() {
        let r = Rotation::from_euler_zyz(0.3, 1.1, -2.0);
        let a = Vec3::new(1.0, -2.0, 0.5);
        let b = Vec3::new(-0.2, 4.0, 1.5);
        assert!(approx_eq(r.apply(a).norm(), a.norm(), 1e-9));
        assert!(approx_eq(r.apply(a).dot(r.apply(b)), a.dot(b), 1e-9));
    }

    #[test]
    fn matrix_and_quaternion_agree() {
        let q = Quaternion::from_euler_zyz(0.7, 0.4, 1.9);
        let r = Rotation::from_quaternion(q);
        let v = Vec3::new(0.3, -1.2, 2.2);
        assert_vec_eq(q.rotate(v), r.apply(v));
    }

    #[test]
    fn inverse_undoes_rotation() {
        let r = Rotation::from_euler_zyz(1.0, 0.5, -0.3);
        let v = Vec3::new(2.0, -1.0, 0.25);
        assert_vec_eq(r.inverse().apply(r.apply(v)), v);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let r1 = Rotation::from_axis_angle(Vec3::X, 0.4);
        let r2 = Rotation::from_axis_angle(Vec3::Y, -1.2);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let composed = r2.compose(&r1);
        assert_vec_eq(composed.apply(v), r2.apply(r1.apply(v)));
    }

    #[test]
    fn apply_about_pivot() {
        let r = Rotation::from_axis_angle(Vec3::Z, PI);
        let pivot = Vec3::new(1.0, 1.0, 0.0);
        // Point at pivot stays fixed.
        assert_vec_eq(r.apply_about(pivot, pivot), pivot);
        // Point at origin maps to (2, 2, 0) under a half-turn about the pivot.
        assert_vec_eq(r.apply_about(Vec3::ZERO, pivot), Vec3::new(2.0, 2.0, 0.0));
    }

    #[test]
    fn angle_between_rotations() {
        let r1 = Rotation::identity();
        let r2 = Rotation::from_axis_angle(Vec3::X, 0.5);
        assert!(approx_eq(r1.angle_to(&r2), 0.5, 1e-9));
        // Double-cover: q and -q are the same rotation.
        let q = Quaternion::from_axis_angle(Vec3::Y, 1.0);
        let negq = Quaternion::new(-q.w, -q.x, -q.y, -q.z);
        assert!(
            Rotation::from_quaternion(q).angle_to(&Rotation::from_quaternion(negq)).abs() < 1e-9
        );
    }

    #[test]
    fn apply_all_into_matches_apply() {
        let r = Rotation::from_euler_zyz(0.2, 0.9, 1.4);
        let pts: Vec<Vec3> =
            (0..10).map(|i| Vec3::new(i as Real, (i * 2) as Real, -(i as Real))).collect();
        let mut out = vec![Vec3::ZERO; pts.len()];
        r.apply_all_into(&pts, &mut out);
        for (o, &p) in out.iter().zip(&pts) {
            assert_vec_eq(*o, r.apply(p));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_all_into_length_mismatch_panics() {
        let r = Rotation::identity();
        let pts = vec![Vec3::ZERO; 3];
        let mut out = vec![Vec3::ZERO; 2];
        r.apply_all_into(&pts, &mut out);
    }

    #[test]
    fn normalization_of_degenerate_quaternion() {
        let q = Quaternion::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(q.normalized(), Quaternion::IDENTITY);
    }
}
