//! # ftmap-energy
//!
//! The CHARMM/ACE energy model and the energy-minimization engine of FTMap
//! (paper §II.B and §IV), plus the GPU restructuring the paper contributes.
//!
//! The total energy (Equation 3) is the sum of non-bonded terms — ACE continuum
//! electrostatics (self energies, Equations 5–6, and generalized-Born pairwise
//! interactions, Equation 7) and a smoothed Lennard-Jones 6-12 van der Waals term
//! (Equations 8–10) — and bonded terms (bond, angle, torsion, improper). The
//! non-bonded part is >99 % of the evaluation cost (Fig. 3), which is what the paper
//! moves to the GPU.
//!
//! Module map:
//!
//! * [`terms`] — the per-pair / per-atom energy and gradient functions.
//! * [`evaluator`] — the serial reference evaluator over neighbor lists (the structure
//!   of the original FTMap code, Fig. 7) and the per-term breakdown of Fig. 3(b).
//! * [`pairs`] — the restructured data layouts of §IV.B: the flat pairs-list, the
//!   forward/reverse split pairs-lists, and the static assignment table that maps
//!   pair-groups onto thread blocks.
//! * [`gpu`] — the three minimization kernels (self energies, pairwise + van der Waals,
//!   force update) on the device model, in each of the paper's three mapping schemes.
//! * [`minimize`] — the iterative minimizer (host or GPU evaluation path) and its
//!   per-phase profile.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod evaluator;
pub mod gpu;
pub mod minimize;
pub mod pairs;
pub mod terms;

pub use evaluator::{EnergyBreakdown, Evaluator};
pub use minimize::{MinimizationConfig, MinimizationResult, Minimizer};
pub use pairs::{AssignmentTable, PairsList, SplitPairsLists};
