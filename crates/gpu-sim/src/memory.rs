//! Memory-access accounting and the host↔device transfer model.
//!
//! The paper's GPU optimizations are, at bottom, memory-traffic optimizations: keep the
//! probe grid in constant memory, batch rotations so each (uncached) global-memory read
//! of a protein voxel is reused, accumulate partial energies in shared memory instead of
//! global memory, and avoid per-iteration host↔device transfers. The device model
//! therefore tracks each class of access separately; the cost model weights them with
//! the very different latencies of a Tesla-class part.

use serde::{Deserialize, Serialize};

/// Counters for one kernel execution (or one block; counters are additive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryCounters {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Reads from device global memory (in elements / words).
    pub global_reads: u64,
    /// Writes to device global memory (in elements / words).
    pub global_writes: u64,
    /// Accesses to per-SM shared memory.
    pub shared_accesses: u64,
    /// Reads from constant memory (cached broadcast reads).
    pub constant_reads: u64,
    /// `__syncthreads()`-style block barriers executed.
    pub barriers: u64,
}

impl MemoryCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total global-memory accesses (reads + writes).
    pub fn global_accesses(&self) -> u64 {
        self.global_reads + self.global_writes
    }

    /// Adds another counter set to this one (used to merge per-block counters).
    pub fn merge(&mut self, other: &MemoryCounters) {
        self.flops += other.flops;
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.shared_accesses += other.shared_accesses;
        self.constant_reads += other.constant_reads;
        self.barriers += other.barriers;
    }

    /// The merged sum of a collection of counter sets.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a MemoryCounters>) -> MemoryCounters {
        let mut total = MemoryCounters::new();
        for p in parts {
            total.merge(p);
        }
        total
    }

    /// Arithmetic intensity: flops per global-memory access (`f64::INFINITY` when the
    /// kernel touches no global memory). High intensity is what the rotation-batching
    /// optimization buys.
    pub fn arithmetic_intensity(&self) -> f64 {
        let accesses = self.global_accesses();
        if accesses == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / accesses as f64
        }
    }
}

/// A host↔device data transfer (PCIe in the paper's hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Bytes moved.
    pub bytes: u64,
    /// Direction of the transfer.
    pub direction: TransferDirection,
}

/// Direction of a host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferDirection {
    /// Host memory → device global/constant memory.
    HostToDevice,
    /// Device memory → host memory.
    DeviceToHost,
}

impl Transfer {
    /// An upload (host → device) of `bytes` bytes.
    pub fn upload(bytes: u64) -> Self {
        Transfer { bytes, direction: TransferDirection::HostToDevice }
    }

    /// A download (device → host) of `bytes` bytes.
    pub fn download(bytes: u64) -> Self {
        Transfer { bytes, direction: TransferDirection::DeviceToHost }
    }
}

/// A per-SM shared-memory arena.
///
/// Real shared memory is a small (16 KB on the C1060) banked SRAM private to a thread
/// block. In the model it is a plain `Vec<f64>` owned by the block context; the size
/// limit is enforced at launch so kernels cannot "cheat" by staging more data in shared
/// memory than the modeled device has.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    data: Vec<f64>,
}

impl SharedMemory {
    /// Allocates a shared-memory arena of `words` f64 words.
    pub fn new(words: usize) -> Self {
        SharedMemory { data: vec![0.0; words] }
    }

    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the arena has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the arena.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the arena.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Zeroes the arena (blocks reuse the arena across groups of work).
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_additively() {
        let a = MemoryCounters {
            flops: 10,
            global_reads: 4,
            global_writes: 2,
            shared_accesses: 7,
            constant_reads: 3,
            barriers: 1,
        };
        let b = MemoryCounters {
            flops: 5,
            global_reads: 1,
            global_writes: 1,
            shared_accesses: 2,
            constant_reads: 0,
            barriers: 1,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.flops, 15);
        assert_eq!(m.global_reads, 5);
        assert_eq!(m.global_writes, 3);
        assert_eq!(m.shared_accesses, 9);
        assert_eq!(m.constant_reads, 3);
        assert_eq!(m.barriers, 2);
        assert_eq!(m.global_accesses(), 8);
        let merged = MemoryCounters::merged([&a, &b]);
        assert_eq!(merged, m);
    }

    #[test]
    fn arithmetic_intensity() {
        let c =
            MemoryCounters { flops: 100, global_reads: 20, global_writes: 5, ..Default::default() };
        assert!((c.arithmetic_intensity() - 4.0).abs() < 1e-12);
        let pure_compute = MemoryCounters { flops: 10, ..Default::default() };
        assert!(pure_compute.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn transfer_constructors() {
        let up = Transfer::upload(1024);
        assert_eq!(up.direction, TransferDirection::HostToDevice);
        assert_eq!(up.bytes, 1024);
        let down = Transfer::download(8);
        assert_eq!(down.direction, TransferDirection::DeviceToHost);
    }

    #[test]
    fn shared_memory_arena() {
        let mut sm = SharedMemory::new(16);
        assert_eq!(sm.len(), 16);
        assert!(!sm.is_empty());
        sm.as_mut_slice()[3] = 2.5;
        assert_eq!(sm.as_slice()[3], 2.5);
        sm.clear();
        assert!(sm.as_slice().iter().all(|&v| v == 0.0));
        assert!(SharedMemory::new(0).is_empty());
    }
}
