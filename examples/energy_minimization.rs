//! Energy minimization of a protein–probe complex, on the host path and on the GPU
//! kernel path, showing the per-kernel modeled times that Table 2 compares.
//!
//! Run with: `cargo run --release --example energy_minimization`

use ftmap::prelude::*;

fn main() {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::medium(), &ff);
    let probe = Probe::new(ProbeType::Isopropanol, &ff);

    // Pose the probe at the first carved pocket.
    let mut posed = probe.clone();
    for atom in &mut posed.atoms {
        atom.position += protein.pocket_centers[0];
    }

    let device = Device::tesla_c1060();

    for (label, path) in
        [("host (serial FTMap)", EvaluationPath::Host), ("GPU kernels", EvaluationPath::Gpu)]
    {
        let mut complex = Complex::new(&protein, &posed);
        let config =
            MinimizationConfig { max_iterations: 40, path, ..MinimizationConfig::default() };
        let minimizer = Minimizer::new(ff.clone(), config);
        let result = minimizer.minimize(&mut complex, &device);

        println!("== {label} ==");
        println!(
            "  energy: {:.2} -> {:.2} kcal/mol in {} iterations (converged: {})",
            result.initial_energy, result.final_energy, result.iterations, result.converged
        );
        println!(
            "  evaluation fraction of iteration time: {:.1} % (paper Fig. 3(a): ~99 %)",
            100.0 * result.evaluation_fraction()
        );
        let (e, v, b) = result.breakdown.time_percentages();
        println!("  energy-evaluation split: electrostatics {e:.1} %, vdW {v:.1} %, bonded {b:.1} % (paper Fig. 3(b): 94.4 / 5.4 / 0.2)");
        if path == EvaluationPath::Gpu {
            let (self_t, pair_t, force_t) = result.modeled_kernel_times_s;
            let per_iter = 1e3 / result.iterations as f64;
            println!(
                "  modeled kernel times per iteration (ms): self energies {:.4}, pairwise+vdW {:.4}, force update {:.4}",
                self_t * per_iter,
                pair_t * per_iter,
                force_t * per_iter
            );
        }
        println!();
    }
}
