//! The bench-trend gate: diff freshly generated `BENCH_*.json` files against
//! the snapshots committed at `HEAD` and fail when any gated metric regresses
//! beyond the tolerance band.
//!
//! The bench matrix regenerates every `BENCH_*.json` in the working tree
//! (possibly at env-reduced scale); the committed versions are still
//! reachable through `git show HEAD:<file>`. Gated metrics are **ratios**
//! (speedups, skews, latency ratios) rather than absolute times, so they are
//! comparable across workload scales and host speeds; the 15% band absorbs
//! scale and scheduling noise on top of that.
//!
//! Exit status: 0 when every comparable metric is within tolerance, 1 on any
//! regression or unparsable file. A file or metric missing from `HEAD` (a
//! bench or gate added in the current change) is reported and skipped — its
//! snapshot becomes the baseline once merged.
//!
//! Known limit of the `HEAD` baseline: a change that both erodes a metric
//! *and* regenerates the committed snapshot compares against its own new
//! numbers and passes. That regeneration is a visible `BENCH_*.json` diff in
//! the change itself — reviewers treat an unexplained snapshot drop as the
//! regression signal — and each bench's absolute floor still backstops the
//! worst case. (Comparing against the merge base would close the loop, but
//! CI checkouts are shallow and push builds on `main` have no base ref.)
//!
//! Run with: `cargo run -p ftmap-bench --bin bench_trend`

use std::path::Path;
use std::process::Command;

/// Regression tolerance: a gated metric may move this fraction in the bad
/// direction before the gate trips.
const TOLERANCE: f64 = 0.15;

/// Which way a metric is supposed to move.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// Bigger is better (speedups, throughput ratios).
    HigherBetter,
    /// Smaller is better (skews, latency ratios).
    LowerBetter,
}

/// One gated metric: where to find it and which way it points.
struct GatedMetric {
    file: &'static str,
    name: &'static str,
    direction: Direction,
    /// Substring anchors searched left to right; the metric value is the
    /// first JSON number after the last anchor. The bench binaries emit these
    /// files themselves, so the anchors are stable by construction.
    anchors: &'static [&'static str],
}

/// Every CI-gated bench metric, one row per gate.
const GATED: &[GatedMetric] = &[
    GatedMetric {
        file: "BENCH_MULTIDEVICE.json",
        name: "multidevice 4-device speedup",
        direction: Direction::HigherBetter,
        anchors: &["\"gate\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_SERVE.json",
        name: "serve warm/cold throughput",
        direction: Direction::HigherBetter,
        anchors: &["\"gate\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_POSE_SHARD.json",
        name: "pose-shard hot-probe speedup",
        direction: Direction::HigherBetter,
        anchors: &["\"hot_probe_4_tesla\"", "\"speedup\":"],
    },
    GatedMetric {
        file: "BENCH_POSE_SHARD.json",
        name: "pose-shard mixed-pool skew",
        direction: Direction::LowerBetter,
        anchors: &["\"small_library_mixed_pool\"", "\"pose_block_skew\":"],
    },
    GatedMetric {
        file: "BENCH_SERVE_PIPELINE.json",
        name: "serve-pipeline throughput speedup",
        direction: Direction::HigherBetter,
        anchors: &["\"pipelined_speedup\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_SERVE_PIPELINE.json",
        name: "serve-pipeline interactive p95 ratio",
        direction: Direction::LowerBetter,
        anchors: &["\"interactive_p95\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_SERVE_PIPELINE.json",
        name: "serve-pipeline trace overhead ratio",
        direction: Direction::LowerBetter,
        anchors: &["\"noop_trace_overhead\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_SERVE_PIPELINE.json",
        name: "serve-pipeline flight-recorder overhead",
        direction: Direction::LowerBetter,
        anchors: &["\"flight_trace_overhead\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_SERVE_PIPELINE.json",
        name: "serve-pipeline admission miss ratio",
        direction: Direction::LowerBetter,
        anchors: &["\"admission_miss\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_SERVE_PIPELINE.json",
        name: "serve-pipeline tenant fairness ratio",
        direction: Direction::LowerBetter,
        anchors: &["\"tenant_fairness\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_BATCHED_FFT.json",
        name: "batched-FFT warm-receptor speedup",
        direction: Direction::HigherBetter,
        anchors: &["\"warm_speedup\"", "\"measured\":"],
    },
    GatedMetric {
        file: "BENCH_BATCHED_FFT.json",
        name: "batched-FFT download reduction",
        direction: Direction::HigherBetter,
        anchors: &["\"download_reduction\"", "\"measured\":"],
    },
];

/// Extracts the first JSON number after the last anchor, or `None`.
fn extract(content: &str, anchors: &[&str]) -> Option<f64> {
    let mut rest = content;
    for anchor in anchors {
        let pos = rest.find(anchor)?;
        rest = &rest[pos + anchor.len()..];
    }
    let rest = rest.trim_start_matches(|c: char| c.is_whitespace() || c == ':');
    let end = rest
        .char_indices()
        .find(|(_, c)| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The committed (`HEAD`) version of `file`, if it exists there.
fn committed(root: &Path, file: &str) -> Option<String> {
    let output = Command::new("git")
        .arg("show")
        .arg(format!("HEAD:{file}"))
        .current_dir(root)
        .output()
        .ok()?;
    if output.status.success() {
        String::from_utf8(output.stdout).ok()
    } else {
        None
    }
}

fn main() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut failures = 0usize;
    let mut compared = 0usize;
    println!(
        "bench_trend: gated metrics vs committed snapshots (tolerance {:.0}%)\n",
        100.0 * TOLERANCE
    );
    println!("{:<42}{:>12}{:>12}{:>10}  verdict", "metric", "baseline", "fresh", "change");
    for metric in GATED {
        let fresh_path = root.join(metric.file);
        let Ok(fresh_content) = std::fs::read_to_string(&fresh_path) else {
            println!(
                "{:<42}{:>12}{:>12}{:>10}  MISSING (not generated)",
                metric.name, "-", "-", "-"
            );
            failures += 1;
            continue;
        };
        let Some(fresh) = extract(&fresh_content, metric.anchors) else {
            println!("{:<42}{:>12}{:>12}{:>10}  UNPARSABLE (fresh)", metric.name, "-", "-", "-");
            failures += 1;
            continue;
        };
        let Some(base_content) = committed(root, metric.file) else {
            println!(
                "{:<42}{:>12}{:>12.4}{:>10}  SKIP (no snapshot at HEAD)",
                metric.name, "-", fresh, "-"
            );
            continue;
        };
        let Some(baseline) = extract(&base_content, metric.anchors) else {
            // The file exists at HEAD but the metric does not: a gate added
            // in the current change. Like a missing file, its snapshot
            // becomes the baseline once merged.
            println!(
                "{:<42}{:>12}{:>12.4}{:>10}  SKIP (no baseline metric at HEAD)",
                metric.name, "-", fresh, "-"
            );
            continue;
        };
        compared += 1;
        let change = if baseline.abs() > 1e-12 { fresh / baseline - 1.0 } else { 0.0 };
        let regressed = match metric.direction {
            Direction::HigherBetter => fresh < baseline * (1.0 - TOLERANCE),
            Direction::LowerBetter => fresh > baseline * (1.0 + TOLERANCE),
        };
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!(
            "{:<42}{:>12.4}{:>12.4}{:>+9.1}%  {verdict}",
            metric.name,
            baseline,
            fresh,
            100.0 * change
        );
        if regressed {
            failures += 1;
        }
    }
    println!("\n{compared} metric(s) compared, {failures} failure(s)");
    if failures > 0 {
        eprintln!(
            "bench_trend: gated metric(s) regressed beyond the {:.0}% band — \
             investigate before merging (or regenerate the snapshot if the \
             change is intentional and explained)",
            100.0 * TOLERANCE
        );
        std::process::exit(1);
    }
}
