//! Acceptance gates for request-centric tracing: for any traced pipelined
//! serve workload, every job's causal tree analyzes to a latency breakdown
//! whose segments sum **exactly** (1e-9) to that job's own modeled
//! admission-to-completion latency, and the critical path's execution span
//! never exceeds the carrying batch's makespan — with equality on the
//! single-chain workload (one job, one probe, fused dock+minimize), where
//! the request *is* the batch.

use ftmap::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn request(probes: &[ProbeType], tag: &str, class: LatencyClass) -> MappingRequest {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 2;
    config.conformations_per_probe = 1;
    MappingRequest::new(protein, ff, probes.to_vec(), config).with_tag(tag).with_class(class)
}

const PROBE_MENU: [ProbeType; 3] = [ProbeType::Ethanol, ProbeType::Acetone, ProbeType::Urea];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Exact attribution for any workload shape: pool size, scheduling
    /// granularity, job count and class mix.
    #[test]
    fn breakdown_segments_sum_to_each_jobs_latency(
        pool_size in 1usize..3,
        pose_block in 0usize..3,
        n_jobs in 1usize..5,
        class_mask in 0u8..4,
    ) {
        let recorder = Arc::new(Recorder::new());
        let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(pool_size)))
            .batch(BatchConfig { pose_block, max_batch_jobs: 2, ..BatchConfig::default() })
            .trace(Arc::clone(&recorder) as Arc<dyn TraceSink>)
            .build();
        let handles: Vec<JobHandle> = (0..n_jobs)
            .map(|i| {
                let class = if (class_mask >> (i % 2)) & 1 == 1 {
                    LatencyClass::Interactive
                } else {
                    LatencyClass::Bulk
                };
                let probes = &PROBE_MENU[..1 + i % PROBE_MENU.len()];
                service.submit(request(probes, &format!("j{i}"), class)).expect_admitted("admitted")
            })
            .collect();
        let reports: Vec<_> = handles.iter().map(|h| h.wait()).collect();
        service.shutdown();

        let trees = build_request_trees(&recorder.events());
        prop_assert_eq!(trees.len(), n_jobs);
        for report in &reports {
            let tree = trees
                .iter()
                .find(|t| t.trace_id == report.trace_id)
                .expect("tree for every job");
            let analysis = analyze(tree).expect("every pipelined tree analyzes");
            // The exact-sum invariant: segments telescope to the job's own
            // modeled latency, not merely approximate it.
            let sum: f64 = analysis.breakdown.segments().iter().map(|(_, v)| v).sum();
            prop_assert!(
                (sum - report.latency_modeled_s).abs() < 1e-9,
                "trace {}: breakdown sum {} != latency {}",
                report.trace_id, sum, report.latency_modeled_s
            );
            prop_assert!(
                (analysis.breakdown.total_s() - sum).abs() < 1e-12,
                "total_s must agree with the segment sum"
            );
            for (name, value) in analysis.breakdown.segments() {
                prop_assert!(value >= 0.0, "segment {} is negative: {}", name, value);
            }
            // The request's execution span is bounded by its batch's makespan:
            // a single request can never run longer than the batch carrying it.
            let span = analysis.path.execution_span_s();
            prop_assert!(span >= 0.0);
            prop_assert!(
                span <= report.batch.makespan_modeled_s + 1e-9,
                "trace {}: critical-path span {} exceeds batch makespan {}",
                report.trace_id, span, report.batch.makespan_modeled_s
            );
        }
    }
}

/// On a single-chain workload — one job, one probe, fused dock+minimize on a
/// one-device pool — the request is the whole batch, so the slowest request's
/// critical-path execution span must *reproduce* the batch makespan exactly.
#[test]
fn single_chain_critical_path_reproduces_the_batch_span() {
    let recorder = Arc::new(Recorder::new());
    let service = BatchMappingService::builder(Arc::new(DevicePool::tesla(1)))
        .batch(BatchConfig { pose_block: 0, ..BatchConfig::default() })
        .trace(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .build();
    let report = service
        .submit(request(&[ProbeType::Ethanol], "solo", LatencyClass::Bulk))
        .expect_admitted("ok")
        .wait();
    service.shutdown();

    let trees = build_request_trees(&recorder.events());
    assert_eq!(trees.len(), 1);
    let analyses = analyze_all(&trees);
    assert_eq!(analyses.len(), 1);
    let analysis = &analyses[0];
    assert_eq!(analysis.trace_id, report.trace_id);
    assert!(
        (analysis.path.execution_span_s() - report.batch.makespan_modeled_s).abs() < 1e-9,
        "single-chain critical path {} != batch makespan {}",
        analysis.path.execution_span_s(),
        report.batch.makespan_modeled_s
    );
    assert!(
        (analysis.breakdown.total_s() - report.latency_modeled_s).abs() < 1e-9,
        "and its breakdown still sums to the latency"
    );
    // The fused chain is admit -> batch-form -> dock -> resolve (no separate
    // minimize item), all on one device.
    let names: Vec<&str> = analysis.path.steps.iter().map(|s| s.name).collect();
    assert_eq!(names, ["admit", "batch-form", "dock", "resolve"]);
}
