//! Determinism of the pose-granularity schedule: `PipelineMode::Sharded` with
//! any positive `pose_block` must produce **bit-identical** output to
//! `PipelineMode::Accelerated` across pool sizes, block sizes, and pool
//! shapes. The dock-once / minimize-pose-block split changes where and when a
//! probe's retained poses are minimized — one probe's blocks spread over the
//! whole pool — but the shard queue re-assembles block results in
//! `(probe, pose)` order, so nothing downstream can tell the difference.

use ftmap::gpu::sched::DevicePool;
use ftmap::prelude::*;

fn workload() -> (SyntheticProtein, ForceField, ProbeLibrary) {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let library =
        ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Acetone, ProbeType::Benzene]);
    (protein, ff, library)
}

fn mapped(mode: PipelineMode) -> MappingResult {
    let (protein, ff, library) = workload();
    FtMapPipeline::new(protein, ff, FtMapConfig::small_test(mode)).map(&library)
}

/// Exact (bitwise) equality of everything downstream consumers read from a run.
fn assert_bit_identical(reference: &MappingResult, split: &MappingResult, label: &str) {
    assert_eq!(
        reference.conformations_minimized, split.conformations_minimized,
        "{label}: conformation counts diverged"
    );
    assert_eq!(
        reference.pose_centers.len(),
        split.pose_centers.len(),
        "{label}: pose-center counts diverged"
    );
    for (i, ((pa, ca), (pb, cb))) in
        reference.pose_centers.iter().zip(&split.pose_centers).enumerate()
    {
        assert_eq!(pa, pb, "{label}: probe order diverged at pose {i}");
        assert!(
            ca.x == cb.x && ca.y == cb.y && ca.z == cb.z,
            "{label}: pose {i} center {ca:?} != {cb:?}"
        );
    }
    assert_eq!(reference.sites.len(), split.sites.len(), "{label}: site counts diverged");
    for (a, b) in reference.sites.iter().zip(&split.sites) {
        assert_eq!(a.rank, b.rank, "{label}");
        let (ca, cb) = (a.cluster.center, b.cluster.center);
        assert!(
            ca.x == cb.x && ca.y == cb.y && ca.z == cb.z,
            "{label}: site {} center {ca:?} != {cb:?}",
            a.rank
        );
        assert_eq!(a.cluster.members.len(), b.cluster.members.len(), "{label}");
        for (ma, mb) in a.cluster.members.iter().zip(&b.cluster.members) {
            assert_eq!(ma.probe, mb.probe, "{label}");
            assert!(ma.energy == mb.energy, "{label}: {} != {}", ma.energy, mb.energy);
        }
    }
}

#[test]
fn pose_blocks_are_bit_identical_across_pools_and_block_sizes() {
    let reference = mapped(PipelineMode::Accelerated);
    assert!(!reference.sites.is_empty());
    // Block sizes straddle the interesting regimes: 1 (one block per pose —
    // maximal spread), 50 (the default), 2000 (bigger than any probe's pose
    // count — degenerates to one block per probe).
    for devices in [1usize, 2, 4] {
        for pose_block in [1usize, 50, 2000] {
            let split = mapped(PipelineMode::Sharded { devices, pose_block });
            let label = format!("{devices} devices, block {pose_block}");
            assert_bit_identical(&reference, &split, &label);
            // The load report accounts every dock item and every block.
            let loads = &split.profile.device_loads;
            assert_eq!(loads.len(), devices, "{label}");
            let dock_items: usize = loads.iter().map(|l| l.probes).sum();
            assert_eq!(dock_items, 3, "{label}: dock items");
            let blocks: usize = loads.iter().map(|l| l.pose_blocks).sum();
            let expected_blocks = if pose_block == 1 {
                split.conformations_minimized // one block per pose
            } else {
                3 // block ≥ pose count ⇒ one block per probe
            };
            assert_eq!(blocks, expected_blocks, "{label}: pose blocks");
            assert_eq!(split.profile.phase_makespans_modeled_s.len(), 2, "{label}");
        }
    }
}

#[test]
fn pose_blocks_are_deterministic_across_repeated_runs() {
    // Two runs may assign blocks to different devices; the assembled output
    // must not move.
    let a = mapped(PipelineMode::Sharded { devices: 4, pose_block: 1 });
    let b = mapped(PipelineMode::Sharded { devices: 4, pose_block: 1 });
    assert_bit_identical(&a, &b, "repeated pose-block run");
}

#[test]
fn mixed_pool_pose_blocks_produce_identical_sites() {
    // A heterogeneous Tesla + Xeon pool changes modeled timings and block
    // assignment, never results.
    let (protein, ff, library) = workload();
    let reference = FtMapPipeline::new(
        protein.clone(),
        ff.clone(),
        FtMapConfig::small_test(PipelineMode::Accelerated),
    )
    .map(&library);
    let config = FtMapConfig::small_test(PipelineMode::Sharded { devices: 3, pose_block: 1 });
    let mixed =
        FtMapPipeline::with_pool(protein, ff, config, DevicePool::mixed(2, 1)).map(&library);
    assert_bit_identical(&reference, &mixed, "mixed pool");
    let names: Vec<&str> = mixed.profile.device_loads.iter().map(|l| l.device.as_str()).collect();
    assert!(names.iter().any(|n| n.contains("Tesla")));
    assert!(names.iter().any(|n| n.contains("Xeon")));
}

#[test]
fn single_hot_probe_spreads_across_the_pool() {
    // The scenario the pose-granularity refactor exists for: ONE probe, many
    // retained poses, a 4-device pool. Probe granularity serializes everything
    // on one device; pose blocks must put every device to work and beat the
    // probe-granularity makespan.
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol]);
    let run = |pose_block: usize| {
        let mut config = FtMapConfig::small_test(PipelineMode::Sharded { devices: 4, pose_block });
        config.docking.n_rotations = 8;
        config.conformations_per_probe = 16;
        FtMapPipeline::new(protein.clone(), ff.clone(), config).map(&library)
    };
    let coarse = run(0);
    let fine = run(2);
    assert_bit_identical(&coarse, &fine, "hot probe");

    // Probe granularity: one device owns the probe, three idle.
    let coarse_active = coarse.profile.device_loads.iter().filter(|l| l.probes > 0).count();
    assert_eq!(coarse_active, 1);
    // Pose granularity: 16 poses in blocks of 2 = 8 blocks over 4 devices.
    let fine_active = fine.profile.device_loads.iter().filter(|l| l.pose_blocks > 0).count();
    assert!(fine_active >= 3, "only {fine_active} of 4 devices claimed blocks");
    assert!(
        fine.profile.makespan_modeled_s() < coarse.profile.makespan_modeled_s(),
        "pose blocks {} should beat the serialized probe {}",
        fine.profile.makespan_modeled_s(),
        coarse.profile.makespan_modeled_s()
    );
}
