// Fixture: seeded `no-panic-in-workers` violations, linted under a
// scheduler hot-path pseudo-path. Never compiled.
use std::sync::Mutex;

fn worker_body(state: &Mutex<Vec<u64>>) -> u64 {
    let guard = state.lock().unwrap(); // line 6: violation (.unwrap)
    let first = guard.first().expect("non-empty"); // line 7: violation (.expect)
    if *first == 0 {
        panic!("zero item"); // line 9: violation (panic!)
    }
    match *first {
        1 => todo!(), // line 12: violation (todo!)
        2 => unimplemented!(), // line 13: violation (unimplemented!)
        3 => unreachable!(), // line 14: violation (unreachable!)
        n => n,
    }
}

fn typed_body(state: &Mutex<Vec<u64>>) -> Option<u64> {
    // The sanctioned shapes: poison-tolerant helpers and typed options.
    let guard = gpu_sim::sync::locked(state);
    let value = guard.first().copied();
    // `assert!` with a message is the documented precondition style:
    assert!(!guard.is_empty(), "submit() admits no empty batches");
    // unwrap_or / unwrap_or_else are totally fine (not `.unwrap()`):
    let fallback = value.unwrap_or(0);
    let lazy = value.unwrap_or_else(|| 1);
    // Mentioning .unwrap() or panic! in a comment or string is fine.
    let doc = "call .unwrap() and panic! freely in prose";
    // lint-allow(no-panic-in-workers): the fixture's justified loud failure.
    let loud = value.expect("stranded batch — documented failure"); // line 31: suppressed
    Some(fallback + lazy + loud)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        r.expect("fine in tests");
    }
}
