//! CHARMM-like force-field parameter tables.
//!
//! FTMap's energy minimization evaluates a CHARMM potential with ACE continuum
//! electrostatics (paper Equations 3–10). The production code reads CHARMM parameter
//! files; this module provides a compact built-in parameter set covering the
//! [`AtomKind`]s used by the synthetic structures and the probe library. The values
//! are physically reasonable (charges sum to roughly neutral groups, LJ radii match
//! published CHARMM ranges) so that the relative cost and magnitude of the energy
//! terms — which is what the paper's evaluation measures — are realistic.

use crate::atom::{Atom, AtomKind};
use ftmap_math::{Real, Vec3};
use serde::{Deserialize, Serialize};

/// Non-bonded parameters for one atom kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonbondedParams {
    /// Partial charge (elementary charges).
    pub charge: Real,
    /// Lennard-Jones well depth `eps` (kcal/mol).
    pub lj_eps: Real,
    /// Lennard-Jones minimum-energy distance `rm` (Å).
    pub lj_rmin: Real,
    /// ACE solute volume `V~` (Å³).
    pub ace_volume: Real,
    /// Intrinsic Born radius (Å).
    pub born_radius: Real,
}

/// Bonded parameters: harmonic bond.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BondParams {
    /// Force constant (kcal/mol/Å²).
    pub k: Real,
    /// Equilibrium length (Å).
    pub r0: Real,
}

/// Bonded parameters: harmonic angle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AngleParams {
    /// Force constant (kcal/mol/rad²).
    pub k: Real,
    /// Equilibrium angle (radians).
    pub theta0: Real,
}

/// Bonded parameters: cosine torsion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TorsionParams {
    /// Barrier height (kcal/mol).
    pub k: Real,
    /// Multiplicity.
    pub n: u32,
    /// Phase (radians).
    pub delta: Real,
}

/// Bonded parameters: harmonic improper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImproperParams {
    /// Force constant (kcal/mol/rad²).
    pub k: Real,
    /// Equilibrium improper angle (radians).
    pub psi0: Real,
}

/// The complete force field: per-kind non-bonded parameters, generic bonded parameters
/// and the global constants of the ACE electrostatics and smoothed-LJ models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForceField {
    /// Solvent dielectric constant `eps_s` (water ≈ 78.5), Equation (5).
    pub solvent_dielectric: Real,
    /// Solute (interior) dielectric constant, Equation (7) prefactors.
    pub solute_dielectric: Real,
    /// `tau = 1/eps_solute - 1/eps_solvent`, the GB/ACE screening factor.
    pub tau: Real,
    /// Non-bonded cutoff distance `r_c` in Å (Equation 8).
    pub cutoff: Real,
    /// ACE Gaussian width scaling `sigma_ik` base parameter.
    pub ace_sigma: Real,
    /// ACE `mu_ik` atom-atom parameter baseline.
    pub ace_mu: Real,
    /// Default bond parameters (single generic class; adequate for synthetic topologies).
    pub bond: BondParams,
    /// Default angle parameters.
    pub angle: AngleParams,
    /// Default torsion parameters.
    pub torsion: TorsionParams,
    /// Default improper parameters.
    pub improper: ImproperParams,
}

impl ForceField {
    /// The built-in CHARMM-like parameter set used across the workspace.
    pub fn charmm_like() -> Self {
        let solute = 1.0;
        let solvent = 78.5;
        ForceField {
            solvent_dielectric: solvent,
            solute_dielectric: solute,
            tau: 1.0 / solute - 1.0 / solvent,
            cutoff: 9.0,
            ace_sigma: 1.2,
            ace_mu: 0.9,
            bond: BondParams { k: 300.0, r0: 1.45 },
            angle: AngleParams { k: 50.0, theta0: 109.5_f64.to_radians() },
            torsion: TorsionParams { k: 1.4, n: 3, delta: 0.0 },
            improper: ImproperParams { k: 40.0, psi0: 0.0 },
        }
    }

    /// Non-bonded parameters for an atom kind.
    pub fn nonbonded(&self, kind: AtomKind) -> NonbondedParams {
        // Values chosen to sit inside published CHARMM ranges for the corresponding
        // environments; the probe kinds carry slightly larger charges so probe-protein
        // electrostatics dominate the non-bonded budget as in Fig. 3(b).
        match kind {
            AtomKind::BackboneN => NonbondedParams {
                charge: -0.47,
                lj_eps: 0.20,
                lj_rmin: 1.85,
                ace_volume: 13.0,
                born_radius: 1.75,
            },
            AtomKind::BackboneCA => NonbondedParams {
                charge: 0.07,
                lj_eps: 0.11,
                lj_rmin: 2.27,
                ace_volume: 22.0,
                born_radius: 2.10,
            },
            AtomKind::BackboneC => NonbondedParams {
                charge: 0.51,
                lj_eps: 0.11,
                lj_rmin: 2.00,
                ace_volume: 15.0,
                born_radius: 1.95,
            },
            AtomKind::BackboneO => NonbondedParams {
                charge: -0.51,
                lj_eps: 0.12,
                lj_rmin: 1.70,
                ace_volume: 16.0,
                born_radius: 1.60,
            },
            AtomKind::AliphaticC => NonbondedParams {
                charge: -0.09,
                lj_eps: 0.08,
                lj_rmin: 2.17,
                ace_volume: 24.0,
                born_radius: 2.15,
            },
            AtomKind::AromaticC => NonbondedParams {
                charge: -0.11,
                lj_eps: 0.07,
                lj_rmin: 1.99,
                ace_volume: 20.0,
                born_radius: 2.00,
            },
            AtomKind::PolarO => NonbondedParams {
                charge: -0.66,
                lj_eps: 0.15,
                lj_rmin: 1.77,
                ace_volume: 17.0,
                born_radius: 1.55,
            },
            AtomKind::PolarN => NonbondedParams {
                charge: -0.62,
                lj_eps: 0.20,
                lj_rmin: 1.85,
                ace_volume: 14.0,
                born_radius: 1.70,
            },
            AtomKind::Sulfur => NonbondedParams {
                charge: -0.23,
                lj_eps: 0.45,
                lj_rmin: 2.00,
                ace_volume: 30.0,
                born_radius: 1.90,
            },
            AtomKind::ApolarH => NonbondedParams {
                charge: 0.09,
                lj_eps: 0.03,
                lj_rmin: 1.32,
                ace_volume: 6.0,
                born_radius: 1.20,
            },
            AtomKind::PolarH => NonbondedParams {
                charge: 0.31,
                lj_eps: 0.05,
                lj_rmin: 0.90,
                ace_volume: 4.0,
                born_radius: 1.00,
            },
            AtomKind::ProbeCarbonyl => NonbondedParams {
                charge: 0.55,
                lj_eps: 0.11,
                lj_rmin: 2.00,
                ace_volume: 16.0,
                born_radius: 1.95,
            },
            AtomKind::ProbeHydroxylO => NonbondedParams {
                charge: -0.65,
                lj_eps: 0.15,
                lj_rmin: 1.77,
                ace_volume: 18.0,
                born_radius: 1.55,
            },
            AtomKind::ProbeMethylC => NonbondedParams {
                charge: -0.18,
                lj_eps: 0.08,
                lj_rmin: 2.06,
                ace_volume: 25.0,
                born_radius: 2.10,
            },
            AtomKind::ProbeN => NonbondedParams {
                charge: -0.60,
                lj_eps: 0.20,
                lj_rmin: 1.85,
                ace_volume: 14.0,
                born_radius: 1.70,
            },
        }
    }

    /// Builds an [`Atom`] of the given kind at `position`, resolving all parameters.
    pub fn make_atom(&self, id: usize, kind: AtomKind, position: Vec3, is_probe: bool) -> Atom {
        let p = self.nonbonded(kind);
        Atom {
            id,
            kind,
            position,
            charge: p.charge,
            lj_eps: p.lj_eps,
            lj_rmin: p.lj_rmin,
            ace_volume: p.ace_volume,
            born_radius: p.born_radius,
            is_probe,
        }
    }

    /// Combined Lennard-Jones well depth, Equation (9): `eps_ik = sqrt(eps_i * eps_k)`.
    #[inline]
    pub fn combine_eps(eps_i: Real, eps_k: Real) -> Real {
        (eps_i * eps_k).sqrt()
    }

    /// Combined Lennard-Jones distance, Equation (10): `rm_ik = (rm_i + rm_k) / 2`.
    #[inline]
    pub fn combine_rmin(rm_i: Real, rm_k: Real) -> Real {
        0.5 * (rm_i + rm_k)
    }
}

impl Default for ForceField {
    fn default() -> Self {
        ForceField::charmm_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmap_math::approx_eq;

    #[test]
    fn tau_consistent_with_dielectrics() {
        let ff = ForceField::charmm_like();
        assert!(approx_eq(ff.tau, 1.0 / ff.solute_dielectric - 1.0 / ff.solvent_dielectric, 1e-12));
        assert!(ff.tau > 0.0 && ff.tau < 1.0);
    }

    #[test]
    fn all_kinds_have_physical_parameters() {
        let ff = ForceField::charmm_like();
        for kind in AtomKind::ALL {
            let p = ff.nonbonded(kind);
            assert!(p.lj_eps > 0.0, "{kind:?}");
            assert!(p.lj_rmin > 0.0, "{kind:?}");
            assert!(p.ace_volume > 0.0, "{kind:?}");
            assert!(p.born_radius > 0.0, "{kind:?}");
            assert!(p.charge.abs() < 1.0, "{kind:?} charge should be a partial charge");
        }
    }

    #[test]
    fn hydrogens_are_small() {
        let ff = ForceField::charmm_like();
        let h = ff.nonbonded(AtomKind::ApolarH);
        let c = ff.nonbonded(AtomKind::AliphaticC);
        assert!(h.lj_rmin < c.lj_rmin);
        assert!(h.ace_volume < c.ace_volume);
    }

    #[test]
    fn make_atom_resolves_parameters() {
        let ff = ForceField::charmm_like();
        let a = ff.make_atom(7, AtomKind::PolarO, Vec3::new(1.0, 2.0, 3.0), true);
        assert_eq!(a.id, 7);
        assert!(a.is_probe);
        assert_eq!(a.charge, ff.nonbonded(AtomKind::PolarO).charge);
        assert_eq!(a.position, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn lorentz_berthelot_combination_rules() {
        assert!(approx_eq(ForceField::combine_eps(0.04, 0.09), 0.06, 1e-12));
        assert!(approx_eq(ForceField::combine_rmin(2.0, 3.0), 2.5, 1e-12));
        // Combining identical parameters returns them unchanged.
        assert!(approx_eq(ForceField::combine_eps(0.2, 0.2), 0.2, 1e-12));
        assert!(approx_eq(ForceField::combine_rmin(1.8, 1.8), 1.8, 1e-12));
    }

    #[test]
    fn bonded_parameters_reasonable() {
        let ff = ForceField::charmm_like();
        assert!(ff.bond.k > 0.0 && ff.bond.r0 > 1.0 && ff.bond.r0 < 2.0);
        assert!(ff.angle.k > 0.0 && ff.angle.theta0 > 1.5 && ff.angle.theta0 < 2.2);
        assert!(ff.torsion.n >= 1);
        assert!(ff.improper.k > 0.0);
        assert!(ff.cutoff > 5.0);
    }
}
