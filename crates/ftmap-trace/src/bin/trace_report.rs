//! Per-request latency reporter over an exported `trace.json`.
//!
//! Re-imports a Chrome trace-event document (written by
//! [`ftmap_trace::export_chrome_trace`] or the `_with_flows` variant),
//! reassembles the per-request causal trees from the trace-id tags, runs the
//! critical-path analysis, and prints the top-N slowest requests with their
//! exact latency breakdowns. CI runs this after `examples/trace_mapping.rs`
//! (following `trace_check`) so the round-trip — export → import → tree →
//! breakdown — stays validated on a real workload.
//!
//! Usage: `cargo run -p ftmap-trace --bin trace_report -- trace.json [top_n]`
//!
//! Exit status 0 when every analyzed request's breakdown segments sum to its
//! recorded latency within 1e-9 (the exact-attribution invariant); 1 on any
//! violation, an unreadable file, or a trace with no analyzable requests.

use ftmap_trace::{analyze_all, build_request_trees, import_chrome_trace};

/// Exact-attribution tolerance: breakdown segments must telescope to the
/// stamped latency within this (mirrors `tests/trace_breakdown.rs`).
const SUM_TOLERANCE: f64 = 1e-9;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "trace.json".to_string());
    let top_n: usize = args.next().and_then(|n| n.parse().ok()).unwrap_or(10);

    let content = match std::fs::read_to_string(&path) {
        Ok(content) => content,
        Err(err) => {
            eprintln!("trace_report: cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    let events = match import_chrome_trace(&content) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace_report: {path}: {err}");
            std::process::exit(1);
        }
    };
    let trees = build_request_trees(&events);
    let analyses = analyze_all(&trees);
    if analyses.is_empty() {
        eprintln!(
            "trace_report: {path}: no analyzable requests ({} events, {} trace ids) — \
             was the trace recorded through the pipelined service with tracing enabled?",
            events.len(),
            trees.len()
        );
        std::process::exit(1);
    }

    println!(
        "trace_report: {path} — {} requests analyzed ({} events), slowest first",
        analyses.len(),
        events.len()
    );
    let mut violations = 0usize;
    for (rank, analysis) in analyses.iter().enumerate() {
        let sum = analysis.breakdown.total_s();
        let drift = (sum - analysis.latency_s).abs();
        if drift > SUM_TOLERANCE {
            violations += 1;
        }
        if rank >= top_n && drift <= SUM_TOLERANCE {
            continue; // still audit every request, print only the top N
        }
        println!(
            "\n#{rank} trace {} ({}, tenant {}) latency {:.6}s critical-path span {:.6}s{}",
            analysis.trace_id,
            analysis.class.unwrap_or("?"),
            analysis.tenant.as_deref().unwrap_or("-"),
            analysis.latency_s,
            analysis.path.execution_span_s(),
            if drift > SUM_TOLERANCE { "  [SUM VIOLATION]" } else { "" },
        );
        for (name, value) in analysis.breakdown.segments() {
            if value > 0.0 {
                println!(
                    "    {name:<22} {value:>12.6}s  {:5.1}%",
                    if analysis.latency_s > 0.0 { 100.0 * value / analysis.latency_s } else { 0.0 }
                );
            }
        }
        let steps: Vec<String> =
            analysis.path.steps.iter().map(|s| format!("{}@{:.6}", s.name, s.at_s)).collect();
        println!("    path: {}", steps.join(" -> "));
    }
    if violations > 0 {
        eprintln!(
            "trace_report: {path}: {violations} request(s) whose breakdown does not sum to \
             the recorded latency within {SUM_TOLERANCE:e}"
        );
        std::process::exit(1);
    }
    println!(
        "\ntrace_report: ok — every breakdown sums to its request's latency within {SUM_TOLERANCE:e}"
    );
}
