//! Scoring and filtering (paper §III.B).
//!
//! After the correlations, three small steps produce the retained poses:
//!
//! 1. **accumulation** — the 4–18 desolvation component results are summed into a single
//!    desolvation grid (the "Accumulation of pairwise potential terms" row of Table 1);
//! 2. **scoring** — the weighted sum of Equation (2) combines shape, electrostatic and
//!    desolvation results into one score per translation;
//! 3. **filtering** — the best (most negative) scores are selected, excluding the
//!    neighbourhood of each selected score so a single deep pocket does not claim every
//!    retained pose (Fig. 5).

use crate::grids::{term_kinds, term_weight, EnergyWeights, TermKind};
use crate::pose::Pose;
use ftmap_math::{Grid3, Real};

/// Sums the desolvation component results into a single grid.
///
/// `term_results` must be ordered as [`term_kinds`]: the desolvation components start at
/// index 4.
pub fn accumulate_desolvation(term_results: &[Grid3<Real>], n_desolv: usize) -> Grid3<Real> {
    assert_eq!(term_results.len(), 4 + n_desolv, "term result count must be 4 + n_desolv");
    let (nx, ny, nz) = term_results[0].dims();
    let mut total = Grid3::new(nx, ny, nz);
    for grid in &term_results[4..] {
        for (dst, src) in total.as_mut_slice().iter_mut().zip(grid.as_slice()) {
            *dst += *src;
        }
    }
    total
}

/// Computes the weighted pose-score grid of Equation (2) from the per-component
/// correlation results and the accumulated desolvation grid.
pub fn score_grid(
    term_results: &[Grid3<Real>],
    desolv_total: &Grid3<Real>,
    weights: &EnergyWeights,
    n_desolv: usize,
) -> Grid3<Real> {
    let kinds = term_kinds(n_desolv);
    assert_eq!(term_results.len(), kinds.len(), "unexpected term count");
    let (nx, ny, nz) = term_results[0].dims();
    let mut scores = Grid3::new(nx, ny, nz);

    // Shape and electrostatic components are weighted individually; the desolvation
    // components enter through the pre-accumulated total with the desolvation weight.
    for (kind, grid) in kinds.iter().zip(term_results) {
        let w = match kind {
            TermKind::Desolvation(_) => continue,
            other => term_weight(*other, weights, n_desolv),
        };
        for (dst, src) in scores.as_mut_slice().iter_mut().zip(grid.as_slice()) {
            *dst += w * *src;
        }
    }
    for (dst, src) in scores.as_mut_slice().iter_mut().zip(desolv_total.as_slice()) {
        *dst += weights.desolv * *src;
    }
    scores
}

/// Selects the `k` best (most negative) scores from the score grid, excluding all voxels
/// within `exclusion_radius` (in voxels, Chebyshev distance) of an already-selected
/// score. Returns poses tagged with `rotation_index`.
pub fn filter_top_k(
    scores: &Grid3<Real>,
    k: usize,
    exclusion_radius: usize,
    rotation_index: usize,
) -> Vec<Pose> {
    let (nx, ny, nz) = scores.dims();
    let mut excluded = vec![false; scores.len()];
    let mut selected = Vec::with_capacity(k);

    for _ in 0..k {
        // Find the best non-excluded score.
        let mut best: Option<(usize, Real)> = None;
        for (idx, &v) in scores.as_slice().iter().enumerate() {
            if excluded[idx] {
                continue;
            }
            match best {
                None => best = Some((idx, v)),
                Some((_, bv)) if v < bv => best = Some((idx, v)),
                _ => {}
            }
        }
        let Some((best_idx, best_score)) = best else {
            break;
        };
        let (bx, by, bz) = scores.coords(best_idx);
        selected.push(Pose { rotation_index, translation: (bx, by, bz), score: best_score });

        // Mark the neighbourhood (cyclically, matching the correlation convention).
        let r = exclusion_radius as isize;
        for dx in -r..=r {
            for dy in -r..=r {
                for dz in -r..=r {
                    let x = (bx as isize + dx).rem_euclid(nx as isize) as usize;
                    let y = (by as isize + dy).rem_euclid(ny as isize) as usize;
                    let z = (bz as isize + dz).rem_euclid(nz as isize) as usize;
                    excluded[scores.index(x, y, z)] = true;
                }
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with(values: &[((usize, usize, usize), Real)], n: usize) -> Grid3<Real> {
        let mut g = Grid3::cubic(n);
        for ((x, y, z), v) in values {
            *g.at_mut(*x, *y, *z) = *v;
        }
        g
    }

    #[test]
    fn accumulate_sums_only_desolvation_terms() {
        let n = 4;
        let n_desolv = 3;
        let mut terms: Vec<Grid3<Real>> = (0..4 + n_desolv).map(|_| Grid3::cubic(n)).collect();
        // Non-desolvation terms should be ignored.
        *terms[0].at_mut(0, 0, 0) = 100.0;
        *terms[4].at_mut(1, 1, 1) = 1.0;
        *terms[5].at_mut(1, 1, 1) = 2.0;
        *terms[6].at_mut(2, 2, 2) = 5.0;
        let total = accumulate_desolvation(&terms, n_desolv);
        assert_eq!(*total.at(1, 1, 1), 3.0);
        assert_eq!(*total.at(2, 2, 2), 5.0);
        assert_eq!(*total.at(0, 0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn accumulate_rejects_wrong_count() {
        let terms: Vec<Grid3<Real>> = (0..5).map(|_| Grid3::cubic(2)).collect();
        let _ = accumulate_desolvation(&terms, 4);
    }

    #[test]
    fn score_grid_applies_weights() {
        let n = 2;
        let n_desolv = 1;
        let mut terms: Vec<Grid3<Real>> = (0..5).map(|_| Grid3::cubic(n)).collect();
        *terms[0].at_mut(0, 0, 0) = 2.0; // shape core
        *terms[1].at_mut(0, 0, 0) = 3.0; // shape attraction
        *terms[2].at_mut(0, 0, 0) = 1.0; // coulomb
        *terms[3].at_mut(0, 0, 0) = 1.0; // screened
        *terms[4].at_mut(0, 0, 0) = 4.0; // desolvation
        let desolv = accumulate_desolvation(&terms, n_desolv);
        let weights = EnergyWeights { shape_core: 1.0, shape_attr: -1.0, elec: 0.5, desolv: 0.25 };
        let scores = score_grid(&terms, &desolv, &weights, n_desolv);
        // 1*2 + (-1)*3 + 0.5*1 + 0.5*1 + 0.25*4 = 1.0
        assert!((*scores.at(0, 0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(*scores.at(1, 1, 1), 0.0);
    }

    #[test]
    fn filter_selects_most_negative_scores() {
        let scores = grid_with(&[((1, 1, 1), -10.0), ((6, 6, 6), -8.0), ((3, 3, 3), -9.0)], 8);
        let poses = filter_top_k(&scores, 2, 1, 7);
        assert_eq!(poses.len(), 2);
        assert_eq!(poses[0].translation, (1, 1, 1));
        assert_eq!(poses[0].score, -10.0);
        assert_eq!(poses[0].rotation_index, 7);
        // (3,3,3) is outside the exclusion radius of (1,1,1), and better than (6,6,6).
        assert_eq!(poses[1].translation, (3, 3, 3));
    }

    #[test]
    fn filter_excludes_neighbourhood_of_selected_scores() {
        // Second-best score is adjacent to the best; it must be skipped in favour of a
        // farther, worse score — the whole point of the exclusion (Fig. 5).
        let scores = grid_with(&[((4, 4, 4), -10.0), ((4, 4, 5), -9.9), ((0, 0, 0), -1.0)], 8);
        let poses = filter_top_k(&scores, 2, 2, 0);
        assert_eq!(poses.len(), 2);
        assert_eq!(poses[0].translation, (4, 4, 4));
        assert_eq!(poses[1].translation, (0, 0, 0));
    }

    #[test]
    fn filter_exclusion_wraps_cyclically() {
        let scores = grid_with(&[((0, 0, 0), -10.0), ((7, 7, 7), -9.0), ((4, 4, 4), -5.0)], 8);
        // (7,7,7) is a cyclic neighbour of (0,0,0) at Chebyshev distance 1.
        let poses = filter_top_k(&scores, 2, 1, 0);
        assert_eq!(poses[1].translation, (4, 4, 4));
    }

    #[test]
    fn filter_stops_when_grid_exhausted() {
        let scores = grid_with(&[((0, 0, 0), -1.0)], 2);
        // Exclusion radius 2 covers the whole 2³ grid after the first pick.
        let poses = filter_top_k(&scores, 4, 2, 0);
        assert_eq!(poses.len(), 1);
    }

    #[test]
    fn filter_zero_k_returns_empty() {
        let scores = grid_with(&[((0, 0, 0), -1.0)], 4);
        assert!(filter_top_k(&scores, 0, 1, 0).is_empty());
    }
}
