//! Mapping-run profiles: the phase breakdown of Fig. 2(a), the overall speedup of
//! §V.C, and — for sharded runs — the per-device load report of the multi-device
//! scheduler.

use gpu_sim::sched::{DeviceShardReport, PhasedDeviceReport};
use gpu_sim::StreamStats;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// What one pooled device contributed to a sharded mapping run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceLoad {
    /// Human-readable device name.
    pub device: String,
    /// Number of probes this device serviced (dock items under pose-block
    /// scheduling; fused dock+minimize items under probe granularity).
    pub probes: usize,
    /// Number of minimization pose blocks this device serviced (0 under
    /// probe-granularity scheduling, where minimization rides the probe item).
    pub pose_blocks: usize,
    /// Modeled busy seconds with stream copy/compute overlap applied (the
    /// device's overlapped stream makespan; both phases summed for a
    /// pose-block schedule).
    pub busy_modeled_s: f64,
    /// Modeled busy seconds with every transfer serialized (no overlap).
    pub serialized_modeled_s: f64,
    /// Modeled transfer seconds hidden under kernel execution on this device.
    pub overlap_saved_s: f64,
}

impl From<&DeviceShardReport> for DeviceLoad {
    fn from(report: &DeviceShardReport) -> Self {
        DeviceLoad {
            device: report.device.clone(),
            probes: report.items(),
            pose_blocks: 0,
            busy_modeled_s: report.busy_s(),
            serialized_modeled_s: report.stream.serialized_s,
            overlap_saved_s: report.stream.savings_s(),
        }
    }
}

impl From<&PhasedDeviceReport> for DeviceLoad {
    /// A device's load under the phased (barrier-free) scheduler: dock items
    /// count as probes, minimize items as pose blocks, and both phase streams
    /// contribute busy/serialized/overlap seconds.
    fn from(report: &PhasedDeviceReport) -> Self {
        DeviceLoad {
            device: report.device.clone(),
            probes: report.dock.ops,
            pose_blocks: report.minimize.ops,
            busy_modeled_s: report.busy_s(),
            serialized_modeled_s: report.dock.serialized_s + report.minimize.serialized_s,
            overlap_saved_s: report.dock.savings_s() + report.minimize.savings_s(),
        }
    }
}

impl DeviceLoad {
    /// Folds one device's dock-phase and minimize-phase shard reports (the two
    /// barrier-separated executions of a pose-block schedule) into its load.
    pub fn from_phases(dock: &DeviceShardReport, minimize: &DeviceShardReport) -> Self {
        DeviceLoad {
            device: dock.device.clone(),
            probes: dock.items(),
            pose_blocks: minimize.items(),
            busy_modeled_s: dock.busy_s() + minimize.busy_s(),
            serialized_modeled_s: dock.stream.serialized_s + minimize.stream.serialized_s,
            overlap_saved_s: dock.stream.savings_s() + minimize.stream.savings_s(),
        }
    }
}

/// Pool-wide stream totals for one scheduling phase of a sharded or phased
/// run: how many modeled seconds the phase spent in kernels vs transfers,
/// and how many transfer seconds copy/compute overlap hid.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseStream {
    /// Phase name (`"dock"`, `"minimize"`, or `"fused"` for whole-probe
    /// granularity where both ride one item).
    pub phase: String,
    /// Items the phase executed across the pool.
    pub ops: usize,
    /// Modeled kernel seconds, summed over devices.
    pub kernel_modeled_s: f64,
    /// Modeled transfer seconds (uploads + downloads), summed over devices.
    pub transfer_modeled_s: f64,
    /// Modeled transfer seconds hidden under kernels by stream overlap.
    pub overlap_saved_s: f64,
}

impl PhaseStream {
    /// Folds the per-device stream summaries of one phase into its pool-wide
    /// totals.
    pub fn from_streams<'a>(phase: &str, streams: impl Iterator<Item = &'a StreamStats>) -> Self {
        let mut out = PhaseStream { phase: phase.to_string(), ..PhaseStream::default() };
        for s in streams {
            out.ops += s.ops;
            out.kernel_modeled_s += s.kernel_s;
            out.transfer_modeled_s += s.upload_s + s.download_s;
            out.overlap_saved_s += s.savings_s();
        }
        out
    }
}

/// Time spent in the two phases of a mapping run (per probe), both as measured
//  wall-clock on this machine and as modeled device/host time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MappingProfile {
    /// Rigid-docking wall-clock seconds.
    pub docking_wall_s: f64,
    /// Energy-minimization wall-clock seconds.
    pub minimization_wall_s: f64,
    /// Rigid-docking modeled seconds (Xeon core for the serial pipeline, device model
    /// for the accelerated pipeline).
    pub docking_modeled_s: f64,
    /// Energy-minimization modeled seconds.
    pub minimization_modeled_s: f64,
    /// Per-device loads of a sharded run, in pool order (empty for the
    /// single-device pipeline modes).
    pub device_loads: Vec<DeviceLoad>,
    /// Modeled makespans of the barrier-separated scheduling phases of a
    /// pose-block run (`[dock, minimize]`), in execution order. Empty for
    /// single-phase schedules (single-device and probe-granularity runs).
    pub phase_makespans_modeled_s: Vec<f64>,
    /// Modeled seconds the phased (barrier-free) scheduler saved versus the
    /// two-phase-barrier schedule of the same items — how much dock/minimize
    /// phase overlap was worth. 0 for barriered and single-device runs.
    pub pipeline_overlap_saved_s: f64,
    /// Pool-wide per-phase stream totals (kernel/transfer/overlap split), in
    /// execution order. Attached once by sharded and phased runs; empty for
    /// single-device runs, where [`MappingProfile::phase_table`] falls back
    /// to the per-phase modeled kernel seconds.
    pub phase_streams: Vec<PhaseStream>,
}

impl MappingProfile {
    /// Total wall-clock seconds.
    pub fn total_wall_s(&self) -> f64 {
        self.docking_wall_s + self.minimization_wall_s
    }

    /// Total modeled seconds.
    pub fn total_modeled_s(&self) -> f64 {
        self.docking_modeled_s + self.minimization_modeled_s
    }

    /// Percentage of wall time in (docking, minimization) — the Fig. 2(a) split
    /// (paper: ~7 % / ~93 %).
    pub fn wall_percentages(&self) -> (f64, f64) {
        let t = self.total_wall_s();
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        (100.0 * self.docking_wall_s / t, 100.0 * self.minimization_wall_s / t)
    }

    /// Percentage of modeled time in (docking, minimization).
    pub fn modeled_percentages(&self) -> (f64, f64) {
        let t = self.total_modeled_s();
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        (100.0 * self.docking_modeled_s / t, 100.0 * self.minimization_modeled_s / t)
    }

    /// Adds another profile (e.g. accumulate over probes). Per-device loads are
    /// concatenated — per-probe profiles carry none; the pipeline attaches the
    /// pool's loads once, after the sharded run completes.
    pub fn merge(&mut self, other: &MappingProfile) {
        self.docking_wall_s += other.docking_wall_s;
        self.minimization_wall_s += other.minimization_wall_s;
        self.docking_modeled_s += other.docking_modeled_s;
        self.minimization_modeled_s += other.minimization_modeled_s;
        self.device_loads.extend(other.device_loads.iter().cloned());
        self.phase_makespans_modeled_s.extend(other.phase_makespans_modeled_s.iter().copied());
        self.pipeline_overlap_saved_s += other.pipeline_overlap_saved_s;
        self.phase_streams.extend(other.phase_streams.iter().cloned());
    }

    // --- Multi-device views (meaningful when `device_loads` is populated).
    // --- The load-balance math delegates to `gpu_sim::sched::shard` so the
    // --- profile's report always agrees with the scheduler's own.

    /// The per-device busy times, in pool order.
    fn busy(&self) -> Vec<f64> {
        self.device_loads.iter().map(|l| l.busy_modeled_s).collect()
    }

    /// Modeled makespan of the run. For a pose-block schedule this is the
    /// **sum of the phase makespans** — the dock and minimize executions are
    /// barrier-separated (every block needs its probe's dock result), so the
    /// pool is only as fast as each phase's busiest device in turn. For a
    /// single-phase sharded run it is the busiest device's overlapped stream
    /// time, and for single-device runs the phase-sum (one device does
    /// everything back-to-back). This is the number multi-device scaling is
    /// measured on.
    pub fn makespan_modeled_s(&self) -> f64 {
        if !self.phase_makespans_modeled_s.is_empty() {
            self.phase_makespans_modeled_s.iter().sum()
        } else if self.device_loads.is_empty() {
            self.total_modeled_s()
        } else {
            gpu_sim::sched::shard::makespan_s(&self.busy())
        }
    }

    /// Total modeled transfer seconds hidden under compute by stream overlap,
    /// across devices (0 for single-device runs).
    pub fn overlap_saved_s(&self) -> f64 {
        self.device_loads.iter().map(|l| l.overlap_saved_s).sum()
    }

    /// Load-balance skew of a sharded run: busiest device's busy time over the
    /// mean busy time. 1.0 means perfectly balanced; also 1.0 for
    /// single-device runs and runs that did no work.
    pub fn load_skew(&self) -> f64 {
        gpu_sim::sched::shard::load_skew(&self.busy())
    }

    /// Per-device utilization `(name, busy / makespan)`, in pool order (empty
    /// for single-device runs).
    pub fn device_utilizations(&self) -> Vec<(String, f64)> {
        let utilizations = gpu_sim::sched::shard::utilizations(&self.busy());
        self.device_loads.iter().zip(utilizations).map(|(l, u)| (l.device.clone(), u)).collect()
    }

    /// Renders the per-phase breakdown as an aligned text table: one row per
    /// scheduling phase with its modeled kernel, transfer and overlap-hidden
    /// seconds, plus a totals row. Sharded and phased runs report the exact
    /// per-phase stream splits ([`MappingProfile::phase_streams`]); for
    /// single-device runs the dock/minimize rows carry the per-phase modeled
    /// kernel seconds with no transfer split.
    pub fn phase_table(&self) -> String {
        let rows: Vec<PhaseStream> = if self.phase_streams.is_empty() {
            vec![
                PhaseStream {
                    phase: "dock".to_string(),
                    kernel_modeled_s: self.docking_modeled_s,
                    ..PhaseStream::default()
                },
                PhaseStream {
                    phase: "minimize".to_string(),
                    kernel_modeled_s: self.minimization_modeled_s,
                    ..PhaseStream::default()
                },
            ]
        } else {
            self.phase_streams.clone()
        };
        let mut total = PhaseStream { phase: "total".to_string(), ..PhaseStream::default() };
        for row in &rows {
            total.ops += row.ops;
            total.kernel_modeled_s += row.kernel_modeled_s;
            total.transfer_modeled_s += row.transfer_modeled_s;
            total.overlap_saved_s += row.overlap_saved_s;
        }
        let name_w =
            rows.iter().map(|r| r.phase.len()).chain(["total".len(), "phase".len()]).max().unwrap();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>6}  {:>12}  {:>12}  {:>12}",
            "phase", "items", "kernel s", "transfer s", "overlap s"
        );
        for row in rows.iter().chain(std::iter::once(&total)) {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>6}  {:>12.6}  {:>12.6}  {:>12.6}",
                row.phase,
                row.ops,
                row.kernel_modeled_s,
                row.transfer_modeled_s,
                row.overlap_saved_s
            );
        }
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>6}  makespan {:.6} s, pipeline overlap saved {:.6} s",
            "",
            "",
            self.makespan_modeled_s(),
            self.pipeline_overlap_saved_s
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_match_paper_shape() {
        let p = MappingProfile {
            docking_wall_s: 30.0 * 60.0,
            minimization_wall_s: 400.0 * 60.0,
            docking_modeled_s: 7.0,
            minimization_modeled_s: 93.0,
            ..Default::default()
        };
        let (dock, min) = p.wall_percentages();
        assert!(dock < 10.0 && min > 90.0);
        let (dock_m, min_m) = p.modeled_percentages();
        assert!((dock_m - 7.0).abs() < 1e-9);
        assert!((min_m - 93.0).abs() < 1e-9);
        assert!((p.total_wall_s() - 430.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MappingProfile {
            docking_wall_s: 1.0,
            minimization_wall_s: 2.0,
            docking_modeled_s: 3.0,
            minimization_modeled_s: 4.0,
            ..Default::default()
        };
        a.merge(&a.clone());
        assert_eq!(a.docking_wall_s, 2.0);
        assert_eq!(a.minimization_modeled_s, 8.0);
    }

    #[test]
    fn empty_profile_has_zero_percentages() {
        let p = MappingProfile::default();
        assert_eq!(p.wall_percentages(), (0.0, 0.0));
        assert_eq!(p.modeled_percentages(), (0.0, 0.0));
    }

    fn load(name: &str, busy: f64, serialized: f64, probes: usize) -> DeviceLoad {
        DeviceLoad {
            device: name.to_string(),
            probes,
            pose_blocks: 0,
            busy_modeled_s: busy,
            serialized_modeled_s: serialized,
            overlap_saved_s: serialized - busy,
        }
    }

    #[test]
    fn all_idle_pool_reports_unit_skew_not_nan() {
        // Regression (the mean-busy division): a sharded run whose devices
        // all report zero busy time — an empty library, or a pool reset
        // before any work landed — must report skew 1.0 and zero
        // utilizations, never NaN.
        let p = MappingProfile {
            device_loads: vec![load("tesla-0", 0.0, 0.0, 0), load("tesla-1", 0.0, 0.0, 0)],
            ..Default::default()
        };
        let skew = p.load_skew();
        assert!(!skew.is_nan(), "all-idle skew must not be NaN");
        assert_eq!(skew, 1.0);
        assert_eq!(p.makespan_modeled_s(), 0.0);
        let utils = p.device_utilizations();
        assert_eq!(utils.len(), 2);
        assert!(utils.iter().all(|(_, u)| *u == 0.0));
    }

    #[test]
    fn phase_makespans_sum_into_the_run_makespan() {
        // A pose-block schedule is two barrier-separated executions: the run
        // makespan is the sum of the phase makespans, not the max of the
        // per-device busy totals (which ignores the barrier).
        let p = MappingProfile {
            device_loads: vec![load("tesla-0", 4.0, 4.0, 2), load("tesla-1", 3.0, 3.0, 2)],
            phase_makespans_modeled_s: vec![1.5, 3.25],
            ..Default::default()
        };
        assert!((p.makespan_modeled_s() - 4.75).abs() < 1e-12);
        // Without phases the busy-max view applies.
        let single = MappingProfile { phase_makespans_modeled_s: Vec::new(), ..p.clone() };
        assert!((single.makespan_modeled_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_device_views_fall_back_to_phase_totals() {
        let p = MappingProfile {
            docking_modeled_s: 2.0,
            minimization_modeled_s: 8.0,
            ..Default::default()
        };
        assert!((p.makespan_modeled_s() - 10.0).abs() < 1e-12);
        assert_eq!(p.overlap_saved_s(), 0.0);
        assert_eq!(p.load_skew(), 1.0);
        assert!(p.device_utilizations().is_empty());
    }

    #[test]
    fn sharded_views_report_makespan_skew_and_overlap() {
        let p = MappingProfile {
            device_loads: vec![
                load("tesla-0", 4.0, 4.5, 5),
                load("tesla-1", 3.0, 3.4, 4),
                load("tesla-2", 2.0, 2.3, 3),
            ],
            ..Default::default()
        };
        assert!((p.makespan_modeled_s() - 4.0).abs() < 1e-12);
        assert!((p.overlap_saved_s() - (0.5 + 0.4 + 0.3)).abs() < 1e-12);
        // Skew: max 4.0 over mean 3.0.
        assert!((p.load_skew() - 4.0 / 3.0).abs() < 1e-12);
        let utils = p.device_utilizations();
        assert_eq!(utils.len(), 3);
        assert!((utils[0].1 - 1.0).abs() < 1e-12);
        assert!((utils[2].1 - 0.5).abs() < 1e-12);
        assert_eq!(utils[1].0, "tesla-1");
    }

    #[test]
    fn merge_concatenates_device_loads() {
        let mut a = MappingProfile::default();
        let b = MappingProfile {
            device_loads: vec![load("tesla-0", 1.0, 1.0, 1)],
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.device_loads.len(), 2);
    }
}
