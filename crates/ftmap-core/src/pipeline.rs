//! The end-to-end FTMap pipeline.
//!
//! For each probe in the library: rigid-dock it against the protein, build a complex
//! for each retained pose, minimize the complexes, and feed the minimized pose centres
//! into consensus clustering. [`PipelineMode::Serial`] reproduces the structure of the
//! original single-core FTMap; [`PipelineMode::Accelerated`] uses the paper's GPU
//! mapping (device model) for both phases.
//!
//! Both phases choose their engine through one seam: a [`PipelineMode`] maps to a
//! [`gpu_sim::ExecutionBackend`], and each phase's engine enum implements
//! [`gpu_sim::BackendSelect`] — the pipeline never hand-picks per-phase engines.
//!
//! [`PipelineMode::Sharded`] adds the execution axis the single-device modes
//! lack: the probe library is sharded over a [`DevicePool`] by the
//! work-stealing [`ShardQueue`], so probe A's docking and minimization overlap
//! with probe B's on another device, and each device's host↔device transfers
//! overlap with its compute through the stream model. Results are bit-identical
//! to [`PipelineMode::Accelerated`] — sharding changes where and when work
//! runs, never what it computes.

use crate::cluster::{cluster_poses, ClusterInput, ConsensusSite};
use crate::profile::{DeviceLoad, MappingProfile};
use ftmap_energy::minimize::{MinimizationConfig, Minimizer};
use ftmap_math::Vec3;
use ftmap_molecule::{Complex, ForceField, Probe, ProbeLibrary, ProbeType, SyntheticProtein};
use gpu_sim::sched::{DevicePool, ShardQueue};
use gpu_sim::{BackendSelect, Device, ExecutionBackend};
use piper_dock::{Docking, DockingConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Whether the pipeline uses the original serial engines, the accelerated ones,
/// or the accelerated ones sharded over a device pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Serial FFT docking + host minimization (the original FTMap structure).
    Serial,
    /// GPU direct-correlation docking + GPU minimization kernels (the paper's system).
    Accelerated,
    /// The accelerated engines, with the probe library sharded over a pool of
    /// devices (work-stealing, stream-overlapped transfers, deterministic
    /// output order).
    Sharded {
        /// Number of Tesla-class devices in the default pool.
        devices: usize,
    },
}

impl PipelineMode {
    /// The execution backend this mode runs both phases on.
    pub fn backend(self) -> ExecutionBackend {
        match self {
            PipelineMode::Serial => ExecutionBackend::Cpu,
            PipelineMode::Accelerated | PipelineMode::Sharded { .. } => ExecutionBackend::Gpu,
        }
    }

    /// Number of devices this mode runs on.
    pub fn device_count(self) -> usize {
        match self {
            PipelineMode::Serial | PipelineMode::Accelerated => 1,
            PipelineMode::Sharded { devices } => devices.max(1),
        }
    }

    /// Selects a phase engine for this mode through the backend seam.
    pub fn select<T: BackendSelect>(self) -> T {
        T::for_backend(self.backend())
    }
}

impl From<ExecutionBackend> for PipelineMode {
    fn from(backend: ExecutionBackend) -> Self {
        match backend {
            ExecutionBackend::Cpu => PipelineMode::Serial,
            ExecutionBackend::Gpu => PipelineMode::Accelerated,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtMapConfig {
    /// Docking configuration (grid size, rotations, retained poses, engine is overridden
    /// by the pipeline mode).
    pub docking: DockingConfig,
    /// Minimization configuration (evaluation path is overridden by the pipeline mode).
    pub minimization: MinimizationConfig,
    /// Number of top docked poses minimized per probe (FTMap minimizes all retained
    /// poses — 2000 per probe; scaled configurations minimize fewer).
    pub conformations_per_probe: usize,
    /// Clustering radius in Å for consensus-site detection.
    pub cluster_radius: f64,
    /// Pipeline mode.
    pub mode: PipelineMode,
}

impl FtMapConfig {
    /// The paper-scale configuration (500 rotations × 4 poses = 2000 conformations per
    /// probe, 128³ grids are reduced to 64³ to keep host memory modest).
    pub fn paper_scale(mode: PipelineMode) -> Self {
        FtMapConfig {
            docking: DockingConfig { engine: mode.select(), ..DockingConfig::default() },
            minimization: MinimizationConfig {
                path: mode.select(),
                ..MinimizationConfig::default()
            },
            conformations_per_probe: 2000,
            cluster_radius: 4.0,
            mode,
        }
    }

    /// A scaled-down configuration for tests and examples.
    pub fn small_test(mode: PipelineMode) -> Self {
        FtMapConfig {
            docking: DockingConfig::small_test(mode.select()),
            minimization: MinimizationConfig {
                max_iterations: 10,
                ..MinimizationConfig::small_test(mode.select())
            },
            conformations_per_probe: 3,
            cluster_radius: 6.0,
            mode,
        }
    }

    /// A scaled-down configuration addressed by backend rather than mode.
    pub fn small_test_on(backend: ExecutionBackend) -> Self {
        Self::small_test(backend.into())
    }
}

/// Result of mapping one protein with a probe library.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// Ranked consensus sites (hotspot candidates).
    pub sites: Vec<ConsensusSite>,
    /// Number of conformations minimized in total.
    pub conformations_minimized: usize,
    /// Per-phase profile (summed over probes).
    pub profile: MappingProfile,
    /// Minimized pose centres per probe type (for inspection / examples).
    pub pose_centers: Vec<(ProbeType, Vec3)>,
}

impl MappingResult {
    /// The top-ranked hotspot centre, if any site was found.
    pub fn top_hotspot(&self) -> Option<Vec3> {
        self.sites.first().map(|s| s.cluster.center)
    }
}

/// Everything one probe contributes to a mapping run (the shard unit).
///
/// Public because queued-job consumers (the `ftmap-serve` batch service)
/// schedule probes from *several* jobs through one [`ShardQueue`] execution and
/// assemble each job's result themselves from its shards.
pub struct ProbeShard {
    /// The probe's phase profile.
    pub profile: MappingProfile,
    /// Minimized pose centres, ready for consensus clustering.
    pub inputs: Vec<ClusterInput>,
    /// Conformations minimized for this probe.
    pub conformations: usize,
    /// Pure modeled kernel seconds (transfers excluded) — what the shard
    /// queue's stream model charges to the compute stage.
    pub kernel_modeled_s: f64,
}

/// The FTMap pipeline over one protein.
pub struct FtMapPipeline {
    protein: SyntheticProtein,
    ff: ForceField,
    config: FtMapConfig,
    pool: Arc<DevicePool>,
    /// Receptor grids built once per pipeline (host side). Per-probe docking
    /// contexts borrow these, and the device-side copy is managed by each
    /// device's residency cache — so N probes (or N queued jobs) against one
    /// receptor cost one host build and one upload per device.
    receptor: Arc<piper_dock::ReceptorGrids>,
}

impl FtMapPipeline {
    /// Creates a pipeline for the given protein, with a Tesla-class pool sized
    /// by the configured mode (1 device for the single-device modes,
    /// `devices` for [`PipelineMode::Sharded`]).
    pub fn new(protein: SyntheticProtein, ff: ForceField, config: FtMapConfig) -> Self {
        let pool = DevicePool::tesla(config.mode.device_count());
        Self::with_pool(protein, ff, config, pool)
    }

    /// Creates a pipeline on an explicit (possibly heterogeneous) device pool.
    pub fn with_pool(
        protein: SyntheticProtein,
        ff: ForceField,
        config: FtMapConfig,
        pool: DevicePool,
    ) -> Self {
        Self::with_shared_pool(protein, ff, config, Arc::new(pool))
    }

    /// Creates a pipeline on a pool shared with other consumers — the entry
    /// point for queued jobs: a batch-mapping service hands every job pipeline
    /// the same pool handle, so all jobs' shards land on the same devices (and
    /// the same residency caches).
    pub fn with_shared_pool(
        protein: SyntheticProtein,
        ff: ForceField,
        config: FtMapConfig,
        pool: Arc<DevicePool>,
    ) -> Self {
        let receptor = Docking::build_receptor(&protein.atoms, &config.docking);
        Self::with_shared_resources(protein, ff, config, pool, receptor)
    }

    /// Creates a pipeline from prebuilt receptor grids on a shared pool —
    /// lets a service memoize the host-side grid build across jobs for the
    /// same receptor content.
    pub fn with_shared_resources(
        protein: SyntheticProtein,
        ff: ForceField,
        config: FtMapConfig,
        pool: Arc<DevicePool>,
        receptor: Arc<piper_dock::ReceptorGrids>,
    ) -> Self {
        FtMapPipeline { protein, ff, config, pool, receptor }
    }

    /// The configuration.
    pub fn config(&self) -> &FtMapConfig {
        &self.config
    }

    /// The protein being mapped.
    pub fn protein(&self) -> &SyntheticProtein {
        &self.protein
    }

    /// The device pool this pipeline executes on.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The shared handle to the device pool (for co-scheduling other work).
    pub fn shared_pool(&self) -> &Arc<DevicePool> {
        &self.pool
    }

    /// The receptor grids every probe of this pipeline docks against.
    pub fn receptor(&self) -> &Arc<piper_dock::ReceptorGrids> {
        &self.receptor
    }

    /// Maps the protein with every probe in `library`.
    ///
    /// Resets the pool's transfer accounting at the start of the run, so the
    /// pool must not be executing other work concurrently (the batch service
    /// serializes batches for exactly this reason); grid residency survives
    /// the reset.
    pub fn map(&self, library: &ProbeLibrary) -> MappingResult {
        // Pooled devices outlive runs: reset their transfer accounting so a
        // previous run's transfers cannot leak into this run's overlap model.
        self.pool.reset_transfer_stats();
        match self.config.mode {
            PipelineMode::Sharded { .. } => self.map_sharded(library),
            PipelineMode::Serial | PipelineMode::Accelerated => self.map_single(library),
        }
    }

    /// The single-device probe loop (serial and accelerated modes).
    fn map_single(&self, library: &ProbeLibrary) -> MappingResult {
        let device = self.pool.device(0);
        let shards = library.probes().iter().map(|probe| self.map_probe_on(probe, device));
        self.assemble(shards.collect(), Vec::new())
    }

    /// The sharded probe loop: one work-stealing worker per pooled device.
    /// Results are assembled in library order regardless of which device
    /// serviced each probe, so the output is identical to the single-device
    /// accelerated run.
    fn map_sharded(&self, library: &ProbeLibrary) -> MappingResult {
        let queue = ShardQueue::new(&self.pool);
        let items: Vec<&Probe> = library.probes().iter().collect();
        let outcome = queue.execute(items, |ctx, probe| {
            let shard = self.map_probe_on(probe, ctx.device);
            let kernel_s = shard.kernel_modeled_s;
            (shard, kernel_s)
        });
        let loads = outcome.reports.iter().map(DeviceLoad::from).collect();
        self.assemble(outcome.results, loads)
    }

    /// Folds per-probe shards (in library order) into the mapping result.
    fn assemble(&self, shards: Vec<ProbeShard>, device_loads: Vec<DeviceLoad>) -> MappingResult {
        let mut profile = MappingProfile::default();
        let mut cluster_inputs: Vec<ClusterInput> = Vec::new();
        let mut pose_centers = Vec::new();
        let mut conformations = 0usize;
        for shard in shards {
            profile.merge(&shard.profile);
            conformations += shard.conformations;
            for input in &shard.inputs {
                pose_centers.push((input.probe, input.center));
            }
            cluster_inputs.extend(shard.inputs);
        }
        profile.device_loads = device_loads;
        let sites = cluster_poses(&cluster_inputs, self.config.cluster_radius);
        MappingResult { sites, conformations_minimized: conformations, profile, pose_centers }
    }

    /// Maps a single probe: dock, minimize the top conformations, return cluster inputs.
    pub fn map_probe(
        &self,
        probe: &Probe,
        conformations: &mut usize,
    ) -> (MappingProfile, Vec<ClusterInput>) {
        let shard = self.map_probe_on(probe, self.pool.device(0));
        *conformations += shard.conformations;
        (shard.profile, shard.inputs)
    }

    /// Maps a single probe on the given pooled device, returning its shard —
    /// the queued-job entry: a batch service schedules `(job, probe)` pairs
    /// from many jobs through one [`ShardQueue`] with this as the work body,
    /// then assembles each job's result from its own shards.
    pub fn map_probe_shard(&self, probe: &Probe, device: &Arc<Device>) -> ProbeShard {
        self.map_probe_on(probe, device)
    }

    /// Maps a single probe on the given pooled device.
    fn map_probe_on(&self, probe: &Probe, device: &Arc<Device>) -> ProbeShard {
        let mut profile = MappingProfile::default();

        // Phase 1: rigid docking, on this shard's device. The receptor grids
        // are the pipeline's prebuilt set; the device-resident copy comes from
        // the residency cache (upload charged on first sighting only).
        let t0 = Instant::now();
        let docking = Docking::from_grids(
            Arc::clone(&self.receptor),
            self.config.docking.clone(),
            Arc::clone(device),
        );
        let run = docking.run(probe);
        profile.docking_wall_s += t0.elapsed().as_secs_f64();
        profile.docking_modeled_s += run.modeled.total();
        // Pure kernel time for the stream model: the run reports how much
        // transfer time it folded into its modeled steps, so those seconds are
        // counted by the transfer stages, not the compute stage.
        let mut kernel_modeled_s = run.modeled.total() - run.modeled_transfer_s;

        // Phase 2: minimize the top conformations.
        let minimizer = Minimizer::new(self.ff.clone(), self.config.minimization);
        let mut inputs = Vec::new();
        let mut conformations = 0usize;
        let n_conf = self.config.conformations_per_probe.min(run.poses.len());
        for pose in run.poses.iter().take(n_conf) {
            let rotation = docking.rotations().get(pose.rotation_index);
            let centered: Vec<Vec3> = probe.atoms.iter().map(|a| a.position).collect();
            let placed = pose.place_probe(
                rotation,
                &centered,
                run.grid.origin,
                run.grid.spacing,
                (run.grid.dim, run.grid.dim, run.grid.dim),
            );
            let mut posed_probe = probe.clone();
            for (atom, new_pos) in posed_probe.atoms.iter_mut().zip(&placed) {
                atom.position = *new_pos;
            }
            let mut complex = Complex::new(&self.protein, &posed_probe);

            let t1 = Instant::now();
            let result = minimizer.minimize(&mut complex, device);
            profile.minimization_wall_s += t1.elapsed().as_secs_f64();
            let modeled_s = match self.config.mode {
                PipelineMode::Accelerated | PipelineMode::Sharded { .. } => {
                    result.modeled_kernel_total_s()
                }
                // For the serial pipeline the host evaluation *is* the measured work;
                // use the measured evaluation time as the modeled serial time.
                PipelineMode::Serial => result.evaluation_time_s + result.update_time_s,
            };
            profile.minimization_modeled_s += modeled_s;
            // Minimization kernel times carry no transfers, so the stream
            // model's compute stage gets the same figure.
            kernel_modeled_s += modeled_s;
            conformations += 1;

            inputs.push(ClusterInput {
                probe: probe.probe_type,
                center: complex.probe_centroid(),
                energy: result.final_energy,
            });
        }
        ProbeShard { profile, inputs, conformations, kernel_modeled_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmap_molecule::{ProbeLibrary, ProteinSpec};
    use piper_dock::DockingEngineKind;

    fn small_pipeline(mode: PipelineMode) -> (FtMapPipeline, ProbeLibrary) {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Acetone]);
        let pipeline = FtMapPipeline::new(protein, ff, FtMapConfig::small_test(mode));
        (pipeline, library)
    }

    #[test]
    fn serial_pipeline_produces_consensus_sites() {
        let (pipeline, library) = small_pipeline(PipelineMode::Serial);
        let result = pipeline.map(&library);
        assert!(result.conformations_minimized > 0);
        assert!(!result.sites.is_empty());
        assert!(result.top_hotspot().is_some());
        assert!(result.profile.total_wall_s() > 0.0);
        assert_eq!(
            result.conformations_minimized,
            library.len() * pipeline.config().conformations_per_probe
        );
        assert_eq!(result.pose_centers.len(), result.conformations_minimized);
    }

    #[test]
    fn accelerated_pipeline_produces_consensus_sites() {
        let (pipeline, library) = small_pipeline(PipelineMode::Accelerated);
        let result = pipeline.map(&library);
        assert!(!result.sites.is_empty());
        assert!(result.profile.docking_modeled_s > 0.0);
        assert!(result.profile.minimization_modeled_s > 0.0);
    }

    #[test]
    fn minimization_dominates_serial_wall_time() {
        // Fig. 2(a): minimization ≈93 % of the serial FTMap runtime. With the scaled
        // test configuration the exact split differs, but minimization (many
        // conformations × many iterations) must dominate docking.
        let (pipeline, library) = small_pipeline(PipelineMode::Serial);
        let result = pipeline.map(&library);
        let (dock_pct, min_pct) = result.profile.wall_percentages();
        assert!(min_pct > dock_pct, "docking {dock_pct}% vs minimization {min_pct}%");
    }

    #[test]
    fn accelerated_modeled_time_beats_serial_modeled_time() {
        // The overall §V.C claim in miniature: the accelerated pipeline's modeled time
        // is below the serial pipeline's modeled time on the same workload.
        let (serial, library) = small_pipeline(PipelineMode::Serial);
        let serial_result = serial.map(&library);
        let (accel, _) = small_pipeline(PipelineMode::Accelerated);
        let accel_result = accel.map(&library);
        assert!(
            accel_result.profile.total_modeled_s() < serial_result.profile.total_modeled_s(),
            "accelerated {} vs serial {}",
            accel_result.profile.total_modeled_s(),
            serial_result.profile.total_modeled_s()
        );
    }

    #[test]
    fn backend_seam_selects_both_phase_engines() {
        use ftmap_energy::minimize::EvaluationPath;
        // One ExecutionBackend value drives both per-phase engine choices.
        assert_eq!(PipelineMode::Serial.backend(), ExecutionBackend::Cpu);
        assert_eq!(PipelineMode::Accelerated.backend(), ExecutionBackend::Gpu);
        assert_eq!(
            PipelineMode::Serial.select::<DockingEngineKind>(),
            DockingEngineKind::FftSerial
        );
        assert!(matches!(
            PipelineMode::Accelerated.select::<DockingEngineKind>(),
            DockingEngineKind::Gpu { batch: piper_dock::docking::DEFAULT_GPU_BATCH }
        ));
        assert_eq!(PipelineMode::Serial.select::<EvaluationPath>(), EvaluationPath::Host);
        assert_eq!(PipelineMode::Accelerated.select::<EvaluationPath>(), EvaluationPath::Gpu);
        // Round-trips through the backend.
        for backend in ExecutionBackend::ALL {
            assert_eq!(PipelineMode::from(backend).backend(), backend);
            let cfg = FtMapConfig::small_test_on(backend);
            assert_eq!(cfg.mode.backend(), backend);
        }
    }

    #[test]
    fn sharded_mode_rides_the_gpu_backend() {
        let mode = PipelineMode::Sharded { devices: 4 };
        assert_eq!(mode.backend(), ExecutionBackend::Gpu);
        assert_eq!(mode.device_count(), 4);
        assert_eq!(PipelineMode::Sharded { devices: 0 }.device_count(), 1);
        assert_eq!(PipelineMode::Accelerated.device_count(), 1);
        // The engine seam picks the same accelerated engines as Accelerated.
        assert!(matches!(
            mode.select::<DockingEngineKind>(),
            DockingEngineKind::Gpu { batch: piper_dock::docking::DEFAULT_GPU_BATCH }
        ));
    }

    #[test]
    fn sharded_pipeline_reports_per_device_loads() {
        let (pipeline, library) = small_pipeline(PipelineMode::Sharded { devices: 2 });
        assert_eq!(pipeline.pool().len(), 2);
        let result = pipeline.map(&library);
        assert!(!result.sites.is_empty());
        let loads = &result.profile.device_loads;
        assert_eq!(loads.len(), 2);
        let serviced: usize = loads.iter().map(|l| l.probes).sum();
        assert_eq!(serviced, library.len());
        // Every probe was worked somewhere and the makespan is positive but no
        // larger than the sum of the per-phase modeled totals.
        assert!(result.profile.makespan_modeled_s() > 0.0);
        assert!(
            result.profile.makespan_modeled_s()
                <= result.profile.total_modeled_s() + result.profile.overlap_saved_s() + 1e-9
        );
        assert!(result.profile.load_skew() >= 1.0 - 1e-12);
        assert_eq!(result.profile.device_utilizations().len(), 2);
    }

    #[test]
    fn repeated_runs_do_not_leak_transfer_stats() {
        // Pooled devices are reused across runs; `map` must reset their
        // transfer accounting so each run reports only its own transfers, not
        // an accumulation (regression test for the pool-reset audit). Run 1
        // additionally pays the one-time receptor upload (residency miss);
        // runs 2 and 3 hit the cache, so their transfer totals are identical
        // and smaller by exactly that upload.
        let (pipeline, library) = small_pipeline(PipelineMode::Accelerated);
        let device = Arc::clone(pipeline.pool().device(0));
        pipeline.map(&library);
        let after_first = pipeline.pool().total_transfer_time();
        pipeline.map(&library);
        let after_second = pipeline.pool().total_transfer_time();
        pipeline.map(&library);
        let after_third = pipeline.pool().total_transfer_time();
        assert!(after_first > 0.0);
        let receptor_upload_s = device
            .cost_model()
            .transfer_time(&gpu_sim::Transfer::upload(pipeline.receptor().resident_bytes() as u64));
        assert!(
            (after_first - after_second - receptor_upload_s).abs() < 1e-12,
            "warm run should differ from cold run by one receptor upload: \
             {after_first} then {after_second} (upload {receptor_upload_s})"
        );
        assert!(
            (after_second - after_third).abs() < 1e-12,
            "transfer stats leaked across warm runs: {after_second} then {after_third}"
        );
    }

    #[test]
    fn residency_miss_uploads_once_per_device_and_hits_are_free() {
        // The serve-layer transfer contract: across a whole sharded run, each
        // pooled device records exactly one receptor-grid upload (its first
        // probe misses), and every other probe's construction is a free hit.
        let (pipeline, library) = small_pipeline(PipelineMode::Sharded { devices: 2 });
        let receptor_bytes = pipeline.receptor().resident_bytes();
        pipeline.map(&library);
        let mut total_misses = 0;
        for device in pipeline.pool().devices() {
            let stats = device.residency().stats();
            if stats.lookups() > 0 {
                // A device that serviced k probes saw k lookups: 1 miss (its
                // first probe) + (k-1) free hits.
                assert_eq!(stats.misses, 1, "exactly one miss per active device");
                assert_eq!(stats.insertions, 1);
                assert_eq!(stats.hits + 1, stats.lookups());
            }
            total_misses += stats.misses;
        }
        assert!(total_misses >= 1);
        // A fresh identical pipeline on a fresh pool pays the upload once per
        // device; re-running on the warm pool pays zero receptor bytes: the
        // second run's bytes are smaller by exactly one grid set per device
        // that serviced work in run 1 but no longer misses.
        let (cold, _) = small_pipeline(PipelineMode::Accelerated);
        cold.map(&library);
        let cold_bytes = cold.pool().device(0).total_transfer_bytes();
        cold.map(&library);
        let warm_bytes = cold.pool().device(0).total_transfer_bytes();
        assert_eq!(cold_bytes - warm_bytes, receptor_bytes);
    }

    #[test]
    fn paper_scale_config_matches_paper_parameters() {
        let cfg = FtMapConfig::paper_scale(PipelineMode::Accelerated);
        assert_eq!(cfg.docking.n_rotations, 500);
        assert_eq!(cfg.docking.poses_per_rotation, 4);
        assert_eq!(cfg.conformations_per_probe, 2000);
        assert!(matches!(cfg.docking.engine, DockingEngineKind::Gpu { batch: 8 }));
    }
}
