//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this workspace has no access to crates.io, so this
//! vendored crate provides just enough of serde's surface for the workspace to
//! compile: the `Serialize` / `Deserialize` marker traits (blanket-implemented for
//! every type) and the derive macros (which expand to nothing, since the blanket
//! impls already cover every derived type).
//!
//! Nothing in the workspace currently serializes at runtime; types carry the
//! derives so that swapping this stub for the real `serde` is a manifest-only
//! change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized. Blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that can be deserialized. Blanket-implemented for all sized
/// types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<T> {
        _x: T,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        _A,
        _B { _n: usize },
    }

    #[test]
    fn derives_and_blanket_impls_cover_all_shapes() {
        assert_serialize::<Plain>();
        assert_serialize::<Generic<f64>>();
        assert_serialize::<Kind>();
        assert_deserialize::<Plain>();
        assert_deserialize::<Generic<f64>>();
        assert_deserialize::<Kind>();
    }
}
