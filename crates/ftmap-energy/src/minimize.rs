//! The iterative energy minimizer (paper §II.B).
//!
//! Minimization moves the probe atoms (the mobile part of the complex) down the energy
//! gradient until the energy change per iteration falls below a threshold or the
//! iteration budget is exhausted. The optimization move and the coordinate update stay
//! on the host in the paper ("two computations … are left on the host"); the expensive
//! part — the non-bonded energy and force evaluation — runs either on the host
//! ([`EvaluationPath::Host`]) or through the three GPU kernels
//! ([`EvaluationPath::Gpu`]).

use crate::evaluator::{EnergyBreakdown, Evaluator};
use crate::gpu::GpuMinimizationEngine;
use ftmap_math::{Real, Vec3};
use ftmap_molecule::{Complex, ForceField, NeighborList};
use gpu_sim::{wall_timed, BackendSelect, Device, ExecutionBackend};
use serde::{Deserialize, Serialize};

/// Which engine evaluates energies and forces each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvaluationPath {
    /// Serial host evaluation over the neighbor list (the original FTMap structure).
    Host,
    /// The three GPU kernels over the split pairs-lists (the paper's contribution).
    Gpu,
}

impl BackendSelect for EvaluationPath {
    /// The evaluation path the pipeline's execution-backend seam selects.
    fn for_backend(backend: ExecutionBackend) -> Self {
        match backend {
            ExecutionBackend::Cpu => EvaluationPath::Host,
            ExecutionBackend::Gpu => EvaluationPath::Gpu,
        }
    }
}

/// Minimization parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MinimizationConfig {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the energy change between iterations (kcal/mol).
    pub energy_tolerance: Real,
    /// Initial steepest-descent step size (Å per unit force).
    pub initial_step: Real,
    /// Rebuild the neighbor list every this many iterations (the paper notes this
    /// happens "only a few times per 1000 minimization iterations").
    pub neighbor_refresh_interval: usize,
    /// Which engine evaluates energies and forces.
    pub path: EvaluationPath,
}

impl Default for MinimizationConfig {
    fn default() -> Self {
        MinimizationConfig {
            max_iterations: 200,
            energy_tolerance: 1e-4,
            initial_step: 1e-3,
            neighbor_refresh_interval: 250,
            path: EvaluationPath::Host,
        }
    }
}

impl MinimizationConfig {
    /// A short configuration for unit tests.
    pub fn small_test(path: EvaluationPath) -> Self {
        MinimizationConfig {
            max_iterations: 25,
            energy_tolerance: 1e-6,
            initial_step: 5e-4,
            neighbor_refresh_interval: 10,
            path,
        }
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct MinimizationResult {
    /// Energy before the first step.
    pub initial_energy: Real,
    /// Energy after the last accepted step.
    pub final_energy: Real,
    /// Number of iterations executed.
    pub iterations: usize,
    /// True when the run stopped because the energy change dropped below tolerance.
    pub converged: bool,
    /// Final per-term breakdown (from the host evaluator, for reporting).
    pub breakdown: EnergyBreakdown,
    /// Wall-clock seconds spent in energy/force evaluation.
    pub evaluation_time_s: f64,
    /// Wall-clock seconds spent in the optimization move + coordinate updates (host).
    pub update_time_s: f64,
    /// Modeled device seconds per iteration, split by kernel
    /// `(self-energy, pairwise+vdW, force update)`; zeros for the host path.
    pub modeled_kernel_times_s: (f64, f64, f64),
    /// The minimized probe-atom positions.
    pub final_positions: Vec<Vec3>,
}

impl MinimizationResult {
    /// Total modeled device seconds over the three kernels — pure kernel time,
    /// with host↔device transfers excluded (those are charged to the device's
    /// transfer accounting and picked up by the scheduler's stream model).
    pub fn modeled_kernel_total_s(&self) -> f64 {
        let (a, b, c) = self.modeled_kernel_times_s;
        a + b + c
    }

    /// Fraction of wall time spent in energy evaluation — the Fig. 3(a) quantity
    /// (≈99 % in the paper).
    pub fn evaluation_fraction(&self) -> f64 {
        let total = self.evaluation_time_s + self.update_time_s;
        if total <= 0.0 {
            0.0
        } else {
            self.evaluation_time_s / total
        }
    }
}

/// The minimizer.
pub struct Minimizer {
    ff: ForceField,
    config: MinimizationConfig,
}

impl Minimizer {
    /// Creates a minimizer.
    pub fn new(ff: ForceField, config: MinimizationConfig) -> Self {
        Minimizer { ff, config }
    }

    /// The configuration.
    pub fn config(&self) -> &MinimizationConfig {
        &self.config
    }

    /// Minimizes the probe atoms of `complex` in place and returns the run summary.
    /// `device` is only used when the configuration selects the GPU path.
    ///
    /// The minimizer never constructs a device of its own: callers hand it a
    /// handle — the pipeline passes a member of its
    /// [`gpu_sim::sched::DevicePool`], so a sharded run's per-iteration
    /// transfers are charged to the device that actually serviced the shard.
    pub fn minimize(&self, complex: &mut Complex, device: &Device) -> MinimizationResult {
        let evaluator = Evaluator::new(self.ff.clone());
        let excluded = complex.topology.excluded_pairs();
        let mut neighbors = NeighborList::build(&complex.atoms, self.ff.cutoff, &excluded);
        let mut gpu_engine = match self.config.path {
            EvaluationPath::Gpu => {
                Some(GpuMinimizationEngine::new(device, self.ff.clone(), &neighbors))
            }
            EvaluationPath::Host => None,
        };

        let mut eval_time = 0.0;
        let mut update_time = 0.0;
        let mut kernel_times = (0.0, 0.0, 0.0);

        // Evaluate the starting energy (bonded terms always from the host evaluator).
        let (initial_eval, initial_wall_s) = wall_timed(|| evaluator.evaluate(complex, &neighbors));
        eval_time += initial_wall_s;
        let initial_energy = initial_eval.breakdown.total();
        let mut current_energy = initial_energy;
        let mut step = self.config.initial_step;
        let mut converged = false;
        let mut iterations = 0;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;

            // Periodic neighbor-list refresh.
            if iter > 0 && iter % self.config.neighbor_refresh_interval == 0 {
                neighbors = NeighborList::build(&complex.atoms, self.ff.cutoff, &excluded);
                if let Some(engine) = gpu_engine.as_mut() {
                    engine.refresh_neighbor_list(&neighbors);
                }
            }

            // Energy + force evaluation.
            let (forces, forces_wall_s) = wall_timed(|| -> Vec<Vec3> {
                match (&self.config.path, gpu_engine.as_mut()) {
                    (EvaluationPath::Gpu, Some(engine)) => {
                        let result = engine.evaluate(complex);
                        kernel_times.0 += result.self_energy_stats().modeled_time_s;
                        kernel_times.1 += result.pairwise_vdw_stats().modeled_time_s;
                        kernel_times.2 += result.force_update_stats().modeled_time_s;
                        result.forces
                    }
                    _ => evaluator.evaluate(complex, &neighbors).forces,
                }
            });
            eval_time += forces_wall_s;

            // Optimization move (host): steepest descent on the mobile atoms with a
            // backtracking step-size control.
            let (saved_positions, move_wall_s) = wall_timed(|| {
                let mut trial_positions = complex.positions();
                for (i, pos) in trial_positions.iter_mut().enumerate() {
                    if complex.is_mobile(i) {
                        *pos += forces[i] * step;
                    }
                }
                let saved_positions = complex.positions();
                complex.set_positions(&trial_positions);
                saved_positions
            });
            update_time += move_wall_s;

            let (trial_energy, trial_wall_s) =
                wall_timed(|| evaluator.evaluate(complex, &neighbors).breakdown.total());
            eval_time += trial_wall_s;

            let ((), accept_wall_s) = wall_timed(|| {
                if trial_energy <= current_energy {
                    let delta = current_energy - trial_energy;
                    current_energy = trial_energy;
                    step = (step * 1.2).min(0.05);
                    if delta < self.config.energy_tolerance {
                        converged = true;
                    }
                } else {
                    // Reject the step, shrink and retry next iteration.
                    complex.set_positions(&saved_positions);
                    step *= 0.5;
                    if step < 1e-9 {
                        converged = true;
                    }
                }
            });
            update_time += accept_wall_s;

            if converged {
                break;
            }
        }

        let final_eval = evaluator.evaluate(complex, &neighbors);
        MinimizationResult {
            initial_energy,
            final_energy: current_energy,
            iterations,
            converged,
            breakdown: final_eval.breakdown,
            evaluation_time_s: eval_time,
            update_time_s: update_time,
            modeled_kernel_times_s: kernel_times,
            final_positions: complex.probe_atoms().iter().map(|a| a.position).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmap_molecule::{Probe, ProbeType, ProteinSpec, SyntheticProtein};

    fn posed_complex() -> Complex {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let probe = Probe::new(ProbeType::Ethanol, &ff);
        let mut posed = probe.clone();
        let target = protein.pocket_centers[0];
        for a in &mut posed.atoms {
            a.position += target;
        }
        Complex::new(&protein, &posed)
    }

    #[test]
    fn host_minimization_does_not_increase_energy() {
        let ff = ForceField::charmm_like();
        let mut complex = posed_complex();
        let minimizer = Minimizer::new(ff, MinimizationConfig::small_test(EvaluationPath::Host));
        let device = Device::tesla_c1060();
        let result = minimizer.minimize(&mut complex, &device);
        assert!(result.final_energy <= result.initial_energy + 1e-9);
        assert!(result.iterations >= 1);
        assert!(result.evaluation_time_s > 0.0);
        assert_eq!(result.modeled_kernel_times_s, (0.0, 0.0, 0.0));
        assert_eq!(result.final_positions.len(), complex.n_probe_atoms());
    }

    #[test]
    fn gpu_minimization_does_not_increase_energy_and_records_kernel_times() {
        let ff = ForceField::charmm_like();
        let mut complex = posed_complex();
        let minimizer = Minimizer::new(ff, MinimizationConfig::small_test(EvaluationPath::Gpu));
        let device = Device::tesla_c1060();
        let result = minimizer.minimize(&mut complex, &device);
        assert!(result.final_energy <= result.initial_energy + 1e-9);
        let (self_t, pair_t, force_t) = result.modeled_kernel_times_s;
        assert!(self_t > 0.0 && pair_t > 0.0 && force_t > 0.0);
        // Table 2 ordering: self-energy kernel dominates, force update is cheapest.
        assert!(self_t > force_t);
        assert!(pair_t > force_t);
    }

    #[test]
    fn evaluation_dominates_iteration_time() {
        // Fig. 3(a): energy evaluation is ~99 % of the minimization time.
        let ff = ForceField::charmm_like();
        let mut complex = posed_complex();
        let minimizer = Minimizer::new(ff, MinimizationConfig::small_test(EvaluationPath::Host));
        let device = Device::tesla_c1060();
        let result = minimizer.minimize(&mut complex, &device);
        assert!(
            result.evaluation_fraction() > 0.8,
            "evaluation fraction {}",
            result.evaluation_fraction()
        );
    }

    #[test]
    fn host_and_gpu_paths_reach_similar_energies() {
        let ff = ForceField::charmm_like();
        let device = Device::tesla_c1060();

        let mut host_complex = posed_complex();
        let host = Minimizer::new(ff.clone(), MinimizationConfig::small_test(EvaluationPath::Host))
            .minimize(&mut host_complex, &device);

        let mut gpu_complex = posed_complex();
        let gpu = Minimizer::new(ff, MinimizationConfig::small_test(EvaluationPath::Gpu))
            .minimize(&mut gpu_complex, &device);

        // Both paths use the same mathematics for the pair terms; the trajectories can
        // differ slightly (the GPU path omits bonded forces in its descent direction),
        // but both must descend and land in the same energy regime.
        let host_drop = host.initial_energy - host.final_energy;
        let gpu_drop = gpu.initial_energy - gpu.final_energy;
        assert!(host_drop >= 0.0);
        assert!(gpu_drop >= 0.0);
        let scale = host.initial_energy.abs().max(1.0);
        assert!(
            (host.final_energy - gpu.final_energy).abs() / scale < 0.2,
            "host {} vs gpu {}",
            host.final_energy,
            gpu.final_energy
        );
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = MinimizationConfig::default();
        assert!(cfg.max_iterations >= 100);
        assert!(cfg.energy_tolerance > 0.0);
        assert!(cfg.neighbor_refresh_interval > 1);
        assert_eq!(cfg.path, EvaluationPath::Host);
    }
}
