//! Multi-device binding-site mapping: shard the probe library over a pool of
//! modeled Tesla C1060s, overlap host↔device transfers with compute, and print
//! the per-device utilization report.
//!
//! Run with: `cargo run --release --example multi_device_mapping`

use ftmap::gpu::sched::DevicePool;
use ftmap::prelude::*;

fn build_pipeline(
    mode: PipelineMode,
    ff: &ForceField,
    protein: &SyntheticProtein,
) -> FtMapPipeline {
    let mut config = FtMapConfig::small_test(mode);
    config.docking.n_rotations = 8;
    config.conformations_per_probe = 2;
    FtMapPipeline::new(protein.clone(), ff.clone(), config)
}

fn main() {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let library = ProbeLibrary::standard(&ff);
    println!(
        "Mapping a {}-atom protein with the full {}-probe library\n",
        protein.n_atoms(),
        library.len()
    );

    // Baseline: the paper's single-device accelerated pipeline.
    let single = build_pipeline(PipelineMode::Accelerated, &ff, &protein).map(&library);
    let single_makespan = single.profile.makespan_modeled_s();
    println!("1 × Tesla C1060 (Accelerated):    modeled {:>8.2} ms", 1e3 * single_makespan);

    // Sharded: the same workload over a growing device pool, scheduled at the
    // default pose-block granularity (dock once per probe, then spread every
    // probe's retained poses across the pool).
    for devices in [2usize, 4] {
        let sharded = build_pipeline(PipelineMode::sharded(devices), &ff, &protein).map(&library);
        let makespan = sharded.profile.makespan_modeled_s();
        println!(
            "{devices} × Tesla C1060 (Sharded):       modeled {:>8.2} ms  speedup {:>5.2}x  \
             overlap saved {:>6.3} ms  skew {:.3}",
            1e3 * makespan,
            single_makespan / makespan.max(1e-12),
            1e3 * sharded.profile.overlap_saved_s(),
            sharded.profile.load_skew(),
        );
        // Utilizations and loads are both in pool order; homogeneous pool
        // members share a name, so pair them by index, not by name.
        let utilizations = sharded.profile.device_utilizations();
        for ((name, utilization), load) in utilizations.iter().zip(&sharded.profile.device_loads) {
            println!(
                "    {:<42} probes {:>2}  pose blocks {:>2}  utilization {:>5.1} %",
                name,
                load.probes,
                load.pose_blocks,
                100.0 * utilization
            );
        }

        // The consensus sites must be exactly the single-device sites —
        // sharding never changes results, only where they are computed.
        assert_eq!(sharded.sites.len(), single.sites.len());
        for (a, b) in sharded.sites.iter().zip(&single.sites) {
            assert_eq!(a.rank, b.rank);
            assert!(a.cluster.center.distance(b.cluster.center) == 0.0);
        }

        if devices == 4 {
            println!("\n    Per-phase breakdown ({devices} devices):");
            for line in sharded.profile.phase_table().lines() {
                println!("    {line}");
            }
            println!();
        }
    }

    // A heterogeneous pool: two Teslas plus the quad-core Xeon host as a
    // third, slower shard consumer — work-stealing balances by speed.
    let mut config = FtMapConfig::small_test(PipelineMode::sharded(3));
    config.docking.n_rotations = 8;
    config.conformations_per_probe = 2;
    let mixed =
        FtMapPipeline::with_pool(protein.clone(), ff.clone(), config, DevicePool::mixed(2, 1))
            .map(&library);
    println!("\nHeterogeneous pool (2 × Tesla + 1 × Xeon quad):");
    for load in &mixed.profile.device_loads {
        println!(
            "    {:<42} probes {:>2}  pose blocks {:>2}  busy {:>8.2} ms  overlap saved {:>6.3} ms",
            load.device,
            load.probes,
            load.pose_blocks,
            1e3 * load.busy_modeled_s,
            1e3 * load.overlap_saved_s,
        );
    }
    println!(
        "    makespan {:.2} ms, load skew {:.3}",
        1e3 * mixed.profile.makespan_modeled_s(),
        mixed.profile.load_skew()
    );

    if let Some(top) = single.top_hotspot() {
        println!(
            "\nTop hotspot (identical in every mode): ({:.1}, {:.1}, {:.1})",
            top.x, top.y, top.z
        );
    }
}
