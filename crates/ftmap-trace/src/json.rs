//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace's vendored `serde` stub has no serialization backend, so the
//! Perfetto exporter writes JSON by hand — and this module is the matching
//! reader: the `trace_check` schema validator and the round-trip tests parse
//! the exported bytes back through it. It accepts exactly RFC 8259 JSON
//! (objects, arrays, strings with escapes, numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is not preserved (sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>().map(JsonValue::Number).map_err(|_| self.error("invalid number"))
    }
}

/// Escapes `text` as a JSON string body (no surrounding quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number: finite values print round-trippably,
/// non-finite values (which JSON cannot represent) clamp to `0`.
pub fn number(value: f64) -> String {
    if value.is_finite() {
        let text = format!("{value}");
        // `{}` on f64 is shortest-round-trip in Rust, and never produces
        // `inf`/`NaN` for finite inputs; integral values print without a dot,
        // which JSON accepts.
        text
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, -2.5e3, "x\n\"y\""], "b": {"t": true, "n": null}, "c": 0}"#;
        let value = parse(doc).expect("valid JSON");
        assert_eq!(value.get("c").and_then(JsonValue::as_f64), Some(0.0));
        let items = value.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(items[1].as_f64(), Some(-2500.0));
        assert_eq!(items[2].as_str(), Some("x\n\"y\""));
        assert_eq!(value.get("b").and_then(|b| b.get("t")), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("b").and_then(|b| b.get("n")), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "01x", "\"unterminated", "{} trailing", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nbreak\t\"quote\" \\slash \u{0007} π";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let value = parse(&doc).expect("escaped string parses");
        assert_eq!(value.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn number_formatting_round_trips() {
        for v in [0.0, 1.5, -2.25e-9, 1234567.0, f64::MAX] {
            let text = number(v);
            let parsed = parse(&text).expect("number parses").as_f64().expect("number");
            assert_eq!(parsed, v);
        }
        assert_eq!(number(f64::INFINITY), "0");
    }
}
