//! 3-component double-precision vectors.
//!
//! [`Vec3`] is the coordinate/force/gradient type used throughout the workspace.
//! It is a plain `Copy` struct of three `f64`s so that arrays of coordinates are
//! laid out contiguously and iterate cache-friendly, which matters for the
//! non-bonded inner loops of the energy evaluator.

use crate::Real;
use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-component vector of [`Real`] values.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: Real,
    /// Y component.
    pub y: Real,
    /// Z component.
    pub z: Real,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along X.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: Real, y: Real, z: Real) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: Real) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> Real {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm. Preferred in distance cutoffs to avoid the sqrt.
    #[inline]
    pub fn norm_sq(self) -> Real {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> Real {
        self.norm_sq().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, rhs: Vec3) -> Real {
        (self - rhs).norm_sq()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> Real {
        self.distance_sq(rhs).sqrt()
    }

    /// Returns the vector scaled to unit length. Returns the zero vector when the
    /// norm is (numerically) zero, so callers never divide by zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n <= Real::EPSILON {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Linear interpolation between `self` (t = 0) and `rhs` (t = 1).
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: Real) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Returns `[x, y, z]` as an array.
    #[inline]
    pub fn to_array(self) -> [Real; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [Real; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The centroid (arithmetic mean) of a set of points; [`Vec3::ZERO`] for an empty set.
    pub fn centroid(points: &[Vec3]) -> Vec3 {
        if points.is_empty() {
            return Vec3::ZERO;
        }
        let sum: Vec3 = points.iter().copied().sum();
        sum / points.len() as Real
    }

    /// Axis-aligned bounding box of a set of points as `(min, max)`.
    /// Returns `(ZERO, ZERO)` for an empty set.
    pub fn bounding_box(points: &[Vec3]) -> (Vec3, Vec3) {
        match points.first() {
            None => (Vec3::ZERO, Vec3::ZERO),
            Some(&first) => {
                points.iter().fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)))
            }
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<Real> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Real) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for Real {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<Real> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: Real) {
        *self = *self * rhs;
    }
}

impl Div<Real> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: Real) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<Real> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: Real) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |acc, v| acc + v)
    }
}

impl Index<usize> for Vec3 {
    type Output = Real;
    #[inline]
    fn index(&self, idx: usize) -> &Real {
        match idx {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {idx}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, idx: usize) -> &mut Real {
        match idx {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {idx}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(approx_eq(v.dot(v), v.norm_sq(), 1e-12));
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx_eq(v.norm(), 5.0, 1e-12));
        assert!(approx_eq(v.distance(Vec3::ZERO), 5.0, 1e-12));
        assert!(approx_eq(v.distance_sq(Vec3::ZERO), 25.0, 1e-12));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(1.0, -2.0, 2.5);
        assert!(approx_eq(v.normalized().norm(), 1.0, 1e-12));
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
        v -= Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(v, Vec3::new(1.0, 2.0, 3.0));
        v *= 2.0;
        assert_eq!(v, Vec3::new(2.0, 4.0, 6.0));
        v /= 2.0;
        assert_eq!(v, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn centroid_and_bbox() {
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 2.0, 2.0), Vec3::new(4.0, -2.0, 1.0)];
        let c = Vec3::centroid(&pts);
        assert!(approx_eq(c.x, 2.0, 1e-12));
        assert!(approx_eq(c.y, 0.0, 1e-12));
        assert!(approx_eq(c.z, 1.0, 1e-12));
        let (lo, hi) = Vec3::bounding_box(&pts);
        assert_eq!(lo, Vec3::new(0.0, -2.0, 0.0));
        assert_eq!(hi, Vec3::new(4.0, 2.0, 2.0));
        assert_eq!(Vec3::centroid(&[]), Vec3::ZERO);
        assert_eq!(Vec3::bounding_box(&[]), (Vec3::ZERO, Vec3::ZERO));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn sum_iterator() {
        let pts = vec![Vec3::X, Vec3::Y, Vec3::Z];
        let s: Vec3 = pts.into_iter().sum();
        assert_eq!(s, Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
