//! The end-to-end FTMap pipeline.
//!
//! For each probe in the library: rigid-dock it against the protein, build a complex
//! for each retained pose, minimize the complexes, and feed the minimized pose centres
//! into consensus clustering. [`PipelineMode::Serial`] reproduces the structure of the
//! original single-core FTMap; [`PipelineMode::Accelerated`] uses the paper's GPU
//! mapping (device model) for both phases.
//!
//! Both phases choose their engine through one seam: a [`PipelineMode`] maps to a
//! [`gpu_sim::ExecutionBackend`], and each phase's engine enum implements
//! [`gpu_sim::BackendSelect`] — the pipeline never hand-picks per-phase engines.
//!
//! [`PipelineMode::Sharded`] adds the execution axis the single-device modes
//! lack: the probe library is sharded over a [`DevicePool`] by the
//! work-stealing [`ShardQueue`], so probe A's docking and minimization overlap
//! with probe B's on another device, and each device's host↔device transfers
//! overlap with its compute through the stream model. Results are bit-identical
//! to [`PipelineMode::Accelerated`] — sharding changes where and when work
//! runs, never what it computes.

use crate::cluster::{cluster_poses, ClusterInput, ConsensusSite};
use crate::profile::{DeviceLoad, MappingProfile, PhaseStream};
use ftmap_energy::minimize::{MinimizationConfig, Minimizer};
use ftmap_math::{RotationSet, Vec3};
use ftmap_molecule::{Complex, ForceField, Probe, ProbeLibrary, ProbeType, SyntheticProtein};
use gpu_sim::sched::{pose_blocks, DevicePool, ShardQueue, WorkItem};
use gpu_sim::{wall_timed, BackendSelect, Device, ExecutionBackend};
use piper_dock::{Docking, DockingConfig, DockingRun};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Arc;

/// Whether the pipeline uses the original serial engines, the accelerated ones,
/// or the accelerated ones sharded over a device pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Serial FFT docking + host minimization (the original FTMap structure).
    Serial,
    /// GPU direct-correlation docking + GPU minimization kernels (the paper's system).
    Accelerated,
    /// The accelerated engines, with the workload sharded over a pool of
    /// devices (work-stealing, stream-overlapped transfers, deterministic
    /// output order).
    Sharded {
        /// Number of Tesla-class devices in the default pool.
        devices: usize,
        /// Scheduling granularity of the minimization phase: retained poses
        /// per work item. `0` shards at whole-probe granularity (dock +
        /// minimize fused into one item per probe — the coarse schedule);
        /// any positive value splits each docked probe's retained poses into
        /// blocks of at most `pose_block` poses, scheduled independently
        /// after a dock-once phase, so one probe's 2000 minimizations spread
        /// across the pool.
        pose_block: usize,
    },
}

/// Default pose-block size for pose-granularity sharding: 50 poses per block
/// gives the paper-scale probe (500 rotations × 4 retained poses = 2000
/// conformations) 40 schedulable blocks — fine enough to fill an 8-device
/// pool from a single probe, coarse enough that per-block overhead stays
/// negligible.
pub const DEFAULT_POSE_BLOCK: usize = 50;

impl PipelineMode {
    /// Pose-granularity sharding over `devices` Tesla-class devices with the
    /// default block size ([`DEFAULT_POSE_BLOCK`]).
    pub fn sharded(devices: usize) -> Self {
        PipelineMode::Sharded { devices, pose_block: DEFAULT_POSE_BLOCK }
    }

    /// The pose-block size this mode schedules minimization at (0 = whole-
    /// probe granularity; also 0 for the single-device modes, which have no
    /// scheduler).
    pub fn pose_block(self) -> usize {
        match self {
            PipelineMode::Serial | PipelineMode::Accelerated => 0,
            PipelineMode::Sharded { pose_block, .. } => pose_block,
        }
    }
    /// The execution backend this mode runs both phases on.
    pub fn backend(self) -> ExecutionBackend {
        match self {
            PipelineMode::Serial => ExecutionBackend::Cpu,
            PipelineMode::Accelerated | PipelineMode::Sharded { .. } => ExecutionBackend::Gpu,
        }
    }

    /// Number of devices this mode runs on.
    pub fn device_count(self) -> usize {
        match self {
            PipelineMode::Serial | PipelineMode::Accelerated => 1,
            PipelineMode::Sharded { devices, .. } => devices.max(1),
        }
    }

    /// Selects a phase engine for this mode through the backend seam.
    pub fn select<T: BackendSelect>(self) -> T {
        T::for_backend(self.backend())
    }
}

impl From<ExecutionBackend> for PipelineMode {
    fn from(backend: ExecutionBackend) -> Self {
        match backend {
            ExecutionBackend::Cpu => PipelineMode::Serial,
            ExecutionBackend::Gpu => PipelineMode::Accelerated,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtMapConfig {
    /// Docking configuration (grid size, rotations, retained poses, engine is overridden
    /// by the pipeline mode).
    pub docking: DockingConfig,
    /// Minimization configuration (evaluation path is overridden by the pipeline mode).
    pub minimization: MinimizationConfig,
    /// Number of top docked poses minimized per probe (FTMap minimizes all retained
    /// poses — 2000 per probe; scaled configurations minimize fewer).
    pub conformations_per_probe: usize,
    /// Clustering radius in Å for consensus-site detection.
    pub cluster_radius: f64,
    /// Pipeline mode.
    pub mode: PipelineMode,
}

impl FtMapConfig {
    /// The paper-scale configuration (500 rotations × 4 poses = 2000 conformations per
    /// probe, 128³ grids are reduced to 64³ to keep host memory modest).
    pub fn paper_scale(mode: PipelineMode) -> Self {
        FtMapConfig {
            docking: DockingConfig { engine: mode.select(), ..DockingConfig::default() },
            minimization: MinimizationConfig {
                path: mode.select(),
                ..MinimizationConfig::default()
            },
            conformations_per_probe: 2000,
            cluster_radius: 4.0,
            mode,
        }
    }

    /// A scaled-down configuration for tests and examples.
    pub fn small_test(mode: PipelineMode) -> Self {
        FtMapConfig {
            docking: DockingConfig::small_test(mode.select()),
            minimization: MinimizationConfig {
                max_iterations: 10,
                ..MinimizationConfig::small_test(mode.select())
            },
            conformations_per_probe: 3,
            cluster_radius: 6.0,
            mode,
        }
    }

    /// A scaled-down configuration addressed by backend rather than mode.
    pub fn small_test_on(backend: ExecutionBackend) -> Self {
        Self::small_test(backend.into())
    }

    /// Applies a [`DegradePolicy`] to this configuration, returning the
    /// degraded copy plus a record of what changed. Degradation only ever
    /// shrinks the per-request work knobs (`docking.n_rotations`,
    /// `conformations_per_probe`); grid geometry, probes and clustering are
    /// untouched, so the degraded request still batches with its siblings
    /// (the receptor fingerprint depends only on grid geometry and atoms).
    pub fn degraded(&self, policy: &DegradePolicy) -> (FtMapConfig, AppliedDegrade) {
        let scale = |from: usize, factor: f64, floor: usize| -> usize {
            let scaled = (from as f64 * factor.clamp(0.0, 1.0)).ceil() as usize;
            scaled.max(floor.min(from)).min(from)
        };
        let from_rot = self.docking.n_rotations;
        let to_rot = scale(from_rot, policy.rotation_factor, policy.min_rotations);
        let from_conf = self.conformations_per_probe;
        let mut to_conf = scale(from_conf, policy.conformation_factor, policy.min_conformations);
        // Fewer rotations also means fewer retained docked poses; never ask
        // minimization for more conformations than docking can retain.
        let retained = to_rot.saturating_mul(self.docking.poses_per_rotation);
        if retained > 0 {
            to_conf = to_conf.min(retained);
        }
        let mut config = self.clone();
        config.docking.n_rotations = to_rot;
        config.conformations_per_probe = to_conf;
        (
            config,
            AppliedDegrade { rotations: (from_rot, to_rot), conformations: (from_conf, to_conf) },
        )
    }
}

/// How far an admission controller may degrade a request whose deadline is
/// otherwise unmeetable: multiplicative reductions of the two per-request
/// work knobs, each with a floor. `Default` halves both with conservative
/// floors; a policy with both factors at `1.0` never degrades anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradePolicy {
    /// Multiplier applied to `docking.n_rotations` (clamped to `(0, 1]`).
    pub rotation_factor: f64,
    /// Rotations are never reduced below this floor.
    pub min_rotations: usize,
    /// Multiplier applied to `conformations_per_probe`.
    pub conformation_factor: f64,
    /// Conformations are never reduced below this floor.
    pub min_conformations: usize,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            rotation_factor: 0.5,
            min_rotations: 8,
            conformation_factor: 0.5,
            min_conformations: 1,
        }
    }
}

/// What [`FtMapConfig::degraded`] actually changed, as `(from, to)` pairs —
/// carried on the admission verdict so clients know what accuracy they
/// traded for latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppliedDegrade {
    /// `docking.n_rotations` before and after.
    pub rotations: (usize, usize),
    /// `conformations_per_probe` before and after.
    pub conformations: (usize, usize),
}

impl AppliedDegrade {
    /// True when the policy could not reduce anything (already at floors).
    pub fn is_noop(&self) -> bool {
        self.rotations.0 == self.rotations.1 && self.conformations.0 == self.conformations.1
    }

    /// Predicted work ratio of the degraded request versus the original:
    /// docking scales with rotations, minimization with conformations; the
    /// combined factor assumes the two phases contribute equally, which is
    /// what an estimator without per-phase costs should assume. Estimators
    /// with a calibrated per-phase model should use the `(from, to)` pairs
    /// directly instead.
    pub fn cost_factor(&self) -> f64 {
        let ratio = |(from, to): (usize, usize)| {
            if from == 0 {
                1.0
            } else {
                to as f64 / from as f64
            }
        };
        0.5 * ratio(self.rotations) + 0.5 * ratio(self.conformations)
    }
}

/// Result of mapping one protein with a probe library.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// Ranked consensus sites (hotspot candidates).
    pub sites: Vec<ConsensusSite>,
    /// Number of conformations minimized in total.
    pub conformations_minimized: usize,
    /// Per-phase profile (summed over probes).
    pub profile: MappingProfile,
    /// Minimized pose centres per probe type (for inspection / examples).
    pub pose_centers: Vec<(ProbeType, Vec3)>,
}

impl MappingResult {
    /// The top-ranked hotspot centre, if any site was found.
    pub fn top_hotspot(&self) -> Option<Vec3> {
        self.sites.first().map(|s| s.cluster.center)
    }
}

/// Everything one probe contributes to a mapping run (the shard unit).
///
/// Public because queued-job consumers (the `ftmap-serve` batch service)
/// schedule probes from *several* jobs through one [`ShardQueue`] execution and
/// assemble each job's result themselves from its shards. Under pose-block
/// scheduling a `ProbeShard` is also the *partial* product of one block
/// ([`FtMapPipeline::minimize_pose_block`]); partials fold with
/// [`ProbeShard::absorb`].
pub struct ProbeShard {
    /// The probe's phase profile.
    pub profile: MappingProfile,
    /// Minimized pose centres, ready for consensus clustering.
    pub inputs: Vec<ClusterInput>,
    /// Conformations minimized for this probe.
    pub conformations: usize,
    /// Pure modeled kernel seconds (transfers excluded) — what the shard
    /// queue's stream model charges to the compute stage.
    pub kernel_modeled_s: f64,
}

impl ProbeShard {
    /// Folds a later partial (the next pose block, in pose order) into this
    /// shard: profiles accumulate, cluster inputs concatenate.
    pub fn absorb(&mut self, block: ProbeShard) {
        self.profile.merge(&block.profile);
        self.inputs.extend(block.inputs);
        self.conformations += block.conformations;
        self.kernel_modeled_s += block.kernel_modeled_s;
    }
}

/// The dock-once phase product for one probe: the retained poses plus
/// everything a pose block needs to minimize any slice of them on any pooled
/// device — the probe itself, the rotation set the run was scored with, and
/// the docking-phase profile.
///
/// Public for the same reason as [`ProbeShard`]: the batch service docks every
/// job's probes in one sharded phase, then interleaves all jobs' pose blocks
/// in a second.
pub struct DockedProbe {
    probe: Probe,
    run: DockingRun,
    rotations: Arc<RotationSet>,
    /// Docking-phase times only (minimization accrues on the blocks).
    profile: MappingProfile,
    /// Pure modeled docking kernel seconds (transfers excluded).
    kernel_modeled_s: f64,
}

impl DockedProbe {
    /// Total retained poses of the docking run (before the
    /// `conformations_per_probe` cap — see
    /// [`FtMapPipeline::retained_pose_count`]).
    pub fn pose_count(&self) -> usize {
        self.run.poses.len()
    }

    /// Pure modeled docking kernel seconds — the dock item's compute-stage
    /// figure for the shard queue.
    pub fn kernel_modeled_s(&self) -> f64 {
        self.kernel_modeled_s
    }

    /// The dock phase's contribution as a shard seed: docking profile and
    /// kernel seconds, no minimized poses yet. Pose blocks fold in — in pose
    /// order — via [`ProbeShard::absorb`].
    pub fn to_shard(&self) -> ProbeShard {
        ProbeShard {
            profile: self.profile.clone(),
            inputs: Vec::new(),
            conformations: 0,
            kernel_modeled_s: self.kernel_modeled_s,
        }
    }
}

/// The FTMap pipeline over one protein.
///
/// Cloning is cheap where it matters: the pool and the receptor grids are
/// shared `Arc`s, so a clone schedules onto the same devices and borrows the
/// same resident grids — which is what lets a pipeline be moved into a
/// long-lived phased batch ([`crate::phased::PhasedMapBatch`]) while the
/// caller keeps its own handle.
#[derive(Clone)]
pub struct FtMapPipeline {
    protein: SyntheticProtein,
    ff: ForceField,
    config: FtMapConfig,
    pool: Arc<DevicePool>,
    /// Receptor grids built once per pipeline (host side). Per-probe docking
    /// contexts borrow these, and the device-side copy is managed by each
    /// device's residency cache — so N probes (or N queued jobs) against one
    /// receptor cost one host build and one upload per device.
    receptor: Arc<piper_dock::ReceptorGrids>,
}

impl FtMapPipeline {
    /// Creates a pipeline for the given protein, with a Tesla-class pool sized
    /// by the configured mode (1 device for the single-device modes,
    /// `devices` for [`PipelineMode::Sharded`]).
    pub fn new(protein: SyntheticProtein, ff: ForceField, config: FtMapConfig) -> Self {
        let pool = DevicePool::tesla(config.mode.device_count());
        Self::with_pool(protein, ff, config, pool)
    }

    /// Creates a pipeline on an explicit (possibly heterogeneous) device pool.
    pub fn with_pool(
        protein: SyntheticProtein,
        ff: ForceField,
        config: FtMapConfig,
        pool: DevicePool,
    ) -> Self {
        Self::with_shared_pool(protein, ff, config, Arc::new(pool))
    }

    /// Creates a pipeline on a pool shared with other consumers — the entry
    /// point for queued jobs: a batch-mapping service hands every job pipeline
    /// the same pool handle, so all jobs' shards land on the same devices (and
    /// the same residency caches).
    pub fn with_shared_pool(
        protein: SyntheticProtein,
        ff: ForceField,
        config: FtMapConfig,
        pool: Arc<DevicePool>,
    ) -> Self {
        let receptor = Docking::build_receptor(&protein.atoms, &config.docking);
        Self::with_shared_resources(protein, ff, config, pool, receptor)
    }

    /// Creates a pipeline from prebuilt receptor grids on a shared pool —
    /// lets a service memoize the host-side grid build across jobs for the
    /// same receptor content.
    pub fn with_shared_resources(
        protein: SyntheticProtein,
        ff: ForceField,
        config: FtMapConfig,
        pool: Arc<DevicePool>,
        receptor: Arc<piper_dock::ReceptorGrids>,
    ) -> Self {
        FtMapPipeline { protein, ff, config, pool, receptor }
    }

    /// The configuration.
    pub fn config(&self) -> &FtMapConfig {
        &self.config
    }

    /// The protein being mapped.
    pub fn protein(&self) -> &SyntheticProtein {
        &self.protein
    }

    /// The device pool this pipeline executes on.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The shared handle to the device pool (for co-scheduling other work).
    pub fn shared_pool(&self) -> &Arc<DevicePool> {
        &self.pool
    }

    /// The receptor grids every probe of this pipeline docks against.
    pub fn receptor(&self) -> &Arc<piper_dock::ReceptorGrids> {
        &self.receptor
    }

    /// Maps the protein with every probe in `library`.
    ///
    /// Resets the pool's transfer accounting at the start of the run, so the
    /// pool must not be executing other work concurrently (the batch service
    /// serializes batches for exactly this reason); grid residency survives
    /// the reset.
    pub fn map(&self, library: &ProbeLibrary) -> MappingResult {
        // Pooled devices outlive runs: reset their transfer accounting so a
        // previous run's transfers cannot leak into this run's overlap model.
        self.pool.reset_transfer_stats();
        match self.config.mode {
            PipelineMode::Sharded { .. } => self.map_sharded(library),
            PipelineMode::Serial | PipelineMode::Accelerated => self.map_single(library),
        }
    }

    /// Maps the protein through the cross-batch phased scheduler
    /// ([`gpu_sim::sched::PhasePipeline`]) instead of the barriered shard
    /// queue: every probe's pose blocks become runnable the moment *its own*
    /// dock lands, so the dock and minimize phases overlap across probes —
    /// there is no batch-wide phase barrier. Results are **bit-identical** to
    /// [`FtMapPipeline::map`]; only the schedule (and therefore the modeled
    /// makespan and [`MappingProfile::pipeline_overlap_saved_s`]) changes.
    ///
    /// Spins a dedicated dispatcher on this pipeline's pool for the one run;
    /// services that keep a dispatcher alive across batches use
    /// [`FtMapPipeline::map_with_dispatcher`] directly.
    pub fn map_pipelined(&self, library: &ProbeLibrary) -> MappingResult {
        self.map_pipelined_traced(library, ftmap_trace::noop())
    }

    /// [`FtMapPipeline::map_pipelined`] with a trace sink: the one-run
    /// dispatcher records every scheduler, kernel, transfer and cache event
    /// into `sink` on the modeled virtual timeline (see `ftmap_trace`).
    pub fn map_pipelined_traced(
        &self,
        library: &ProbeLibrary,
        sink: Arc<dyn ftmap_trace::TraceSink>,
    ) -> MappingResult {
        self.pool.reset_transfer_stats();
        let sched = gpu_sim::sched::PhasePipeline::with_trace(Arc::clone(&self.pool), sink);
        let result = self.map_with_dispatcher(library, &sched, 0);
        sched.shutdown();
        result
    }

    /// Runs this mapping as one batch on a shared phased dispatcher at the
    /// given priority (lower is more urgent), blocking until it completes.
    /// The dispatcher must schedule onto this pipeline's pool.
    pub fn map_with_dispatcher(
        &self,
        library: &ProbeLibrary,
        sched: &gpu_sim::sched::PhasePipeline,
        priority: u32,
    ) -> MappingResult {
        let entries: Vec<(usize, Probe)> =
            library.probes().iter().map(|p| (0usize, p.clone())).collect();
        let pose_block = self.config.mode.pose_block();
        let batch =
            Arc::new(crate::phased::PhasedMapBatch::new(vec![self.clone()], entries, pose_block));
        let handle = sched.submit(
            gpu_sim::sched::PhasedBatch {
                label: Default::default(),
                entry_traces: Vec::new(),
                priority,
                entries: batch.entries(),
                dock_weights: batch.dock_weights(),
                exec: Arc::clone(&batch) as Arc<dyn gpu_sim::sched::PhasedExec>,
            },
            None,
        );
        let report = handle.wait();
        let shards = batch.take_shards().into_iter().map(|(_, shard)| shard).collect();
        let loads = report.per_device.iter().map(DeviceLoad::from).collect();
        let mut result = self.assemble(shards, loads, Vec::new());
        result.profile.pipeline_overlap_saved_s = report.overlap_saved_s();
        result.profile.phase_streams = vec![
            PhaseStream::from_streams("dock", report.per_device.iter().map(|d| &d.dock)),
            PhaseStream::from_streams("minimize", report.per_device.iter().map(|d| &d.minimize)),
        ];
        result
    }

    /// The single-device probe loop (serial and accelerated modes).
    fn map_single(&self, library: &ProbeLibrary) -> MappingResult {
        let device = self.pool.device(0);
        let shards = library.probes().iter().map(|probe| self.map_probe_on(probe, device));
        self.assemble(shards.collect(), Vec::new(), Vec::new())
    }

    /// The sharded loop: one work-stealing worker per pooled device, at the
    /// granularity the mode selects. Either way results are assembled in
    /// `(probe, pose)` order regardless of which device serviced what, so the
    /// output is identical to the single-device accelerated run.
    fn map_sharded(&self, library: &ProbeLibrary) -> MappingResult {
        match self.config.mode.pose_block() {
            0 => self.map_probe_sharded(library),
            block => self.map_pose_sharded(library, block),
        }
    }

    /// Whole-probe granularity: dock + minimize fused into one work item per
    /// probe. One hot probe serializes on a single device — kept as the
    /// coarse comparator (`pose_block: 0`) and for probe-rich workloads.
    fn map_probe_sharded(&self, library: &ProbeLibrary) -> MappingResult {
        let queue = ShardQueue::new(&self.pool);
        let items: Vec<&Probe> = library.probes().iter().collect();
        let outcome = queue.execute(items, |ctx, probe| {
            let shard = self.map_probe_on(probe, ctx.device);
            let kernel_s = shard.kernel_modeled_s;
            (shard, kernel_s)
        });
        let loads = outcome.reports.iter().map(DeviceLoad::from).collect();
        let streams =
            vec![PhaseStream::from_streams("fused", outcome.reports.iter().map(|r| &r.stream))];
        let mut result = self.assemble(outcome.results, loads, Vec::new());
        result.profile.phase_streams = streams;
        result
    }

    /// Pose-block granularity: a dock-once phase (one item per probe) and a
    /// minimize phase (one item per pose block, across **all** probes,
    /// weighted by pose count) — so a single probe's retained poses spread
    /// over the whole pool. The two phases are barrier-separated: every block
    /// needs its probe's dock result, so the modeled makespan is the sum of
    /// the two phase makespans.
    fn map_pose_sharded(&self, library: &ProbeLibrary, pose_block: usize) -> MappingResult {
        let queue = ShardQueue::new(&self.pool);

        // Phase 1: dock every probe once, sharded over the pool.
        let probes: Vec<&Probe> = library.probes().iter().collect();
        let dock = queue.execute(probes, |ctx, probe| {
            let docked = self.dock_probe_shard(probe, ctx.device);
            let kernel_s = docked.kernel_modeled_s;
            (docked, kernel_s)
        });

        // Phase 2: minimize pose blocks from all probes, interleaved.
        let phase = minimize_pose_blocks(
            &queue,
            &dock.results,
            pose_block,
            &|docked| self.retained_pose_count(docked),
            &|ctx, docked, range| self.minimize_pose_block(docked, range, ctx.device),
        );
        let phase_makespans = vec![dock.makespan_s(), phase.makespan_s];
        let phase_streams = vec![
            PhaseStream::from_streams("dock", dock.reports.iter().map(|r| &r.stream)),
            PhaseStream::from_streams("minimize", phase.reports.iter().map(|r| &r.stream)),
        ];
        let loads = dock
            .reports
            .iter()
            .zip(&phase.reports)
            .map(|(d, m)| DeviceLoad::from_phases(d, m))
            .collect();
        let shards = dock.results.iter().map(DockedProbe::to_shard).zip(phase.block_folds).map(
            |(mut shard, fold)| {
                shard.absorb(fold);
                shard
            },
        );
        let mut result = self.assemble(shards.collect(), loads, phase_makespans);
        result.profile.phase_streams = phase_streams;
        result
    }

    /// Folds per-probe shards (in library order) into the mapping result.
    fn assemble(
        &self,
        shards: Vec<ProbeShard>,
        device_loads: Vec<DeviceLoad>,
        phase_makespans: Vec<f64>,
    ) -> MappingResult {
        let mut profile = MappingProfile::default();
        let mut cluster_inputs: Vec<ClusterInput> = Vec::new();
        let mut pose_centers = Vec::new();
        let mut conformations = 0usize;
        for shard in shards {
            profile.merge(&shard.profile);
            conformations += shard.conformations;
            for input in &shard.inputs {
                pose_centers.push((input.probe, input.center));
            }
            cluster_inputs.extend(shard.inputs);
        }
        profile.device_loads = device_loads;
        profile.phase_makespans_modeled_s = phase_makespans;
        let sites = cluster_poses(&cluster_inputs, self.config.cluster_radius);
        MappingResult { sites, conformations_minimized: conformations, profile, pose_centers }
    }

    /// Maps a single probe: dock, minimize the top conformations, return cluster inputs.
    pub fn map_probe(
        &self,
        probe: &Probe,
        conformations: &mut usize,
    ) -> (MappingProfile, Vec<ClusterInput>) {
        let shard = self.map_probe_on(probe, self.pool.device(0));
        *conformations += shard.conformations;
        (shard.profile, shard.inputs)
    }

    /// Maps a single probe on the given pooled device, returning its shard —
    /// the queued-job entry: a batch service schedules `(job, probe)` pairs
    /// from many jobs through one [`ShardQueue`] with this as the work body,
    /// then assembles each job's result from its own shards.
    pub fn map_probe_shard(&self, probe: &Probe, device: &Arc<Device>) -> ProbeShard {
        self.map_probe_on(probe, device)
    }

    /// Maps a single probe on the given pooled device: the fused
    /// dock-then-minimize-everything path, expressed as a dock phase plus one
    /// full-range pose block so both granularities share every line of the
    /// actual work.
    fn map_probe_on(&self, probe: &Probe, device: &Arc<Device>) -> ProbeShard {
        let docked = self.dock_probe_shard(probe, device);
        let n_conf = self.retained_pose_count(&docked);
        let block = self.minimize_pose_block(&docked, 0..n_conf, device);
        let mut shard = docked.to_shard();
        shard.absorb(block);
        shard
    }

    /// The dock-once phase for one probe on the given pooled device: rigid
    /// docking only, returning everything the minimize phase needs to work on
    /// any slice of the retained poses. The receptor grids are the pipeline's
    /// prebuilt set; the device-resident copy comes from the residency cache
    /// (upload charged on first sighting only).
    pub fn dock_probe_shard(&self, probe: &Probe, device: &Arc<Device>) -> DockedProbe {
        let mut profile = MappingProfile::default();
        let docking = Docking::from_grids(
            Arc::clone(&self.receptor),
            self.config.docking.clone(),
            Arc::clone(device),
        );
        let (run, dock_wall_s) = wall_timed(|| docking.run(probe));
        profile.docking_wall_s += dock_wall_s;
        profile.docking_modeled_s += run.modeled.total();
        // Pure kernel time for the stream model: the run reports how much
        // transfer time it folded into its modeled steps, so those seconds are
        // counted by the transfer stages, not the compute stage.
        let kernel_modeled_s = run.modeled.total() - run.modeled_transfer_s;
        let rotations = Arc::clone(docking.rotations_arc());
        DockedProbe { probe: probe.clone(), run, rotations, profile, kernel_modeled_s }
    }

    /// Retained poses this pipeline minimizes for a docked probe — the range
    /// pose blocks partition (`0..retained_pose_count`).
    pub fn retained_pose_count(&self, docked: &DockedProbe) -> usize {
        self.config.conformations_per_probe.min(docked.run.poses.len())
    }

    /// Minimizes one contiguous block of a docked probe's retained poses on
    /// the given pooled device, returning the block's partial shard.
    ///
    /// Every pose is minimized independently (its own complex, its own
    /// descent), so a probe's blocks can run on different devices in any
    /// order and still fold — in pose order, via [`ProbeShard::absorb`] —
    /// into bit-identical cluster inputs to the fused path.
    pub fn minimize_pose_block(
        &self,
        docked: &DockedProbe,
        pose_range: Range<usize>,
        device: &Arc<Device>,
    ) -> ProbeShard {
        let mut profile = MappingProfile::default();
        let minimizer = Minimizer::new(self.ff.clone(), self.config.minimization);
        let mut inputs = Vec::new();
        let mut conformations = 0usize;
        let mut kernel_modeled_s = 0.0;
        let centered: Vec<Vec3> = docked.probe.atoms.iter().map(|a| a.position).collect();
        for pose_index in pose_range {
            let placed = docked.run.place_pose(&docked.rotations, &centered, pose_index);
            let mut posed_probe = docked.probe.clone();
            for (atom, new_pos) in posed_probe.atoms.iter_mut().zip(&placed) {
                atom.position = *new_pos;
            }
            let mut complex = Complex::new(&self.protein, &posed_probe);

            let (result, minimize_wall_s) = wall_timed(|| minimizer.minimize(&mut complex, device));
            profile.minimization_wall_s += minimize_wall_s;
            let modeled_s = match self.config.mode {
                PipelineMode::Accelerated | PipelineMode::Sharded { .. } => {
                    result.modeled_kernel_total_s()
                }
                // For the serial pipeline the host evaluation *is* the measured work;
                // use the measured evaluation time as the modeled serial time.
                PipelineMode::Serial => result.evaluation_time_s + result.update_time_s,
            };
            profile.minimization_modeled_s += modeled_s;
            // Minimization kernel times carry no transfers, so the stream
            // model's compute stage gets the same figure.
            kernel_modeled_s += modeled_s;
            conformations += 1;

            inputs.push(ClusterInput {
                probe: docked.probe.probe_type,
                center: complex.probe_centroid(),
                energy: result.final_energy,
            });
        }
        ProbeShard { profile, inputs, conformations, kernel_modeled_s }
    }
}

/// What the minimize phase of a pose-block schedule produced.
pub struct MinimizePhase {
    /// One fold per docked entry, in entry order: that entry's pose blocks
    /// absorbed in `(entry, pose)` order. Absorb each fold onto its dock-phase
    /// seed ([`DockedProbe::to_shard`]) to complete the entry's shard.
    pub block_folds: Vec<ProbeShard>,
    /// Per-device shard reports of the minimize execution, in pool order.
    pub reports: Vec<gpu_sim::sched::DeviceShardReport>,
    /// Modeled makespan of the minimize execution.
    pub makespan_s: f64,
    /// Number of pose blocks scheduled.
    pub n_blocks: usize,
}

/// The minimize phase of a pose-block schedule, shared by the sharded pipeline
/// and the `ftmap-serve` batch dispatcher so the two schedulers can never
/// diverge: lays [`pose_blocks`] out over `docked` entries (`retained` poses
/// each, in `(entry, pose)` order), executes them over `queue` weighted by
/// pose count, and folds each entry's block results back in submission order.
///
/// `docked` is whatever the dock-once phase produced — [`DockedProbe`]s for a
/// pipeline run, `(job, DockedProbe)` pairs for a service batch; `minimize`
/// maps one entry's pose range to its partial shard on the servicing device.
pub fn minimize_pose_blocks<D: Sync>(
    queue: &ShardQueue<'_>,
    docked: &[D],
    pose_block: usize,
    retained: &(dyn Fn(&D) -> usize + Sync),
    minimize: &(dyn Fn(&gpu_sim::sched::ShardCtx<'_>, &D, Range<usize>) -> ProbeShard + Sync),
) -> MinimizePhase {
    let counts: Vec<usize> = docked.iter().map(retained).collect();
    let layout = pose_blocks(&counts, pose_block);
    let items: Vec<(WorkItem, f64)> = layout.iter().map(|w| (w.clone(), w.weight())).collect();
    let outcome = queue.execute_weighted(items, |ctx, item| {
        let shard = minimize(ctx, &docked[item.probe_idx], item.pose_range.clone());
        let kernel_s = shard.kernel_modeled_s;
        (shard, kernel_s)
    });
    let makespan_s = outcome.makespan_s();

    // Block results arrive in submission order — `(entry, pose)` order — so a
    // linear scan folds each entry's blocks contiguously and in pose order.
    let mut blocks = layout.iter().zip(outcome.results).peekable();
    let block_folds = (0..docked.len())
        .map(|entry_idx| {
            let mut fold = ProbeShard {
                profile: MappingProfile::default(),
                inputs: Vec::new(),
                conformations: 0,
                kernel_modeled_s: 0.0,
            };
            while let Some((item, block)) = blocks.next_if(|(item, _)| item.probe_idx == entry_idx)
            {
                debug_assert_eq!(item.pose_range.start, fold.conformations);
                fold.absorb(block);
            }
            fold
        })
        .collect();
    MinimizePhase { block_folds, reports: outcome.reports, makespan_s, n_blocks: layout.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmap_molecule::{ProbeLibrary, ProteinSpec};
    use piper_dock::DockingEngineKind;

    fn small_pipeline(mode: PipelineMode) -> (FtMapPipeline, ProbeLibrary) {
        small_pipeline_with_engine(mode, mode.select::<DockingEngineKind>())
    }

    fn small_pipeline_with_engine(
        mode: PipelineMode,
        engine: DockingEngineKind,
    ) -> (FtMapPipeline, ProbeLibrary) {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Acetone]);
        let mut config = FtMapConfig::small_test(mode);
        config.docking.engine = engine;
        let pipeline = FtMapPipeline::new(protein, ff, config);
        (pipeline, library)
    }

    #[test]
    fn degrade_policy_shrinks_work_knobs_with_floors() {
        let config = FtMapConfig::paper_scale(PipelineMode::Accelerated);
        let (degraded, applied) = config.degraded(&DegradePolicy::default());
        assert_eq!(applied.rotations, (500, 250));
        assert_eq!(applied.conformations, (2000, 1000));
        assert_eq!(degraded.docking.n_rotations, 250);
        assert_eq!(degraded.conformations_per_probe, 1000);
        assert!(!applied.is_noop());
        assert!(applied.cost_factor() < 1.0);
        // Grid geometry is untouched — the degraded request still batches
        // with its undegraded siblings.
        assert_eq!(degraded.docking.grid_dim, config.docking.grid_dim);
        assert_eq!(degraded.docking.spacing, config.docking.spacing);
        assert_eq!(degraded.docking.n_desolv, config.docking.n_desolv);

        // Floors hold: an aggressive policy cannot go below them.
        let aggressive = DegradePolicy {
            rotation_factor: 0.001,
            min_rotations: 16,
            conformation_factor: 0.001,
            min_conformations: 2,
        };
        let (floored, applied) = config.degraded(&aggressive);
        assert_eq!(floored.docking.n_rotations, 16);
        assert_eq!(floored.conformations_per_probe, 2);
        assert!(applied.cost_factor() > 0.0);

        // A no-op policy reports itself as such.
        let noop = DegradePolicy {
            rotation_factor: 1.0,
            min_rotations: 0,
            conformation_factor: 1.0,
            min_conformations: 0,
        };
        let (same, applied) = config.degraded(&noop);
        assert!(applied.is_noop());
        assert_eq!(applied.cost_factor(), 1.0);
        assert_eq!(same.docking.n_rotations, config.docking.n_rotations);

        // Conformations never exceed what the degraded docking can retain.
        let mut tiny = FtMapConfig::small_test(PipelineMode::Accelerated);
        tiny.docking.n_rotations = 4;
        tiny.docking.poses_per_rotation = 1;
        tiny.conformations_per_probe = 4;
        let (degraded, _) = tiny.degraded(&DegradePolicy {
            rotation_factor: 0.5,
            min_rotations: 1,
            conformation_factor: 1.0,
            min_conformations: 1,
        });
        assert!(
            degraded.conformations_per_probe
                <= degraded.docking.n_rotations * degraded.docking.poses_per_rotation
        );
    }

    #[test]
    fn serial_pipeline_produces_consensus_sites() {
        let (pipeline, library) = small_pipeline(PipelineMode::Serial);
        let result = pipeline.map(&library);
        assert!(result.conformations_minimized > 0);
        assert!(!result.sites.is_empty());
        assert!(result.top_hotspot().is_some());
        assert!(result.profile.total_wall_s() > 0.0);
        assert_eq!(
            result.conformations_minimized,
            library.len() * pipeline.config().conformations_per_probe
        );
        assert_eq!(result.pose_centers.len(), result.conformations_minimized);
    }

    #[test]
    fn accelerated_pipeline_produces_consensus_sites() {
        let (pipeline, library) = small_pipeline(PipelineMode::Accelerated);
        let result = pipeline.map(&library);
        assert!(!result.sites.is_empty());
        assert!(result.profile.docking_modeled_s > 0.0);
        assert!(result.profile.minimization_modeled_s > 0.0);
    }

    #[test]
    fn minimization_dominates_serial_wall_time() {
        // Fig. 2(a): minimization ≈93 % of the serial FTMap runtime. With the scaled
        // test configuration the exact split differs, but minimization (many
        // conformations × many iterations) must dominate docking.
        let (pipeline, library) = small_pipeline(PipelineMode::Serial);
        let result = pipeline.map(&library);
        let (dock_pct, min_pct) = result.profile.wall_percentages();
        assert!(min_pct > dock_pct, "docking {dock_pct}% vs minimization {min_pct}%");
    }

    #[test]
    fn accelerated_modeled_time_beats_serial_modeled_time() {
        // The overall §V.C claim in miniature: the accelerated pipeline's modeled time
        // is below the serial pipeline's modeled time on the same workload.
        let (serial, library) = small_pipeline(PipelineMode::Serial);
        let serial_result = serial.map(&library);
        let (accel, _) = small_pipeline(PipelineMode::Accelerated);
        let accel_result = accel.map(&library);
        assert!(
            accel_result.profile.total_modeled_s() < serial_result.profile.total_modeled_s(),
            "accelerated {} vs serial {}",
            accel_result.profile.total_modeled_s(),
            serial_result.profile.total_modeled_s()
        );
    }

    #[test]
    fn backend_seam_selects_both_phase_engines() {
        use ftmap_energy::minimize::EvaluationPath;
        // One ExecutionBackend value drives both per-phase engine choices.
        assert_eq!(PipelineMode::Serial.backend(), ExecutionBackend::Cpu);
        assert_eq!(PipelineMode::Accelerated.backend(), ExecutionBackend::Gpu);
        assert_eq!(
            PipelineMode::Serial.select::<DockingEngineKind>(),
            DockingEngineKind::FftSerial
        );
        assert!(matches!(
            PipelineMode::Accelerated.select::<DockingEngineKind>(),
            DockingEngineKind::Gpu { batch: piper_dock::docking::DEFAULT_GPU_BATCH }
        ));
        assert_eq!(PipelineMode::Serial.select::<EvaluationPath>(), EvaluationPath::Host);
        assert_eq!(PipelineMode::Accelerated.select::<EvaluationPath>(), EvaluationPath::Gpu);
        // Round-trips through the backend.
        for backend in ExecutionBackend::ALL {
            assert_eq!(PipelineMode::from(backend).backend(), backend);
            let cfg = FtMapConfig::small_test_on(backend);
            assert_eq!(cfg.mode.backend(), backend);
        }
    }

    #[test]
    fn sharded_mode_rides_the_gpu_backend() {
        let mode = PipelineMode::sharded(4);
        assert_eq!(mode.backend(), ExecutionBackend::Gpu);
        assert_eq!(mode.device_count(), 4);
        assert_eq!(mode.pose_block(), DEFAULT_POSE_BLOCK);
        assert_eq!(PipelineMode::Sharded { devices: 0, pose_block: 0 }.device_count(), 1);
        assert_eq!(PipelineMode::Accelerated.device_count(), 1);
        assert_eq!(PipelineMode::Accelerated.pose_block(), 0);
        assert_eq!(PipelineMode::Serial.pose_block(), 0);
        // The engine seam picks the same accelerated engines as Accelerated.
        assert!(matches!(
            mode.select::<DockingEngineKind>(),
            DockingEngineKind::Gpu { batch: piper_dock::docking::DEFAULT_GPU_BATCH }
        ));
    }

    #[test]
    fn sharded_pipeline_reports_per_device_loads() {
        // Both granularities must account every probe and report a coherent
        // makespan/skew view; the pose-block schedule additionally reports
        // its per-device block counts and its two phase makespans.
        for pose_block in [0usize, 1] {
            let (pipeline, library) =
                small_pipeline(PipelineMode::Sharded { devices: 2, pose_block });
            assert_eq!(pipeline.pool().len(), 2);
            let result = pipeline.map(&library);
            assert!(!result.sites.is_empty());
            let loads = &result.profile.device_loads;
            assert_eq!(loads.len(), 2);
            let serviced: usize = loads.iter().map(|l| l.probes).sum();
            assert_eq!(serviced, library.len(), "pose_block {pose_block}");
            let blocks: usize = loads.iter().map(|l| l.pose_blocks).sum();
            if pose_block == 0 {
                assert_eq!(blocks, 0, "probe granularity schedules no blocks");
                assert!(result.profile.phase_makespans_modeled_s.is_empty());
            } else {
                // Block size 1 ⇒ one block per minimized conformation.
                assert_eq!(blocks, result.conformations_minimized);
                assert_eq!(result.profile.phase_makespans_modeled_s.len(), 2);
                assert!(result.profile.phase_makespans_modeled_s.iter().all(|&m| m > 0.0));
            }
            // Every probe was worked somewhere and the makespan is positive
            // but no larger than the sum of the per-phase modeled totals.
            assert!(result.profile.makespan_modeled_s() > 0.0);
            assert!(
                result.profile.makespan_modeled_s()
                    <= result.profile.total_modeled_s() + result.profile.overlap_saved_s() + 1e-9,
                "pose_block {pose_block}"
            );
            assert!(result.profile.load_skew() >= 1.0 - 1e-12);
            assert_eq!(result.profile.device_utilizations().len(), 2);
        }
    }

    #[test]
    fn pose_block_scheduling_is_bit_identical_to_fused() {
        // The dock-once / minimize-pose-block split must reproduce the fused
        // path exactly: same sites, same pose centres, same energies.
        let (fused, library) = small_pipeline(PipelineMode::Accelerated);
        let reference = fused.map(&library);
        let (split, _) = small_pipeline(PipelineMode::Sharded { devices: 2, pose_block: 2 });
        let result = split.map(&library);
        assert_eq!(reference.conformations_minimized, result.conformations_minimized);
        assert_eq!(reference.pose_centers.len(), result.pose_centers.len());
        for ((pa, ca), (pb, cb)) in reference.pose_centers.iter().zip(&result.pose_centers) {
            assert_eq!(pa, pb);
            assert!(ca.x == cb.x && ca.y == cb.y && ca.z == cb.z);
        }
        assert_eq!(reference.sites.len(), result.sites.len());
        for (a, b) in reference.sites.iter().zip(&result.sites) {
            assert_eq!(a.rank, b.rank);
            assert!(a.cluster.center.distance(b.cluster.center) == 0.0);
        }
    }

    #[test]
    fn batched_fft_pipeline_is_bit_identical_across_batch_and_pool_sizes() {
        // The batched FFT engine must be a pure schedule change: swapping it
        // in for the per-rotation FFT engine — at any batch size, on any pool
        // size — reproduces the same poses, centres and consensus sites bit
        // for bit. (Satellite of the batched-FFT tentpole; the docking-level
        // twin lives in `piper_dock::docking`.)
        let (reference, library) =
            small_pipeline_with_engine(PipelineMode::Accelerated, DockingEngineKind::FftSerial);
        let expected = reference.map(&library);
        for devices in [1usize, 4] {
            for batch in [1usize, 7, 64] {
                let mode = match devices {
                    1 => PipelineMode::Accelerated,
                    n => PipelineMode::sharded(n),
                };
                let (pipeline, _) =
                    small_pipeline_with_engine(mode, DockingEngineKind::BatchedFft { batch });
                assert_eq!(pipeline.pool().len(), devices);
                let result = pipeline.map(&library);
                assert_eq!(
                    expected.conformations_minimized, result.conformations_minimized,
                    "devices {devices} batch {batch}"
                );
                assert_eq!(expected.pose_centers.len(), result.pose_centers.len());
                for ((pa, ca), (pb, cb)) in expected.pose_centers.iter().zip(&result.pose_centers) {
                    assert_eq!(pa, pb, "devices {devices} batch {batch}");
                    assert!(
                        ca.x == cb.x && ca.y == cb.y && ca.z == cb.z,
                        "devices {devices} batch {batch}: centre {ca:?} vs {cb:?}"
                    );
                }
                assert_eq!(expected.sites.len(), result.sites.len());
                for (a, b) in expected.sites.iter().zip(&result.sites) {
                    assert_eq!(a.rank, b.rank);
                    assert!(
                        a.cluster.center.distance(b.cluster.center) == 0.0,
                        "devices {devices} batch {batch}"
                    );
                }
            }
        }
    }

    #[test]
    fn dock_once_minimize_blocks_compose_into_the_probe_shard() {
        // The split API: docking once and minimizing in two blocks must fold
        // into exactly what the fused per-probe path produces.
        let (pipeline, library) = small_pipeline(PipelineMode::Accelerated);
        let probe = &library.probes()[0];
        let device = Arc::clone(pipeline.pool().device(0));
        let mut conformations = 0usize;
        let (_, fused_inputs) = pipeline.map_probe(probe, &mut conformations);
        let docked = pipeline.dock_probe_shard(probe, &device);
        let n_conf = pipeline.retained_pose_count(&docked);
        assert!(n_conf >= 2, "need at least two poses to split");
        assert!(docked.pose_count() >= n_conf);
        assert!(docked.kernel_modeled_s() > 0.0);
        let mut shard = pipeline.minimize_pose_block(&docked, 0..1, &device);
        shard.absorb(pipeline.minimize_pose_block(&docked, 1..n_conf, &device));
        assert_eq!(shard.conformations, conformations);
        assert_eq!(shard.inputs.len(), fused_inputs.len());
        for (a, b) in shard.inputs.iter().zip(&fused_inputs) {
            assert_eq!(a.probe, b.probe);
            assert!(a.center.x == b.center.x && a.center.y == b.center.y);
            assert!(a.energy == b.energy);
        }
    }

    #[test]
    fn repeated_runs_do_not_leak_transfer_stats() {
        // Pooled devices are reused across runs; `map` must reset their
        // transfer accounting so each run reports only its own transfers, not
        // an accumulation (regression test for the pool-reset audit). Run 1
        // additionally pays the one-time receptor upload (residency miss);
        // runs 2 and 3 hit the cache, so their transfer totals are identical
        // and smaller by exactly that upload.
        let (pipeline, library) = small_pipeline(PipelineMode::Accelerated);
        let device = Arc::clone(pipeline.pool().device(0));
        pipeline.map(&library);
        let after_first = pipeline.pool().total_transfer_time();
        pipeline.map(&library);
        let after_second = pipeline.pool().total_transfer_time();
        pipeline.map(&library);
        let after_third = pipeline.pool().total_transfer_time();
        assert!(after_first > 0.0);
        let receptor_upload_s = device
            .cost_model()
            .transfer_time(&gpu_sim::Transfer::upload(pipeline.receptor().resident_bytes() as u64));
        assert!(
            (after_first - after_second - receptor_upload_s).abs() < 1e-12,
            "warm run should differ from cold run by one receptor upload: \
             {after_first} then {after_second} (upload {receptor_upload_s})"
        );
        assert!(
            (after_second - after_third).abs() < 1e-12,
            "transfer stats leaked across warm runs: {after_second} then {after_third}"
        );
    }

    #[test]
    fn residency_miss_uploads_once_per_device_and_hits_are_free() {
        // The serve-layer transfer contract: across a whole sharded run, each
        // pooled device records exactly one receptor-grid upload (its first
        // probe misses), and every other probe's construction is a free hit.
        let (pipeline, library) =
            small_pipeline(PipelineMode::Sharded { devices: 2, pose_block: 0 });
        let receptor_bytes = pipeline.receptor().resident_bytes();
        pipeline.map(&library);
        let mut total_misses = 0;
        for device in pipeline.pool().devices() {
            let stats = device.residency().stats();
            if stats.lookups() > 0 {
                // A device that serviced k probes saw k lookups: 1 miss (its
                // first probe) + (k-1) free hits.
                assert_eq!(stats.misses, 1, "exactly one miss per active device");
                assert_eq!(stats.insertions, 1);
                assert_eq!(stats.hits + 1, stats.lookups());
            }
            total_misses += stats.misses;
        }
        assert!(total_misses >= 1);
        // A fresh identical pipeline on a fresh pool pays the upload once per
        // device; re-running on the warm pool pays zero receptor bytes: the
        // second run's bytes are smaller by exactly one grid set per device
        // that serviced work in run 1 but no longer misses.
        let (cold, _) = small_pipeline(PipelineMode::Accelerated);
        cold.map(&library);
        let cold_bytes = cold.pool().device(0).total_transfer_bytes();
        cold.map(&library);
        let warm_bytes = cold.pool().device(0).total_transfer_bytes();
        assert_eq!(cold_bytes - warm_bytes, receptor_bytes);
    }

    #[test]
    fn paper_scale_config_matches_paper_parameters() {
        let cfg = FtMapConfig::paper_scale(PipelineMode::Accelerated);
        assert_eq!(cfg.docking.n_rotations, 500);
        assert_eq!(cfg.docking.poses_per_rotation, 4);
        assert_eq!(cfg.conformations_per_probe, 2000);
        assert!(matches!(cfg.docking.engine, DockingEngineKind::Gpu { batch: 8 }));
    }
}
