// Fixture: seeded `accounted-transfers` violations (raw transfer recording
// outside gpu-sim). Never compiled.
use gpu_sim::{Device, Transfer};

fn raw_transfer(device: &Device, bytes: u64) -> f64 {
    let up = device.record_transfer(Transfer::upload(bytes)); // line 6: two violations
    let down = Transfer::download(bytes); // line 7: violation (Transfer::)
    up
}

fn sanctioned(device: &Device, grid: &[f64]) -> f64 {
    // Accounted helpers are the sanctioned path — no violation.
    let up = device.upload_slice(grid);
    let down = device.download_bytes(1024);
    // `TransferSnapshot` and `transfer_snapshot()` are observation, not
    // recording — exact-identifier matching must not flag them:
    let snap: gpu_sim::TransferSnapshot = device.transfer_snapshot();
    // `record_transfer_s` is a different identifier entirely.
    let s = ledger.record_transfer_s;
    up + down
}
