//! FFT-based correlation: the original PIPER scoring engine.
//!
//! For each rotation, PIPER forward-transforms every ligand grid, multiplies it
//! voxel-wise with the conjugate transform of the matching receptor grid (precomputed
//! once), and inverse-transforms the product to obtain that component's correlation
//! over all `N³` translations — `O(N³ log N)` per component instead of `O(N⁶)`.
//! Fig. 2(b) shows this step dominating the per-rotation cost at ~93 %.

use crate::grids::{LigandGrids, ReceptorGrids};
use ftmap_math::fft::{Direction, Fft3Plan};
use ftmap_math::{Complex, Grid3, Real};

/// The FFT correlation engine. Owns the receptor transforms (computed once) and an FFT
/// plan reused across rotations and components.
pub struct FftCorrelationEngine {
    dim: usize,
    n_terms: usize,
    plan: Fft3Plan,
    /// Forward FFT of each receptor component grid.
    receptor_ffts: Vec<Vec<Complex>>,
}

impl FftCorrelationEngine {
    /// Precomputes the receptor transforms.
    ///
    /// # Panics
    /// Panics if the receptor grid dimension is not a power of two.
    pub fn new(receptor: &ReceptorGrids) -> Self {
        let dim = receptor.spec.dim;
        let plan = Fft3Plan::new(dim, dim, dim);
        let receptor_ffts = receptor
            .terms
            .iter()
            .map(|grid| {
                let mut data: Vec<Complex> =
                    grid.as_slice().iter().map(|&v| Complex::from_real(v)).collect();
                plan.transform_in_place(&mut data, Direction::Forward);
                data
            })
            .collect();
        FftCorrelationEngine { dim, n_terms: receptor.n_terms(), plan, receptor_ffts }
    }

    /// Grid dimension `N`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of energy components.
    pub fn n_terms(&self) -> usize {
        self.n_terms
    }

    /// Correlates one rotation's ligand grids against the receptor, returning one
    /// `N³` result grid per component.
    ///
    /// The ligand grid is zero-padded into the receptor dimensions with its footprint
    /// anchored at the grid origin, so `result[d]` is the score of translating the
    /// probe by `d` voxels (cyclic).
    ///
    /// # Panics
    /// Panics if the ligand has a different number of components than the receptor.
    pub fn correlate_rotation(&self, ligand: &LigandGrids) -> Vec<Grid3<Real>> {
        assert_eq!(ligand.n_terms(), self.n_terms, "ligand term count must match receptor");
        let n = self.dim;
        let mut results = Vec::with_capacity(self.n_terms);
        for (term_idx, lgrid) in ligand.terms.iter().enumerate() {
            // Pad ligand into the full grid.
            let padded = lgrid.zero_padded(n, n, n);
            let mut freq: Vec<Complex> =
                padded.as_slice().iter().map(|&v| Complex::from_real(v)).collect();
            self.plan.transform_in_place(&mut freq, Direction::Forward);
            // Correlation theorem: FFT(corr) = conj(FFT(ligand)) .* FFT(receptor).
            for (l, r) in freq.iter_mut().zip(&self.receptor_ffts[term_idx]) {
                *l = l.conj() * *r;
            }
            self.plan.transform_in_place(&mut freq, Direction::Inverse);
            let real: Vec<Real> = freq.into_iter().map(|c| c.re).collect();
            results.push(Grid3::from_vec(n, n, n, real));
        }
        results
    }

    /// Estimated floating-point work of correlating one rotation (used for modeled
    /// serial times): `n_terms × (2 forward/inverse transforms + N³ modulation)`.
    ///
    /// This is the **warm-transform** figure: the receptor's forward FFTs are
    /// amortized to zero per rotation, matching a batched-engine construction
    /// that hits the derived residency cache. The one-time receptor transform
    /// cost is [`FftCorrelationEngine::receptor_transform_flops`], charged
    /// once per engine construction (the host path recomputes it every time;
    /// the batched path only on a derived-cache miss).
    pub fn flops_per_rotation(&self) -> u64 {
        let n3 = (self.dim * self.dim * self.dim) as u64;
        self.n_terms as u64 * (2 * self.plan.flops_per_transform() + 6 * n3)
    }

    /// Floating-point work of the one-time receptor forward transforms this
    /// constructor performed: `n_terms × one forward transform`.
    pub fn receptor_transform_flops(&self) -> u64 {
        self.n_terms as u64 * self.plan.flops_per_transform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grids::{GridSpec, LigandGrids, ReceptorGrids};
    use ftmap_math::{Rotation, Vec3};
    use ftmap_molecule::{ForceField, Probe, ProbeType, ProteinSpec, SyntheticProtein};

    fn setup(dim: usize) -> (ReceptorGrids, LigandGrids) {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let spec = GridSpec::centered_on(&protein.atoms, dim, 2.0);
        let receptor = ReceptorGrids::build(&protein.atoms, spec, 4);
        let probe = Probe::new(ProbeType::Ethanol, &ff);
        let ligand = LigandGrids::build(&probe.atoms, &Rotation::identity(), 2.0, 4);
        (receptor, ligand)
    }

    #[test]
    fn result_grids_have_receptor_dimensions() {
        let (receptor, ligand) = setup(16);
        let engine = FftCorrelationEngine::new(&receptor);
        assert_eq!(engine.dim(), 16);
        assert_eq!(engine.n_terms(), 8);
        let results = engine.correlate_rotation(&ligand);
        assert_eq!(results.len(), 8);
        for r in &results {
            assert_eq!(r.dims(), (16, 16, 16));
        }
    }

    #[test]
    fn correlation_of_unit_ligand_voxel_reproduces_receptor() {
        // A ligand grid with a single 1.0 at its origin correlates to (a copy of) the
        // receptor grid itself — the delta-function identity of correlation.
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let spec = GridSpec::centered_on(&protein.atoms, 16, 2.0);
        let receptor = ReceptorGrids::build(&protein.atoms, spec, 4);
        let engine = FftCorrelationEngine::new(&receptor);

        // Build a fake single-voxel ligand.
        let probe = Probe::new(ProbeType::Ethane, &ff);
        let mut ligand = LigandGrids::build(&probe.atoms, &Rotation::identity(), 2.0, 4);
        for term in &mut ligand.terms {
            term.clear();
        }
        *ligand.terms[0].at_mut(0, 0, 0) = 1.0;

        let results = engine.correlate_rotation(&ligand);
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    let expect = *receptor.terms[0].at(x, y, z);
                    let got = *results[0].at(x, y, z);
                    assert!((expect - got).abs() < 1e-6, "({x},{y},{z}): {expect} vs {got}");
                }
            }
        }
        // Terms with an all-zero ligand grid give an all-zero result.
        assert!(results[2].as_slice().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "term count")]
    fn mismatched_term_count_panics() {
        let (receptor, _) = setup(16);
        let ff = ForceField::charmm_like();
        let probe = Probe::new(ProbeType::Ethanol, &ff);
        let ligand = LigandGrids::build(&probe.atoms, &Rotation::identity(), 2.0, 2);
        let engine = FftCorrelationEngine::new(&receptor);
        let _ = engine.correlate_rotation(&ligand);
    }

    #[test]
    fn flops_estimate_scales_with_terms_and_size() {
        let (receptor, _) = setup(16);
        let engine16 = FftCorrelationEngine::new(&receptor);
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let spec = GridSpec { dim: 32, spacing: 1.5, origin: Vec3::splat(-24.0) };
        let receptor32 = ReceptorGrids::build(&protein.atoms, spec, 4);
        let engine32 = FftCorrelationEngine::new(&receptor32);
        assert!(engine32.flops_per_rotation() > engine16.flops_per_rotation());
    }
}
