//! Neighbor-list construction.
//!
//! Serial FTMap stores, for every "first" atom, the list of "second" atoms within the
//! non-bonded cutoff that contribute to its energy (paper Fig. 7). The list is built
//! once and only rarely updated during minimization ("seldom updated", §II.B) — unlike
//! MD, where cell lists are rebuilt constantly. This module builds that structure;
//! `ftmap-energy` then restructures it into the pairs-lists of §IV.B.
//!
//! Construction uses a uniform spatial hash so building is `O(N)` rather than `O(N²)`,
//! which matters when the protein has a few thousand atoms.

use crate::atom::Atom;
use ftmap_math::Real;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A neighbor list: for every atom `i`, the indices of atoms `j > i` within the cutoff
/// that are not excluded by the bonded topology.
///
/// Storing only `j > i` halves the memory and matches how FTMap's pair loops count each
/// interaction once (the energy of *both* atoms is updated when the pair is processed).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NeighborList {
    /// `lists[i]` = indices of neighbour atoms `j > i`.
    lists: Vec<Vec<usize>>,
    /// Cutoff the list was built with (Å).
    cutoff: Real,
}

impl NeighborList {
    /// Builds a neighbor list over `atoms` with the given cutoff, skipping pairs in
    /// `excluded` (ordered `(min, max)` index pairs, typically 1-2 and 1-3 bonded pairs).
    pub fn build(atoms: &[Atom], cutoff: Real, excluded: &HashSet<(usize, usize)>) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        let n = atoms.len();
        let mut lists = vec![Vec::new(); n];
        if n == 0 {
            return NeighborList { lists, cutoff };
        }

        // Spatial hash with cell size = cutoff.
        let cell = cutoff;
        let key = |a: &Atom| {
            (
                (a.position.x / cell).floor() as i64,
                (a.position.y / cell).floor() as i64,
                (a.position.z / cell).floor() as i64,
            )
        };
        let mut cells: HashMap<(i64, i64, i64), Vec<usize>> = HashMap::new();
        for (i, a) in atoms.iter().enumerate() {
            cells.entry(key(a)).or_default().push(i);
        }

        let cutoff_sq = cutoff * cutoff;
        for (i, a) in atoms.iter().enumerate() {
            let (cx, cy, cz) = key(a);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    for dz in -1..=1 {
                        let Some(bucket) = cells.get(&(cx + dx, cy + dy, cz + dz)) else {
                            continue;
                        };
                        for &j in bucket {
                            if j <= i {
                                continue;
                            }
                            if excluded.contains(&(i, j)) {
                                continue;
                            }
                            if a.position.distance_sq(atoms[j].position) <= cutoff_sq {
                                lists[i].push(j);
                            }
                        }
                    }
                }
            }
            lists[i].sort_unstable();
        }

        NeighborList { lists, cutoff }
    }

    /// Builds a neighbor list with no exclusions.
    pub fn build_unexcluded(atoms: &[Atom], cutoff: Real) -> Self {
        NeighborList::build(atoms, cutoff, &HashSet::new())
    }

    /// The cutoff used to build this list (Å).
    pub fn cutoff(&self) -> Real {
        self.cutoff
    }

    /// Number of "first" atoms (== number of atoms in the system).
    pub fn n_atoms(&self) -> usize {
        self.lists.len()
    }

    /// The neighbours (`j > i`) of atom `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.lists[i]
    }

    /// Total number of pairs in the list.
    pub fn n_pairs(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    /// Iterates over all `(i, j)` pairs.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.lists.iter().enumerate().flat_map(|(i, l)| l.iter().map(move |&j| (i, j)))
    }

    /// The distribution of per-atom neighbour counts `(min, mean, max)` — the paper
    /// notes these range "from a few to a few hundred", which is why naive per-atom
    /// work distribution on the GPU is so uneven (§IV.A).
    pub fn neighbor_count_stats(&self) -> (usize, Real, usize) {
        if self.lists.is_empty() {
            return (0, 0.0, 0);
        }
        let min = self.lists.iter().map(Vec::len).min().unwrap_or(0);
        let max = self.lists.iter().map(Vec::len).max().unwrap_or(0);
        let mean = self.n_pairs() as Real / self.lists.len() as Real;
        (min, mean, max)
    }
}

/// Brute-force `O(N²)` neighbor-list construction, used by tests as an oracle.
pub fn build_reference(
    atoms: &[Atom],
    cutoff: Real,
    excluded: &HashSet<(usize, usize)>,
) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let cutoff_sq = cutoff * cutoff;
    let mut lists = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if excluded.contains(&(i, j)) {
                continue;
            }
            if atoms[i].position.distance_sq(atoms[j].position) <= cutoff_sq {
                lists[i].push(j);
            }
        }
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::protein::{ProteinSpec, SyntheticProtein};
    use crate::AtomKind;
    use ftmap_math::Vec3;

    fn atom_at(id: usize, p: Vec3) -> Atom {
        ForceField::charmm_like().make_atom(id, AtomKind::AliphaticC, p, false)
    }

    #[test]
    fn simple_pairs_within_cutoff() {
        let atoms = vec![
            atom_at(0, Vec3::new(0.0, 0.0, 0.0)),
            atom_at(1, Vec3::new(1.0, 0.0, 0.0)),
            atom_at(2, Vec3::new(10.0, 0.0, 0.0)),
        ];
        let nl = NeighborList::build_unexcluded(&atoms, 2.0);
        assert_eq!(nl.neighbors(0), &[1]);
        assert!(nl.neighbors(1).is_empty());
        assert!(nl.neighbors(2).is_empty());
        assert_eq!(nl.n_pairs(), 1);
        assert_eq!(nl.cutoff(), 2.0);
    }

    #[test]
    fn exclusions_are_respected() {
        let atoms = vec![
            atom_at(0, Vec3::new(0.0, 0.0, 0.0)),
            atom_at(1, Vec3::new(1.0, 0.0, 0.0)),
            atom_at(2, Vec3::new(2.0, 0.0, 0.0)),
        ];
        let mut excluded = HashSet::new();
        excluded.insert((0usize, 1usize));
        let nl = NeighborList::build(&atoms, 3.0, &excluded);
        assert_eq!(nl.neighbors(0), &[2]);
        assert_eq!(nl.neighbors(1), &[2]);
    }

    #[test]
    fn matches_brute_force_on_synthetic_protein() {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let excluded = protein.topology.excluded_pairs();
        let fast = NeighborList::build(&protein.atoms, 6.0, &excluded);
        let slow = build_reference(&protein.atoms, 6.0, &excluded);
        for (i, reference) in slow.iter().enumerate() {
            assert_eq!(fast.neighbors(i), reference.as_slice(), "atom {i}");
        }
    }

    #[test]
    fn pair_count_scales_with_cutoff() {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let small = NeighborList::build_unexcluded(&protein.atoms, 4.0);
        let large = NeighborList::build_unexcluded(&protein.atoms, 8.0);
        assert!(large.n_pairs() > small.n_pairs());
    }

    #[test]
    fn iter_pairs_matches_lists() {
        let atoms = vec![
            atom_at(0, Vec3::new(0.0, 0.0, 0.0)),
            atom_at(1, Vec3::new(1.0, 0.0, 0.0)),
            atom_at(2, Vec3::new(1.5, 0.5, 0.0)),
        ];
        let nl = NeighborList::build_unexcluded(&atoms, 2.0);
        let pairs: Vec<_> = nl.iter_pairs().collect();
        assert_eq!(pairs.len(), nl.n_pairs());
        for (i, j) in pairs {
            assert!(j > i);
        }
    }

    #[test]
    fn stats_on_empty_and_nonempty() {
        let nl = NeighborList::build_unexcluded(&[], 5.0);
        assert_eq!(nl.neighbor_count_stats(), (0, 0.0, 0));
        assert_eq!(nl.n_atoms(), 0);

        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let nl = NeighborList::build_unexcluded(&protein.atoms, 7.0);
        let (min, mean, max) = nl.neighbor_count_stats();
        assert!(max >= min);
        assert!(mean > 0.0);
        // The per-atom counts should vary widely (motivation for pairs-lists).
        assert!(max > 3 * min.max(1));
    }

    #[test]
    #[should_panic(expected = "cutoff must be positive")]
    fn zero_cutoff_panics() {
        let _ = NeighborList::build_unexcluded(&[], 0.0);
    }
}
