//! The pipelined, priority-aware service end to end: a stream of bulk library
//! scans with interactive jobs arriving mid-stream on a 4-device pool.
//!
//! Demonstrates the three serve-layer moves this dispatcher adds:
//!
//! * **cross-batch phase overlap** — batch N+1's probes dock on whichever
//!   devices batch N's minimization leaves idle (no two-phase barrier), so
//!   the service's modeled span beats the sum of its batch makespans;
//! * **latency classes** — the interactive jobs overtake the bulk queue and
//!   finish with a fraction of its modeled latency, while the aging knob
//!   keeps the bulk jobs moving;
//! * **batch-scoped accounting** — per-batch transfer seconds partition the
//!   pool total exactly even though batches overlap in flight.
//!
//! Run with: `cargo run --release --example pipelined_service`

use ftmap::prelude::*;
use std::sync::Arc;

fn main() {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);

    let mut bulk_config = FtMapConfig::small_test(PipelineMode::Accelerated);
    bulk_config.docking.n_rotations = 2;
    bulk_config.conformations_per_probe = 6;
    let mut interactive_config = bulk_config.clone();
    interactive_config.conformations_per_probe = 1;

    // 6 bulk scans then 3 interactive requests, all against one receptor.
    let mut jobs: Vec<MappingRequest> = (0..6)
        .map(|i| {
            MappingRequest::new(
                protein.clone(),
                ff.clone(),
                vec![ProbeType::Ethanol, ProbeType::Acetone],
                bulk_config.clone(),
            )
            .with_tag(format!("bulk-{i}"))
        })
        .collect();
    jobs.extend((0..3).map(|i| {
        MappingRequest::new(
            protein.clone(),
            ff.clone(),
            vec![ProbeType::Urea],
            interactive_config.clone(),
        )
        .with_tag(format!("interactive-{i}"))
        .with_class(LatencyClass::Interactive)
    }));

    let pool = Arc::new(DevicePool::tesla(4));
    let service = BatchMappingService::builder(Arc::clone(&pool))
        .batch(BatchConfig {
            dispatch: DispatchMode::Pipelined,
            max_batch_jobs: 2,
            pose_block: 2,
            bulk_aging: 4,
            ..BatchConfig::default()
        })
        .build();
    println!(
        "pipelined service up: {} devices, {} jobs ({} bulk + 3 interactive)\n",
        pool.len(),
        jobs.len(),
        jobs.len() - 3
    );

    let handles: Vec<JobHandle> =
        jobs.into_iter().map(|job| service.submit(job).expect_admitted("job refused")).collect();
    let reports: Vec<_> = handles.iter().map(JobHandle::wait).collect();

    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "job", "batch", "class", "latency ms", "span ms", "overlap ms"
    );
    for report in &reports {
        println!(
            "{:<16} {:>6} {:>12} {:>12.3} {:>12.3} {:>12.3}",
            report.tag,
            report.batch.batch_index,
            format!("{:?}", report.batch.class),
            1e3 * report.batch.latency_modeled_s,
            1e3 * report.batch.makespan_modeled_s,
            1e3 * report.batch.overlap_saved_modeled_s,
        );
        assert!(!report.result.sites.is_empty(), "{}: no consensus sites", report.tag);
    }

    // Per-phase profile of one job (modeled kernel/transfer/overlap seconds).
    println!("\nper-phase profile of {}:", reports[0].tag);
    print!("{}", reports[0].result.profile.phase_table());

    let stats = service.shutdown();
    let barrier_sum: f64 = {
        // What the two-phase-barrier dispatcher would have taken: each batch
        // serially, one makespan after another.
        let mut seen = std::collections::BTreeMap::new();
        for r in &reports {
            seen.insert(r.batch.batch_index, r.batch.makespan_modeled_s);
        }
        seen.values().sum()
    };
    println!(
        "\nmodeled span {:.3} ms vs {:.3} ms of summed batch makespans \
         ({:.3} ms of cross-batch overlap reclaimed)",
        1e3 * stats.span_modeled_s,
        1e3 * barrier_sum,
        1e3 * stats.cross_batch_overlap_modeled_s,
    );
    println!(
        "interactive latency: mean {:.3} ms, p95 {:.3} ms over {} batches \
         | bulk: mean {:.3} ms over {} batches",
        1e3 * stats.interactive.mean_s,
        1e3 * stats.interactive.p95_s,
        stats.interactive.batches,
        1e3 * stats.bulk.mean_s,
        stats.bulk.batches,
    );
    let ledger_transfer = stats.ledger.transfer_s("serve.batch");
    let pool_transfer = pool.total_transfer_time();
    println!(
        "batch-scoped transfer accounting: ledger {:.6} ms == pool {:.6} ms",
        1e3 * ledger_transfer,
        1e3 * pool_transfer
    );

    assert!(stats.cross_batch_overlap_modeled_s > 0.0, "batches must overlap");
    assert!(
        stats.interactive.mean_s < stats.bulk.mean_s,
        "interactive work must not wait out the bulk queue"
    );
    assert!(
        (ledger_transfer - pool_transfer).abs() < 1e-9,
        "batch-scoped transfers must partition the pool total"
    );
    println!("\npipelined service drained and shut down cleanly");
}
