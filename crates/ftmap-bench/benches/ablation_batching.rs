//! §III.A ablation: direct-correlation rotation batching (1, 2, 4, 8 rotations per pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftmap_bench::DockingWorkload;
use ftmap_math::RotationSet;
use gpu_sim::Device;
use piper_dock::direct::SparseLigand;
use piper_dock::gpu::GpuDockingEngine;
use piper_dock::grids::{GridSpec, LigandGrids, ReceptorGrids};
use std::time::Duration;

fn bench_batching(c: &mut Criterion) {
    let w = DockingWorkload::standard();
    let spec = GridSpec::centered_on(&w.protein.atoms, ftmap_bench::BENCH_GRID_DIM, 1.5);
    let receptor = ReceptorGrids::build(&w.protein.atoms, spec, 4);
    let device = Device::tesla_c1060();
    let gpu = GpuDockingEngine::new(&device, &receptor);
    let rotations = RotationSet::uniform(8);
    let ligands: Vec<SparseLigand> = rotations
        .iter()
        .map(|r| SparseLigand::from_grids(&LigandGrids::build(&w.probe.atoms, r, 1.5, 4)))
        .collect();

    let mut group = c.benchmark_group("ablation_rotation_batching");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for batch in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                for chunk in ligands.chunks(batch) {
                    std::hint::black_box(gpu.correlate_batch(chunk));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
