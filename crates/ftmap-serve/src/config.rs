//! Service configuration: nested queue / batch / admission sub-configs.
//!
//! [`ServeConfig`] used to be one flat struct; it is now composed of three
//! sub-configs, one per concern:
//!
//! * [`QueueConfig`] — the bounded admission queue (backpressure depth);
//! * [`BatchConfig`] — batch formation and dispatch (batch size, pose-block
//!   granularity, dispatcher mode, in-flight window, aging);
//! * [`AdmissionConfig`] — SLO-aware admission control: per-class modeled
//!   deadlines, the degrade policy, and the fairness controls (per-receptor
//!   in-flight caps, weighted per-tenant quotas).
//!
//! Each sub-config has a `Default` and serde derives, so partial literals
//! (`BatchConfig { max_batch_jobs: 1, ..BatchConfig::default() }`) and config
//! files both work.

use crate::batcher::LatencyClass;
use ftmap_core::DegradePolicy;
use serde::{Deserialize, Serialize};

/// How the service turns batches into device work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchMode {
    /// Two-phase barrier per batch over a [`gpu_sim::sched::ShardQueue`],
    /// batches strictly serial — the pre-pipelining behavior, kept as the
    /// comparator.
    Barrier,
    /// Cross-batch phased pipelining over a persistent
    /// [`gpu_sim::sched::PhasePipeline`] with class priorities. The default.
    #[default]
    Pipelined,
}

/// The admission queue's knobs (the service's front door).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Maximum jobs pending admission (the backpressure bound).
    pub max_pending: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig { max_pending: 64 }
    }
}

/// Batch formation and dispatch knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum jobs co-scheduled in one batch.
    pub max_batch_jobs: usize,
    /// Scheduling granularity of a batch's minimization phase: retained poses
    /// per work item. `0` fuses dock + minimize into one item per `(job,
    /// probe)` pair (the coarse schedule); any positive value docks every
    /// probe once and then schedules pose blocks from *all* the batch's jobs,
    /// so one hot job's — or one hot probe's — minimizations spread across
    /// the whole pool.
    pub pose_block: usize,
    /// Which dispatcher runs the batches.
    pub dispatch: DispatchMode,
    /// Pipelined mode only: how many batches may be in flight on the pool at
    /// once. 2 is the classic double-buffer — batch N+1 docks under batch N's
    /// minimization; higher values deepen the pipeline at the cost of
    /// latency-class responsiveness for work already submitted.
    pub max_inflight_batches: usize,
    /// Aging bound for the priority batcher: how many interactive batches may
    /// overtake a pending bulk job before it anchors the next batch itself.
    /// `0` disables overtaking entirely (pure FIFO).
    pub bulk_aging: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch_jobs: 16,
            pose_block: ftmap_core::DEFAULT_POSE_BLOCK,
            dispatch: DispatchMode::default(),
            max_inflight_batches: 2,
            bulk_aging: 4,
        }
    }
}

/// One tenant's weight in the fairness quota: a tenant's share of the
/// in-flight job budget is its weight over the sum of all configured weights
/// plus [`AdmissionConfig::default_tenant_weight`] (the pooled share every
/// unlisted tenant draws from).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// The tenant label ([`crate::MappingRequest::tenant_label`]).
    pub tenant: String,
    /// Relative weight (must be positive to grant any share).
    pub weight: f64,
}

/// SLO-aware admission control and fairness knobs. The default configures
/// **nothing**: no deadlines (every request is plainly admitted), no degrade
/// policy, no receptor caps, no tenant quotas — the pre-admission-control
/// service behavior.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Class-wide modeled-latency deadline for interactive requests
    /// (admission-to-completion seconds on the virtual timeline). `None`
    /// disables deadline enforcement for the class. A request's own
    /// [`crate::MappingRequest::deadline_s`] overrides this.
    pub interactive_deadline_s: Option<f64>,
    /// Class-wide modeled-latency deadline for bulk requests.
    pub bulk_deadline_s: Option<f64>,
    /// Multiplier on the latency estimate before it is compared to the
    /// deadline: values above 1 admit conservatively (an estimate within
    /// `deadline / safety_factor` is required), values in `(0, 1)` admit
    /// optimistically. `0` (the `Default`) means 1 — compare the raw
    /// estimate.
    pub safety_factor: f64,
    /// When set, a request whose deadline is unmeetable as-is may be admitted
    /// **degraded**: fewer rotations / conformations per
    /// [`FtMapConfig::degraded`](ftmap_core::FtMapConfig::degraded), with the
    /// reduction reported on the verdict. `None` disables degradation.
    pub degrade: Option<DegradePolicy>,
    /// When true, a bulk request whose bulk-priority estimate misses its
    /// deadline is retried at interactive priority first (reprioritization)
    /// before degradation or refusal.
    pub reprioritize: bool,
    /// Fairness: at most this many jobs of one receptor fingerprint in
    /// flight at once (forming batches stalls further jobs of a hot receptor
    /// until completions free slots). Clamped to at least 1. `None` disables
    /// the cap.
    pub max_inflight_per_receptor: Option<usize>,
    /// Fairness: weighted per-tenant shares of the in-flight job budget.
    /// Empty disables tenant quotas.
    pub tenant_quotas: Vec<TenantQuota>,
    /// Weight every tenant *not* listed in
    /// [`tenant_quotas`](AdmissionConfig::tenant_quotas) carries. `0` (the
    /// `Default`) means 1.
    pub default_tenant_weight: f64,
    /// The in-flight job budget tenant shares divide. `0` (the `Default`)
    /// derives it as `max_inflight_batches * max_batch_jobs`.
    pub quota_inflight_total: usize,
}

impl AdmissionConfig {
    /// The class-wide deadline for `class`, if configured.
    pub fn deadline_for(&self, class: LatencyClass) -> Option<f64> {
        match class {
            LatencyClass::Interactive => self.interactive_deadline_s,
            LatencyClass::Bulk => self.bulk_deadline_s,
        }
    }

    /// The effective safety factor (the `0` default means 1).
    pub fn effective_safety_factor(&self) -> f64 {
        if self.safety_factor > 0.0 {
            self.safety_factor
        } else {
            1.0
        }
    }

    /// True when any fairness control (receptor cap or tenant quota) is on.
    pub fn fairness_enabled(&self) -> bool {
        self.max_inflight_per_receptor.is_some() || !self.tenant_quotas.is_empty()
    }

    /// The weight `tenant` carries: its configured quota weight, or the
    /// default weight for unlisted tenants.
    pub fn tenant_weight(&self, tenant: &str) -> f64 {
        self.tenant_quotas
            .iter()
            .find(|q| q.tenant == tenant)
            .map(|q| q.weight)
            .unwrap_or(self.effective_default_weight())
    }

    fn effective_default_weight(&self) -> f64 {
        if self.default_tenant_weight > 0.0 {
            self.default_tenant_weight
        } else {
            1.0
        }
    }

    /// How many jobs `tenant` may have in flight at once under the quota:
    /// its weight's share of `total`, never below 1 (every tenant can always
    /// make progress — quotas bound concurrency, they never starve).
    pub fn tenant_allowance(&self, tenant: &str, total: usize) -> usize {
        if self.tenant_quotas.is_empty() {
            return usize::MAX;
        }
        let weight_sum: f64 = self.tenant_quotas.iter().map(|q| q.weight.max(0.0)).sum::<f64>()
            + self.effective_default_weight();
        let weight = self.tenant_weight(tenant).max(0.0);
        if weight_sum <= 0.0 {
            return total.max(1);
        }
        (((total as f64) * weight / weight_sum).round() as usize).max(1)
    }

    /// The in-flight job budget the tenant shares divide (see
    /// [`quota_inflight_total`](AdmissionConfig::quota_inflight_total)).
    pub fn quota_total(&self, batch: &BatchConfig) -> usize {
        if self.quota_inflight_total > 0 {
            self.quota_inflight_total
        } else {
            (batch.max_inflight_batches * batch.max_batch_jobs).max(1)
        }
    }
}

/// Service tuning knobs, composed from the three sub-configs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServeConfig {
    /// The admission queue (backpressure).
    pub queue: QueueConfig,
    /// Batch formation and dispatch.
    pub batch: BatchConfig,
    /// SLO-aware admission control and fairness.
    pub admission: AdmissionConfig,
}

impl ServeConfig {
    /// A config with the given batch knobs and everything else default — the
    /// most common partial-construction path in tests and examples.
    pub fn with_batch(batch: BatchConfig) -> Self {
        ServeConfig { batch, ..ServeConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_pre_split_flat_config() {
        let config = ServeConfig::default();
        assert_eq!(config.queue.max_pending, 64);
        assert_eq!(config.batch.max_batch_jobs, 16);
        assert_eq!(config.batch.pose_block, ftmap_core::DEFAULT_POSE_BLOCK);
        assert_eq!(config.batch.dispatch, DispatchMode::Pipelined);
        assert_eq!(config.batch.max_inflight_batches, 2);
        assert_eq!(config.batch.bulk_aging, 4);
        // Admission control defaults to off: no deadlines, no fairness.
        assert_eq!(config.admission.deadline_for(LatencyClass::Interactive), None);
        assert_eq!(config.admission.deadline_for(LatencyClass::Bulk), None);
        assert!(!config.admission.fairness_enabled());
        assert_eq!(config.admission.effective_safety_factor(), 1.0);
    }

    #[test]
    fn tenant_allowances_split_the_inflight_budget_by_weight() {
        let admission = AdmissionConfig {
            tenant_quotas: vec![
                TenantQuota { tenant: "heavy".into(), weight: 3.0 },
                TenantQuota { tenant: "light".into(), weight: 1.0 },
            ],
            ..AdmissionConfig::default()
        };
        // Weight sum = 3 + 1 + 1 (default pool) = 5 over a budget of 10.
        assert_eq!(admission.tenant_allowance("heavy", 10), 6);
        assert_eq!(admission.tenant_allowance("light", 10), 2);
        assert_eq!(admission.tenant_allowance("unlisted", 10), 2);
        // Quotas never starve: allowances are clamped to at least one job.
        assert_eq!(admission.tenant_allowance("light", 1), 1);
        // No quotas configured: unlimited.
        assert_eq!(AdmissionConfig::default().tenant_allowance("any", 4), usize::MAX);
    }

    #[test]
    fn quota_total_derives_from_the_batch_window() {
        let admission = AdmissionConfig::default();
        let batch = BatchConfig { max_batch_jobs: 8, ..BatchConfig::default() };
        assert_eq!(admission.quota_total(&batch), 16, "2 in-flight batches × 8 jobs");
        let explicit = AdmissionConfig { quota_inflight_total: 5, ..AdmissionConfig::default() };
        assert_eq!(explicit.quota_total(&batch), 5);
    }

    #[test]
    fn per_request_knobs_override_class_defaults() {
        let admission = AdmissionConfig {
            interactive_deadline_s: Some(0.5),
            bulk_deadline_s: Some(10.0),
            safety_factor: 1.25,
            ..AdmissionConfig::default()
        };
        assert_eq!(admission.deadline_for(LatencyClass::Interactive), Some(0.5));
        assert_eq!(admission.deadline_for(LatencyClass::Bulk), Some(10.0));
        assert_eq!(admission.effective_safety_factor(), 1.25);
    }
}
