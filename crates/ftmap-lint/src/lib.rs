//! # ftmap-lint
//!
//! Project-invariant static analyzer for the ftmap-rs workspace, run as a CI
//! gate (`cargo run --release --bin ftmap-lint`).
//!
//! The workspace's architecture rests on invariants no compiler checks: the
//! timeline is *modeled* (wall-clock reads are confined to the profiling
//! layer), kernel launches and transfer accounting go through `gpu-sim`'s
//! audited entry points, and the scheduler/serve hot paths fail through
//! typed poison channels instead of unwinding. This crate enforces those
//! invariants with a dependency-free Rust lexer ([`lexer`]) feeding a
//! token-level rule engine ([`rules`]) — see [`rules::RULES`] for the
//! catalog and the README's *Correctness tooling* section for the
//! suppression format.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, lint_workspace, Diagnostic, RuleInfo, RULES};
