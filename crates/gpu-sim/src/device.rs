//! Device specifications and the block-parallel execution engine.
//!
//! [`DeviceSpec`] captures the handful of hardware parameters the cost model needs.
//! Two built-in specs matter for the reproduction:
//!
//! * [`DeviceSpec::tesla_c1060`] — the accelerator the paper used (240 cores @ 1.3 GHz,
//!   30 SMs, 16 KB shared memory per SM, uncached global memory, PCIe x16 gen2);
//! * [`DeviceSpec::xeon_core`] — a single core of the 3 GHz Xeon Harpertown host the
//!   paper's serial baseline ran on.
//!
//! [`Device`] executes [`BlockKernel`]s: the grid of blocks is distributed over a
//! crossbeam thread pool (one logical worker per simulated SM, capped at the physical
//! CPU count), per-block counters are merged, and the cost model converts the totals
//! into modeled times.

use crate::cost::CostModel;
use crate::kernel::{BlockContext, BlockKernel, LaunchConfig};
use crate::memory::{MemoryCounters, SharedMemory, Transfer, TransferDirection};
use crate::residency::ResidencyCache;
use crate::timing::KernelStats;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Hardware parameters of a (modeled) compute device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of streaming multiprocessors (1 for a CPU core).
    pub sm_count: usize,
    /// Scalar cores per SM.
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained floating-point operations per core per clock cycle.
    pub flops_per_cycle: f64,
    /// Shared memory per SM, in bytes.
    pub shared_mem_bytes: usize,
    /// Constant memory visible to all SMs, in bytes.
    pub constant_mem_bytes: usize,
    /// Global (device) memory capacity in bytes — the budget the per-device
    /// residency cache ([`crate::ResidencyCache`]) evicts against.
    pub global_mem_bytes: usize,
    /// Global-memory access latency in clock cycles (uncached on the C1060).
    pub global_latency_cycles: f64,
    /// Shared/constant-memory access latency in clock cycles.
    pub shared_latency_cycles: f64,
    /// Sustainable global-memory bandwidth in GB/s.
    pub global_bandwidth_gbps: f64,
    /// Kernel-launch overhead in microseconds (0 for host execution).
    pub kernel_launch_overhead_us: f64,
    /// Host↔device transfer bandwidth in GB/s (PCIe); `f64::INFINITY` for the host
    /// itself (no transfer needed).
    pub transfer_bandwidth_gbps: f64,
    /// Fixed per-transfer latency in microseconds.
    pub transfer_latency_us: f64,
}

impl DeviceSpec {
    /// The NVIDIA Tesla C1060 used in the paper: 30 SMs × 8 cores @ 1.3 GHz,
    /// 16 KB shared memory per SM, 64 KB constant memory, ~102 GB/s global bandwidth,
    /// 400–600 cycle uncached global latency, PCIe gen2 x16 host link.
    pub fn tesla_c1060() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla C1060 (modeled)".to_string(),
            sm_count: 30,
            cores_per_sm: 8,
            clock_ghz: 1.3,
            flops_per_cycle: 1.0,
            shared_mem_bytes: 16 * 1024,
            constant_mem_bytes: 64 * 1024,
            global_mem_bytes: 4 * 1024 * 1024 * 1024,
            global_latency_cycles: 500.0,
            shared_latency_cycles: 2.0,
            global_bandwidth_gbps: 102.0,
            kernel_launch_overhead_us: 10.0,
            transfer_bandwidth_gbps: 5.0,
            transfer_latency_us: 8.0,
        }
    }

    /// A single core of the 3 GHz Intel Xeon Harpertown host used for the paper's
    /// serial baseline. Modeled as one wide core with a large cache (so the "shared"
    /// latency class applies to most of its memory traffic) and no launch or transfer
    /// overheads.
    pub fn xeon_core() -> Self {
        DeviceSpec {
            name: "Intel Xeon Harpertown, 1 core (modeled)".to_string(),
            sm_count: 1,
            cores_per_sm: 1,
            clock_ghz: 3.0,
            flops_per_cycle: 1.0,
            shared_mem_bytes: 6 * 1024 * 1024,
            constant_mem_bytes: 6 * 1024 * 1024,
            global_mem_bytes: 16 * 1024 * 1024 * 1024,
            global_latency_cycles: 12.0,
            shared_latency_cycles: 3.0,
            global_bandwidth_gbps: 8.0,
            kernel_launch_overhead_us: 0.0,
            transfer_bandwidth_gbps: f64::INFINITY,
            transfer_latency_us: 0.0,
        }
    }

    /// The quad-core variant of the host, used for the paper's multicore comparison
    /// (§V.A: GPU-PIPER vs multicore FFT-PIPER).
    pub fn xeon_quad() -> Self {
        let mut spec = Self::xeon_core();
        spec.name = "Intel Xeon Harpertown, 4 cores (modeled)".to_string();
        spec.sm_count = 4;
        spec
    }

    /// Peak floating-point throughput in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * self.flops_per_cycle
    }

    /// Shared-memory capacity per SM in f64 words.
    pub fn shared_mem_words(&self) -> usize {
        self.shared_mem_bytes / std::mem::size_of::<f64>()
    }

    /// Constant-memory capacity in f64 words.
    pub fn constant_mem_words(&self) -> usize {
        self.constant_mem_bytes / std::mem::size_of::<f64>()
    }
}

/// A point-in-time copy of a device's transfer accounting, split by direction.
///
/// Snapshots taken before and after a unit of work give exactly the transfer
/// time that work caused ([`TransferSnapshot::delta_since`]) — this is how the
/// scheduler's stream model ([`crate::sched::Stream`]) attributes upload and
/// download seconds to individual work items without the device having to know
/// about work items at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferSnapshot {
    /// Accumulated modeled host→device transfer seconds.
    pub upload_s: f64,
    /// Accumulated modeled device→host transfer seconds.
    pub download_s: f64,
    /// Accumulated transferred bytes, both directions.
    pub bytes: usize,
}

impl TransferSnapshot {
    /// Total modeled transfer seconds, both directions.
    pub fn total_s(&self) -> f64 {
        self.upload_s + self.download_s
    }

    /// The transfers recorded between `earlier` and this snapshot.
    ///
    /// Saturates at zero if the accounting was reset between the snapshots
    /// (a consumer calling [`Device::reset_transfer_stats`] mid-window) —
    /// the window's attribution is lost either way, but a nonsense negative
    /// delta must not poison downstream stream accounting or panic on the
    /// byte counter.
    pub fn delta_since(&self, earlier: &TransferSnapshot) -> TransferSnapshot {
        TransferSnapshot {
            upload_s: (self.upload_s - earlier.upload_s).max(0.0),
            download_s: (self.download_s - earlier.download_s).max(0.0),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// The block-parallel execution engine for one modeled device.
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    cost: CostModel,
    worker_threads: usize,
    /// Accumulated modeled transfer time (seconds) since construction / reset,
    /// split as `(upload, download)`.
    transfer_time_s: Mutex<(f64, f64)>,
    /// Accumulated transferred bytes since construction / reset.
    transfer_bytes: AtomicUsize,
    /// Buffers kept resident in this device's modeled global memory.
    residency: ResidencyCache,
}

impl Device {
    /// Creates a device with the given spec, using up to `min(spec.sm_count, CPU count)`
    /// worker threads for block execution.
    pub fn new(spec: DeviceSpec) -> Self {
        let physical = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let worker_threads = spec.sm_count.min(physical).max(1);
        let cost = CostModel::new(spec.clone());
        let residency = ResidencyCache::new(spec.global_mem_bytes);
        Device {
            spec,
            cost,
            worker_threads,
            transfer_time_s: Mutex::new((0.0, 0.0)),
            transfer_bytes: AtomicUsize::new(0),
            residency,
        }
    }

    /// A Tesla-C1060-class device.
    pub fn tesla_c1060() -> Self {
        Device::new(DeviceSpec::tesla_c1060())
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The cost model attached to this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Number of CPU worker threads used to execute blocks.
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
    }

    /// The cache of buffers resident in this device's modeled global memory.
    ///
    /// Residency deliberately survives [`Device::reset_transfer_stats`]: the
    /// transfer counters are a per-run gauge, but uploaded data stays on the
    /// device between runs — that persistence is exactly what later runs'
    /// cache hits (zero upload bytes) model.
    pub fn residency(&self) -> &ResidencyCache {
        &self.residency
    }

    /// Records a host↔device transfer and returns its modeled duration in seconds.
    pub fn record_transfer(&self, transfer: Transfer) -> f64 {
        let t = self.cost.transfer_time(&transfer);
        let direction = match transfer.direction {
            TransferDirection::HostToDevice => {
                self.transfer_time_s.lock().0 += t;
                "upload"
            }
            TransferDirection::DeviceToHost => {
                self.transfer_time_s.lock().1 += t;
                "download"
            }
        };
        self.transfer_bytes.fetch_add(transfer.bytes as usize, Ordering::Relaxed);
        ftmap_trace::hook::transfer(direction, transfer.bytes, t);
        t
    }

    // --- Transfer-accounted upload/download helpers (the launch layer's API ---
    // for charging host↔device traffic without spelling out `Transfer` values).

    /// Charges an upload of `bytes` bytes and returns its modeled duration.
    pub fn upload_bytes(&self, bytes: u64) -> f64 {
        self.record_transfer(Transfer::upload(bytes))
    }

    /// Charges an upload of `items` (sized by `std::mem::size_of::<T>()`) and
    /// returns its modeled duration.
    pub fn upload_slice<T>(&self, items: &[T]) -> f64 {
        self.upload_bytes(std::mem::size_of_val(items) as u64)
    }

    /// Charges an upload of `words` f64 words and returns its modeled duration.
    pub fn upload_words(&self, words: usize) -> f64 {
        self.upload_bytes((words * std::mem::size_of::<f64>()) as u64)
    }

    /// Charges a download of `bytes` bytes and returns its modeled duration.
    pub fn download_bytes(&self, bytes: u64) -> f64 {
        self.record_transfer(Transfer::download(bytes))
    }

    /// Charges a download of `items` (sized by `std::mem::size_of::<T>()`) and
    /// returns its modeled duration.
    pub fn download_slice<T>(&self, items: &[T]) -> f64 {
        self.download_bytes(std::mem::size_of_val(items) as u64)
    }

    /// Total modeled transfer time (seconds) recorded so far, both directions.
    /// The per-direction split is read through [`Device::transfer_snapshot`].
    pub fn total_transfer_time(&self) -> f64 {
        let split = self.transfer_time_s.lock();
        split.0 + split.1
    }

    /// Total bytes transferred so far.
    pub fn total_transfer_bytes(&self) -> usize {
        self.transfer_bytes.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the transfer accounting, split by direction.
    pub fn transfer_snapshot(&self) -> TransferSnapshot {
        let (upload_s, download_s) = *self.transfer_time_s.lock();
        TransferSnapshot {
            upload_s,
            download_s,
            bytes: self.transfer_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets the transfer accounting.
    ///
    /// Pooled devices are reused across pipeline runs; callers that reuse a
    /// device ([`crate::sched::DevicePool::reset_transfer_stats`], the mapping
    /// pipeline) reset at the start of every run so one run's transfers never
    /// leak into the next run's stream-overlap accounting.
    pub fn reset_transfer_stats(&self) {
        *self.transfer_time_s.lock() = (0.0, 0.0);
        self.transfer_bytes.store(0, Ordering::Relaxed);
    }

    /// Launches a kernel: executes `config.grid_blocks` blocks of the kernel, in
    /// parallel across the worker threads, and returns merged statistics.
    ///
    /// Each block gets a [`BlockContext`] with its own shared-memory arena and counter
    /// set; kernels write their results through whatever interior-mutable output
    /// structure they captured (mirroring global-memory writes on a real device).
    ///
    /// # Panics
    /// Panics if the requested shared memory exceeds the device's per-SM capacity.
    pub fn launch<K: BlockKernel>(&self, config: &LaunchConfig, kernel: &K) -> KernelStats {
        assert!(
            config.shared_mem_words * std::mem::size_of::<f64>() <= self.spec.shared_mem_bytes,
            "kernel requests {} words of shared memory; device has {} bytes per SM",
            config.shared_mem_words,
            self.spec.shared_mem_bytes
        );

        let n_blocks = config.grid_blocks;
        let next_block = AtomicUsize::new(0);
        let block_counters: Mutex<Vec<MemoryCounters>> = Mutex::new(Vec::with_capacity(n_blocks));

        let wall_start = Instant::now();
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.worker_threads.min(n_blocks.max(1)) {
                scope.spawn(|_| {
                    let mut local: Vec<MemoryCounters> = Vec::new();
                    loop {
                        let block_idx = next_block.fetch_add(1, Ordering::Relaxed);
                        if block_idx >= n_blocks {
                            break;
                        }
                        let mut ctx = BlockContext::new(
                            block_idx,
                            n_blocks,
                            config.threads_per_block,
                            SharedMemory::new(config.shared_mem_words),
                        );
                        kernel.execute_block(&mut ctx);
                        local.push(ctx.into_counters());
                    }
                    block_counters.lock().extend(local);
                });
            }
        })
        .expect("device worker thread panicked");
        let wall_time = wall_start.elapsed();

        let per_block = block_counters.into_inner();
        let totals = MemoryCounters::merged(per_block.iter());
        let modeled = self.cost.kernel_time(&totals, config);

        KernelStats {
            blocks: n_blocks,
            threads_per_block: config.threads_per_block,
            counters: totals,
            wall_time_s: wall_time.as_secs_f64(),
            modeled_time_s: modeled,
        }
    }

    /// Runs the kernel as a single "block" covering all work on the host model —
    /// the serial-baseline path used when modeling the original CPU code. No launch
    /// overhead is charged and parallel workers are not used.
    pub fn run_serial<K: BlockKernel>(&self, config: &LaunchConfig, kernel: &K) -> KernelStats {
        let wall_start = Instant::now();
        let mut per_block = Vec::with_capacity(config.grid_blocks);
        for block_idx in 0..config.grid_blocks {
            let mut ctx = BlockContext::new(
                block_idx,
                config.grid_blocks,
                config.threads_per_block,
                SharedMemory::new(config.shared_mem_words),
            );
            kernel.execute_block(&mut ctx);
            per_block.push(ctx.into_counters());
        }
        let wall_time = wall_start.elapsed();
        let totals = MemoryCounters::merged(per_block.iter());
        let modeled = self.cost.serial_time(&totals);
        KernelStats {
            blocks: config.grid_blocks,
            threads_per_block: config.threads_per_block,
            counters: totals,
            wall_time_s: wall_time.as_secs_f64(),
            modeled_time_s: modeled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BlockContext, BlockKernel, LaunchConfig};
    use parking_lot::Mutex as PlMutex;

    /// A kernel that squares numbers: block i handles a contiguous chunk of the input.
    struct SquareKernel<'a> {
        input: &'a [f64],
        output: &'a PlMutex<Vec<f64>>,
        chunk: usize,
    }

    impl BlockKernel for SquareKernel<'_> {
        fn execute_block(&self, ctx: &mut BlockContext) {
            let start = ctx.block_idx * self.chunk;
            let end = (start + self.chunk).min(self.input.len());
            let mut local = Vec::with_capacity(end.saturating_sub(start));
            for i in start..end {
                ctx.counters.global_reads += 1;
                ctx.counters.flops += 1;
                local.push(self.input[i] * self.input[i]);
            }
            let mut out = self.output.lock();
            for (offset, v) in local.into_iter().enumerate() {
                ctx.counters.global_writes += 1;
                out[start + offset] = v;
            }
        }
    }

    #[test]
    fn tesla_spec_matches_paper_hardware() {
        let spec = DeviceSpec::tesla_c1060();
        assert_eq!(spec.sm_count * spec.cores_per_sm, 240);
        assert!((spec.clock_ghz - 1.3).abs() < 1e-12);
        assert_eq!(spec.shared_mem_bytes, 16 * 1024);
        assert_eq!(spec.constant_mem_bytes, 64 * 1024);
        assert!(spec.peak_gflops() > 300.0);
    }

    #[test]
    fn xeon_specs() {
        let core = DeviceSpec::xeon_core();
        assert_eq!(core.sm_count, 1);
        assert!((core.clock_ghz - 3.0).abs() < 1e-12);
        assert!(core.transfer_bandwidth_gbps.is_infinite());
        let quad = DeviceSpec::xeon_quad();
        assert_eq!(quad.sm_count, 4);
        assert!(quad.peak_gflops() > core.peak_gflops());
    }

    #[test]
    fn launch_executes_all_blocks_and_counts() {
        let device = Device::tesla_c1060();
        let input: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let output = PlMutex::new(vec![0.0; input.len()]);
        let chunk = 64;
        let kernel = SquareKernel { input: &input, output: &output, chunk };
        let n_blocks = input.len().div_ceil(chunk);
        let config = LaunchConfig::new(n_blocks, 64);
        let stats = device.launch(&config, &kernel);

        let out = output.into_inner();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as f64);
        }
        assert_eq!(stats.blocks, n_blocks);
        assert_eq!(stats.counters.flops, input.len() as u64);
        assert_eq!(stats.counters.global_reads, input.len() as u64);
        assert_eq!(stats.counters.global_writes, input.len() as u64);
        assert!(stats.modeled_time_s > 0.0);
        assert!(stats.wall_time_s > 0.0);
    }

    #[test]
    fn serial_run_matches_launch_results() {
        let device = Device::new(DeviceSpec::xeon_core());
        let input: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let output = PlMutex::new(vec![0.0; input.len()]);
        let kernel = SquareKernel { input: &input, output: &output, chunk: 10 };
        let config = LaunchConfig::new(10, 1);
        let stats = device.run_serial(&config, &kernel);
        assert_eq!(stats.counters.flops, 100);
        let out = output.into_inner();
        assert_eq!(out[9], 81.0);
    }

    #[test]
    fn gpu_modeled_time_beats_serial_for_large_parallel_work() {
        // A compute-heavy kernel should be modeled much faster on the 240-core device
        // than on one Xeon core — this is the basic premise behind Table 1.
        let counters =
            MemoryCounters { flops: 100_000_000, global_reads: 1_000_000, ..Default::default() };
        let gpu = Device::tesla_c1060();
        let cpu = Device::new(DeviceSpec::xeon_core());
        let config = LaunchConfig::new(1000, 64);
        let gpu_time = gpu.cost_model().kernel_time(&counters, &config);
        let cpu_time = cpu.cost_model().serial_time(&counters);
        assert!(cpu_time / gpu_time > 20.0, "speedup {}", cpu_time / gpu_time);
    }

    #[test]
    fn transfer_accounting_accumulates() {
        let device = Device::tesla_c1060();
        assert_eq!(device.total_transfer_bytes(), 0);
        let t1 = device.record_transfer(Transfer::upload(1_000_000));
        let t2 = device.record_transfer(Transfer::download(500_000));
        assert!(t1 > 0.0 && t2 > 0.0);
        assert_eq!(device.total_transfer_bytes(), 1_500_000);
        assert!(device.total_transfer_time() >= t1 + t2 - 1e-12);
        // Directions are tracked separately.
        let snapshot = device.transfer_snapshot();
        assert!((snapshot.upload_s - t1).abs() < 1e-12);
        assert!((snapshot.download_s - t2).abs() < 1e-12);
        device.reset_transfer_stats();
        assert_eq!(device.total_transfer_bytes(), 0);
        assert_eq!(device.total_transfer_time(), 0.0);
        assert_eq!(device.transfer_snapshot(), TransferSnapshot::default());
    }

    #[test]
    fn transfer_snapshots_attribute_deltas() {
        let device = Device::tesla_c1060();
        device.upload_bytes(1 << 20);
        let before = device.transfer_snapshot();
        let up = device.upload_bytes(2 << 20);
        let down = device.download_bytes(1 << 19);
        let delta = device.transfer_snapshot().delta_since(&before);
        assert!((delta.upload_s - up).abs() < 1e-12);
        assert!((delta.download_s - down).abs() < 1e-12);
        assert_eq!(delta.bytes, (2 << 20) + (1 << 19));
        assert!((delta.total_s() - (up + down)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn oversized_shared_memory_request_panics() {
        let device = Device::tesla_c1060();
        let config = LaunchConfig::new(1, 32).with_shared_mem_words(1_000_000);
        struct Noop;
        impl BlockKernel for Noop {
            fn execute_block(&self, _ctx: &mut BlockContext) {}
        }
        device.launch(&config, &Noop);
    }

    #[test]
    fn residency_cache_sized_by_global_memory_and_survives_resets() {
        let device = Device::tesla_c1060();
        assert_eq!(device.residency().capacity_bytes(), device.spec().global_mem_bytes);
        let payload: crate::residency::ResidentPayload = std::sync::Arc::new(1u64);
        device.residency().get_or_insert_with(99, || (payload, 1 << 20));
        device.upload_bytes(1 << 20);
        device.reset_transfer_stats();
        // Transfers are a per-run gauge; residency is device state and persists.
        assert_eq!(device.total_transfer_bytes(), 0);
        assert!(device.residency().contains(99));
    }

    #[test]
    fn worker_threads_bounded_by_sm_count() {
        let device = Device::new(DeviceSpec::xeon_quad());
        assert!(device.worker_threads() <= 4);
        assert!(device.worker_threads() >= 1);
    }
}
