//! No-op derive macros for the vendored `serde` stub.
//!
//! The stub's `Serialize` / `Deserialize` traits are blanket-implemented for every
//! type, so the derives have nothing to generate — they exist only so that
//! `#[derive(Serialize, Deserialize)]` attributes across the workspace keep
//! compiling unchanged.

use proc_macro::TokenStream;

/// Derives the (blanket-implemented) `Serialize` marker; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (blanket-implemented) `Deserialize` marker; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
