//! # ftmap — GPU-accelerated binding site mapping, reproduced in Rust
//!
//! Umbrella crate for the ftmap-rs workspace, a reproduction of
//! *Fast Binding Site Mapping using GPUs and CUDA* (Sukhwani & Herbordt, 2010).
//! It re-exports the public API of every workspace crate so examples and downstream
//! users need a single dependency:
//!
//! * [`math`] — vectors, rotations, grids, FFT ([`ftmap_math`]).
//! * [`molecule`] — atoms, force field, probes, synthetic proteins ([`ftmap_molecule`]).
//! * [`gpu`] — the CUDA-class device model ([`gpu_sim`]).
//! * [`dock`] — PIPER rigid docking ([`piper_dock`]).
//! * [`energy`] — CHARMM/ACE energy model and minimization ([`ftmap_energy`]).
//! * [`core`] — the end-to-end mapping pipeline ([`ftmap_core`]).
//! * [`serve`] — the asynchronous batch-mapping service ([`ftmap_serve`]).
//! * [`trace`] — tracing, metrics, and Perfetto timeline export ([`ftmap_trace`]).
//!
//! ## Quickstart
//!
//! ```
//! use ftmap::prelude::*;
//!
//! // Generate a small synthetic protein and dock an ethanol probe against it.
//! // Engines are selected through the ExecutionBackend seam: `Gpu` picks the
//! // paper's batched direct-correlation engine on the modeled device.
//! let ff = ForceField::charmm_like();
//! let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
//! let probe = Probe::new(ProbeType::Ethanol, &ff);
//! let engine = DockingEngineKind::for_backend(ExecutionBackend::Gpu);
//! let docking = Docking::new(&protein.atoms, DockingConfig::small_test(engine));
//! let run = docking.run(&probe);
//! assert!(!run.poses.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub use ftmap_core as core;
pub use ftmap_energy as energy;
pub use ftmap_math as math;
pub use ftmap_molecule as molecule;
pub use ftmap_serve as serve;
pub use ftmap_trace as trace;
pub use gpu_sim as gpu;
pub use piper_dock as dock;

/// Commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use ftmap_core::{FtMapConfig, FtMapPipeline, MappingResult, PipelineMode};
    pub use ftmap_energy::{
        minimize::{EvaluationPath, MinimizationConfig, Minimizer},
        Evaluator,
    };
    pub use ftmap_math::{Grid3, Quaternion, Real, Rotation, RotationSet, Vec3};
    pub use ftmap_molecule::{
        Complex, ForceField, NeighborList, Probe, ProbeLibrary, ProbeType, ProteinSpec,
        SyntheticProtein,
    };
    pub use ftmap_serve::{
        AdmissionConfig, AdmissionVerdict, BatchConfig, BatchMappingService, DispatchMode,
        JobHandle, JobStatus, LatencyClass, MappingRequest, Observability, QueueConfig,
        RejectReason, ServeConfig, ServiceBuilder, TenantQuota,
    };
    pub use ftmap_trace::{
        analyze, analyze_all, build_request_trees, export_chrome_trace,
        export_chrome_trace_with_flows, sanitize, AlertState, FlightRecorder, MetricsSnapshot,
        Recorder, RequestTrace, SanitizeReport, SloReport, SloSpec, TraceSink,
    };
    pub use gpu_sim::{
        BackendSelect, Device, DevicePool, DeviceSpec, ExecutionBackend, KernelLaunch, ShardQueue,
        StatsLedger, Stream,
    };
    pub use piper_dock::{Docking, DockingConfig, DockingEngineKind, EnergyWeights, Pose};
}
