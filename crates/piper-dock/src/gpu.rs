//! The paper's GPU mapping of rigid docking, on the device model (paper §III).
//!
//! Three kernels reproduce the structure of the CUDA implementation:
//!
//! * [`GpuDockingEngine::correlate_batch`] — **batched direct correlation**. The result
//!   grid is divided into x-plane slabs, one per thread block (the paper's second
//!   work-distribution scheme, Fig. 4). The sparse ligand entries of up to
//!   [`GpuDockingEngine::max_batch`] rotations are staged in constant memory; for each
//!   result voxel the receptor value at a given (term, offset) is fetched from global
//!   memory **once** and reused by every rotation in the batch that touches that offset
//!   — the data-reuse optimization that buys the reported 2.7× over one-rotation-at-a-
//!   time correlation.
//! * [`GpuDockingEngine::accumulate_desolvation`] — sums the desolvation component
//!   results on the device (Table 1's "Accum. desolvation terms" row).
//! * [`GpuDockingEngine::score_and_filter`] — weighted scoring plus top-K filtering with
//!   region exclusion, run on a **single block** ("distribution across multiple
//!   multiprocessors would incur large communication overhead", §III.B), which is why
//!   its speedup is modest.
//!
//! Each method returns both the numerically exact results (computed by the block-
//! parallel CPU execution) and the [`KernelStats`] whose modeled time feeds Table 1.

use crate::direct::SparseLigand;
use crate::filter;
use crate::grids::{EnergyWeights, ReceptorGrids};
use crate::pose::Pose;
use ftmap_math::{Grid3, Real};
use gpu_sim::{BlockContext, BlockKernel, Device, KernelLaunch, KernelStats, Staged};
use std::collections::HashSet;

/// GPU-mapped rigid docking over a fixed receptor.
pub struct GpuDockingEngine<'a> {
    device: &'a Device,
    receptor: &'a ReceptorGrids,
    /// Threads per block used for the correlation and accumulation kernels.
    threads_per_block: usize,
}

/// Results of correlating one batch of rotations on the device.
pub struct BatchCorrelationResult {
    /// Per-rotation, per-term result grids (`results[rotation][term]`).
    pub results: Vec<Vec<Grid3<Real>>>,
    /// Kernel statistics (merged over the launch).
    pub stats: KernelStats,
    /// Modeled time spent uploading the batch's ligand entries to constant memory.
    pub upload_time_s: f64,
}

impl<'a> GpuDockingEngine<'a> {
    /// Creates an engine over receptor grids assumed to be on the device
    /// already. The grid-set upload ("done only once", §III.A) is charged by
    /// whoever made the grids resident — [`crate::Docking::from_grids`] via the
    /// device's residency cache — not per engine construction, so repeat
    /// engines against a resident receptor cost zero transfer bytes.
    pub fn new(device: &'a Device, receptor: &'a ReceptorGrids) -> Self {
        GpuDockingEngine { device, receptor, threads_per_block: 64 }
    }

    /// Maximum number of rotations whose ligand grids fit in constant memory together —
    /// the batching factor (8 for 4³ probes on the C1060).
    pub fn max_batch(&self, ligand: &SparseLigand) -> usize {
        let words = ligand.constant_mem_words().max(1);
        (self.device.spec().constant_mem_words() / words).clamp(1, 8)
    }

    /// Direct correlation of a batch of rotations (already reduced to sparse ligands).
    pub fn correlate_batch(&self, batch: &[SparseLigand]) -> BatchCorrelationResult {
        assert!(!batch.is_empty(), "correlation batch must not be empty");
        let n = self.receptor.spec.dim;
        let n_terms = self.receptor.n_terms();

        // Upload the batch's ligand entries (constant memory).
        let upload_words: usize = batch.iter().map(|l| l.constant_mem_words()).sum();
        let upload_time_s =
            self.device.upload_bytes((upload_words * std::mem::size_of::<Real>()) as u64);

        // The set of distinct (term, offset) pairs across the batch: each is fetched
        // from global memory once per result voxel and reused across rotations.
        let unique_fetches: HashSet<(usize, (usize, usize, usize))> =
            batch.iter().flat_map(|l| l.entries.iter().map(|e| (e.term, e.offset))).collect();
        let unique_fetches_per_voxel = unique_fetches.len() as u64;
        let entries_per_voxel: u64 = batch.iter().map(|l| l.len() as u64).sum();

        // Output: per rotation, per term; blocks own disjoint x-plane slabs, staged
        // through the launch layer (disjoint regions, so write order does not matter).
        let output: Vec<Vec<Staged<Grid3<Real>>>> = batch
            .iter()
            .map(|_| (0..n_terms).map(|_| Staged::new(Grid3::cubic(n))).collect())
            .collect();

        let kernel = CorrelationKernel {
            receptor: self.receptor,
            batch,
            output: &output,
            n,
            unique_fetches_per_voxel,
            entries_per_voxel,
        };
        let stats = KernelLaunch::on(self.device)
            .grid(n) // one block per x-plane (Fig. 4, second scheme)
            .threads(self.threads_per_block)
            .shared_mem_capped(batch.len() * n_terms)
            .run(&kernel);

        let results =
            output.into_iter().map(|terms| terms.into_iter().map(Staged::take).collect()).collect();
        BatchCorrelationResult { results, stats, upload_time_s }
    }

    /// Device-side accumulation of the desolvation component results into one grid.
    pub fn accumulate_desolvation(
        &self,
        term_results: &[Grid3<Real>],
        n_desolv: usize,
    ) -> (Grid3<Real>, KernelStats) {
        assert_eq!(term_results.len(), 4 + n_desolv, "unexpected term count");
        let n = self.receptor.spec.dim;
        let output = Staged::new(Grid3::cubic(n));
        let kernel = AccumulationKernel { term_results, n_desolv, output: &output, n };
        let stats =
            KernelLaunch::on(self.device).grid(n).threads(self.threads_per_block).run(&kernel);
        (output.take(), stats)
    }

    /// Device-side scoring + filtering on a single block.
    ///
    /// Only the retained poses are transferred back to the host (one of the benefits the
    /// paper cites for filtering on the device); the returned stats include the modeled
    /// kernel time, and the pose download is charged to the device transfer accounting.
    // lint-allow(justified-allows): mirrors the host filter pipeline's
    // parameter list (weights, desolvation depth, top-K, exclusion radius)
    // so the two paths stay diffable side by side.
    #[allow(clippy::too_many_arguments)]
    pub fn score_and_filter(
        &self,
        term_results: &[Grid3<Real>],
        desolv_total: &Grid3<Real>,
        weights: &EnergyWeights,
        n_desolv: usize,
        k: usize,
        exclusion_radius: usize,
        rotation_index: usize,
    ) -> (Vec<Pose>, KernelStats) {
        let poses = Staged::new(Vec::new());
        let kernel = ScoreFilterKernel {
            term_results,
            desolv_total,
            weights: *weights,
            n_desolv,
            k,
            exclusion_radius,
            rotation_index,
            poses: &poses,
        };
        // Single thread block, as in the paper.
        let stats =
            KernelLaunch::on(self.device).grid(1).threads(256).shared_mem_capped(256).run(&kernel);
        let poses = poses.take();
        // Download only the retained poses.
        self.device.download_slice(&poses);
        (poses, stats)
    }
}

/// Batched direct-correlation kernel: block `b` computes x-plane `b` of every rotation's
/// result grids.
struct CorrelationKernel<'a> {
    receptor: &'a ReceptorGrids,
    batch: &'a [SparseLigand],
    output: &'a [Vec<Staged<Grid3<Real>>>],
    n: usize,
    unique_fetches_per_voxel: u64,
    entries_per_voxel: u64,
}

impl BlockKernel for CorrelationKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        let n = self.n;
        let dx = ctx.block_idx;
        if dx >= n {
            return;
        }
        let n_terms = self.receptor.n_terms();
        // Local slab: [rotation][term] -> plane of n*n scores.
        let mut slab: Vec<Vec<Vec<Real>>> =
            self.batch.iter().map(|_| (0..n_terms).map(|_| vec![0.0; n * n]).collect()).collect();

        for dy in 0..n {
            for dz in 0..n {
                // Accounting: one global fetch per distinct (term, offset), reused
                // across the rotations of the batch; every entry costs a constant-memory
                // read and a multiply-accumulate.
                ctx.record_global_reads(self.unique_fetches_per_voxel);
                ctx.record_constant_reads(self.entries_per_voxel);
                ctx.record_flops(2 * self.entries_per_voxel);

                for (rot_idx, ligand) in self.batch.iter().enumerate() {
                    for entry in &ligand.entries {
                        let x = (entry.offset.0 + dx) % n;
                        let y = (entry.offset.1 + dy) % n;
                        let z = (entry.offset.2 + dz) % n;
                        let r = *self.receptor.terms[entry.term].at(x, y, z);
                        slab[rot_idx][entry.term][dy * n + dz] += entry.value * r;
                    }
                }
            }
        }

        // Write the slab back to "global memory" (the shared result grids).
        for (rot_idx, rot_slab) in slab.into_iter().enumerate() {
            for (term, plane) in rot_slab.into_iter().enumerate() {
                ctx.record_global_writes((n * n) as u64);
                let mut grid = self.output[rot_idx][term].write();
                for dy in 0..n {
                    for dz in 0..n {
                        *grid.at_mut(dx, dy, dz) = plane[dy * n + dz];
                    }
                }
            }
        }
        ctx.sync_threads();
    }
}

/// Desolvation accumulation kernel: block `b` sums the desolvation components over
/// x-plane `b`.
struct AccumulationKernel<'a> {
    term_results: &'a [Grid3<Real>],
    n_desolv: usize,
    output: &'a Staged<Grid3<Real>>,
    n: usize,
}

impl BlockKernel for AccumulationKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        let n = self.n;
        let x = ctx.block_idx;
        if x >= n {
            return;
        }
        let mut plane = vec![0.0; n * n];
        for grid in &self.term_results[4..4 + self.n_desolv] {
            for y in 0..n {
                for z in 0..n {
                    plane[y * n + z] += *grid.at(x, y, z);
                }
            }
        }
        ctx.record_global_reads((self.n_desolv * n * n) as u64);
        ctx.record_flops((self.n_desolv * n * n) as u64);
        ctx.record_global_writes((n * n) as u64);
        let mut out = self.output.write();
        for y in 0..n {
            for z in 0..n {
                *out.at_mut(x, y, z) = plane[y * n + z];
            }
        }
    }
}

/// Scoring + filtering kernel, run as a single block: threads partition the score grid,
/// each finds its local best, a master thread gathers and excludes (Fig. 6).
struct ScoreFilterKernel<'a> {
    term_results: &'a [Grid3<Real>],
    desolv_total: &'a Grid3<Real>,
    weights: EnergyWeights,
    n_desolv: usize,
    k: usize,
    exclusion_radius: usize,
    rotation_index: usize,
    poses: &'a Staged<Vec<Pose>>,
}

impl BlockKernel for ScoreFilterKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        if ctx.block_idx != 0 {
            return;
        }
        let scores =
            filter::score_grid(self.term_results, self.desolv_total, &self.weights, self.n_desolv);
        let n3 = scores.len() as u64;
        // Weighted sum: 5 reads + ~6 flops per voxel, distributed over the block's threads.
        ctx.record_global_reads(5 * n3);
        ctx.record_flops(6 * n3);
        // Per-thread local best kept in shared memory; master gathers them per round.
        ctx.record_shared_accesses(ctx.threads_per_block as u64 * (self.k as u64 + 1));
        ctx.sync_threads();

        let selected =
            filter::filter_top_k(&scores, self.k, self.exclusion_radius, self.rotation_index);
        // Each filtering round rescans the candidate array and marks the exclusion
        // neighbourhood in a global-memory exclusion array (it does not fit in shared
        // memory at N = 128, §III.B).
        let excl = (2 * self.exclusion_radius as u64 + 1).pow(3);
        ctx.record_global_reads(self.k as u64 * n3 / ctx.threads_per_block.max(1) as u64);
        ctx.record_global_writes(self.k as u64 * excl);
        ctx.record_global_writes(selected.len() as u64);
        self.poses.write().extend(selected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectCorrelationEngine;
    use crate::grids::{GridSpec, LigandGrids};
    use ftmap_math::{Rotation, RotationSet};
    use ftmap_molecule::{ForceField, Probe, ProbeType, ProteinSpec, SyntheticProtein};

    fn setup(dim: usize) -> (ReceptorGrids, Probe) {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let spec = GridSpec::centered_on(&protein.atoms, dim, 2.0);
        let receptor = ReceptorGrids::build(&protein.atoms, spec, 4);
        let probe = Probe::new(ProbeType::Acetone, &ff);
        (receptor, probe)
    }

    fn sparse_for(probe: &Probe, rot: &Rotation) -> SparseLigand {
        let lig = LigandGrids::build(&probe.atoms, rot, 2.0, 4);
        SparseLigand::from_grids(&lig)
    }

    #[test]
    fn gpu_correlation_matches_host_direct_correlation() {
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        let gpu = GpuDockingEngine::new(&device, &receptor);
        let rotations = RotationSet::uniform(3);
        let batch: Vec<SparseLigand> = rotations.iter().map(|r| sparse_for(&probe, r)).collect();

        let gpu_out = gpu.correlate_batch(&batch);
        assert_eq!(gpu_out.results.len(), 3);
        let host = DirectCorrelationEngine::new(&receptor);
        for (rot_idx, sparse) in batch.iter().enumerate() {
            let host_results = host.correlate_rotation_serial(sparse);
            for (hg, gg) in host_results.iter().zip(&gpu_out.results[rot_idx]) {
                for (a, b) in hg.as_slice().iter().zip(gg.as_slice()) {
                    assert!((a - b).abs() < 1e-9, "host {a} vs gpu {b}");
                }
            }
        }
        assert!(gpu_out.stats.modeled_time_s > 0.0);
        assert!(gpu_out.upload_time_s > 0.0);
        assert!(gpu_out.stats.counters.constant_reads > 0);
    }

    #[test]
    fn batching_reduces_global_reads_per_rotation() {
        // The whole point of multi-rotation batching: global fetches per rotation drop.
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        let gpu = GpuDockingEngine::new(&device, &receptor);
        let rotations = RotationSet::uniform(8);
        let batch: Vec<SparseLigand> = rotations.iter().map(|r| sparse_for(&probe, r)).collect();

        let one_at_a_time: u64 = batch
            .iter()
            .map(|l| gpu.correlate_batch(std::slice::from_ref(l)).stats.counters.global_reads)
            .sum();
        let batched = gpu.correlate_batch(&batch).stats.counters.global_reads;
        assert!(
            batched < one_at_a_time,
            "batched reads {batched} should be below unbatched {one_at_a_time}"
        );
    }

    #[test]
    fn max_batch_is_paper_scale() {
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        let gpu = GpuDockingEngine::new(&device, &receptor);
        let sparse = sparse_for(&probe, &Rotation::identity());
        let batch = gpu.max_batch(&sparse);
        assert!((1..=8).contains(&batch));
        // FTMap probes are small; with 64 KB of constant memory the batch should be
        // the full 8 rotations.
        assert_eq!(batch, 8);
    }

    #[test]
    fn gpu_accumulation_matches_host() {
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        let gpu = GpuDockingEngine::new(&device, &receptor);
        let sparse = sparse_for(&probe, &Rotation::identity());
        let host_results =
            DirectCorrelationEngine::new(&receptor).correlate_rotation_serial(&sparse);

        let (gpu_total, stats) = gpu.accumulate_desolvation(&host_results, 4);
        let host_total = filter::accumulate_desolvation(&host_results, 4);
        for (a, b) in gpu_total.as_slice().iter().zip(host_total.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(stats.modeled_time_s > 0.0);
    }

    #[test]
    fn gpu_score_and_filter_matches_host() {
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        let gpu = GpuDockingEngine::new(&device, &receptor);
        let sparse = sparse_for(&probe, &Rotation::identity());
        let results = DirectCorrelationEngine::new(&receptor).correlate_rotation_serial(&sparse);
        let desolv = filter::accumulate_desolvation(&results, 4);
        let weights = EnergyWeights::default();

        let (gpu_poses, stats) = gpu.score_and_filter(&results, &desolv, &weights, 4, 4, 2, 5);
        let scores = filter::score_grid(&results, &desolv, &weights, 4);
        let host_poses = filter::filter_top_k(&scores, 4, 2, 5);
        assert_eq!(gpu_poses, host_poses);
        assert!(stats.modeled_time_s > 0.0);
        // Single-block launch.
        assert_eq!(stats.blocks, 1);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_batch_panics() {
        let (receptor, _) = setup(16);
        let device = Device::tesla_c1060();
        let gpu = GpuDockingEngine::new(&device, &receptor);
        let _ = gpu.correlate_batch(&[]);
    }
}
