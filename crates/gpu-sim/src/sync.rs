//! Poison-tolerant synchronization helpers for scheduler and serve hot paths.
//!
//! The scheduler layers carry their own explicit failure channel: a worker
//! that panics mid-item trips the strand/poison flags ([`crate::sched`]'s
//! `stranded` slots), and every waiter surfaces that as a loud, typed
//! failure. `std`'s mutex poisoning is redundant next to that channel — and
//! turning every `lock()` into `lock().expect(...)` plants a panic site in
//! exactly the code that must never panic (the `no-panic-in-workers` lint
//! rule). These helpers recover the guard from a poisoned lock instead:
//! the data under the mutex is a scheduler bookkeeping structure whose
//! consistency is re-established by the explicit poison flags, so recovery
//! is safe and the *typed* path stays the only failure surface.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Poisoning is deliberately ignored: the callers' own strand/poison flags
/// (set by panic guards around worker bodies) carry the failure to waiters
/// as typed errors, which is strictly more informative than a propagated
/// `PoisonError` panic.
pub fn locked<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar`, recovering the re-acquired guard on poison like
/// [`locked`].
pub fn wait_on<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn locked_recovers_from_poison() {
        let mutex = Arc::new(Mutex::new(7u32));
        let clone = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        // A plain `lock().unwrap()` would panic here; `locked` hands the
        // guard back so the typed poison paths stay in charge.
        assert_eq!(*locked(&mutex), 7);
        *locked(&mutex) = 8;
        assert_eq!(*locked(&mutex), 8);
    }

    #[test]
    fn wait_on_recovers_from_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let clone = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = clone.0.lock().unwrap();
            panic!("poison while holding the condvar mutex");
        })
        .join();
        let waker = Arc::clone(&pair);
        let waker_thread = std::thread::spawn(move || {
            *locked(&waker.0) = true;
            waker.1.notify_all();
        });
        let (lock, condvar) = &*pair;
        let mut guard = locked(lock);
        while !*guard {
            guard = wait_on(condvar, guard);
        }
        assert!(*guard);
        waker_thread.join().expect("waker thread");
    }
}
