//! Mapping requests: what a client submits to the batch service.

use crate::batcher::LatencyClass;
use ftmap_core::FtMapConfig;
use ftmap_molecule::{ForceField, ProbeLibrary, ProbeType, SyntheticProtein};

/// One client request: map `protein` with the given probes under `config`.
///
/// Requests against the same receptor (same protein content and docking-grid
/// geometry) are *compatible*: the batcher groups them so their probe shards
/// interleave on the device pool and they share one resident grid set per
/// device. Probe selection, minimization depth and clustering radius may
/// differ freely within a batch — they are per-job concerns.
#[derive(Debug, Clone)]
pub struct MappingRequest {
    /// The receptor protein.
    pub protein: SyntheticProtein,
    /// Force field used for probes and minimization.
    pub ff: ForceField,
    /// Probes to map (in order; order is part of the job's identity).
    pub probes: Vec<ProbeType>,
    /// Pipeline configuration (mode, docking, minimization, clustering).
    pub config: FtMapConfig,
    /// Free-form client label, echoed on the job handle and report.
    pub tag: String,
    /// Latency class: interactive requests form batches ahead of bulk work
    /// and overtake it at phase boundaries (aging-bounded — see
    /// [`crate::batcher`]). Scheduling only; results never depend on it.
    /// Defaults to [`LatencyClass::Bulk`].
    pub class: LatencyClass,
    /// Client-supplied trace id for end-to-end causal tracing. When `None`
    /// (the default) the service stamps the job id at admission, so every job
    /// carries *some* trace id through admit → batch-form → scheduler items →
    /// resolve. Observability only; results never depend on it.
    pub trace_id: Option<u64>,
    /// Tenant identity for fairness accounting: weighted per-tenant quotas
    /// and the in-flight counters the batcher enforces at batch formation
    /// ([`crate::config::AdmissionConfig`]). `None` (the default) falls back
    /// to [`tag`](MappingRequest::tag), so single-tenant callers need not set
    /// anything. Scheduling only; results never depend on it.
    pub tenant: Option<String>,
    /// Per-request completion deadline in modeled seconds from admission,
    /// overriding the class-wide default in
    /// [`crate::config::AdmissionConfig`]. The admission controller compares
    /// its modeled latency estimate against this bound and reprioritizes,
    /// degrades, or refuses the request when it cannot be met.
    pub deadline_s: Option<f64>,
}

impl MappingRequest {
    /// A request with an empty tag.
    pub fn new(
        protein: SyntheticProtein,
        ff: ForceField,
        probes: Vec<ProbeType>,
        config: FtMapConfig,
    ) -> Self {
        MappingRequest {
            protein,
            ff,
            probes,
            config,
            tag: String::new(),
            class: LatencyClass::Bulk,
            trace_id: None,
            tenant: None,
            deadline_s: None,
        }
    }

    /// Sets the client tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Sets the latency class.
    pub fn with_class(mut self, class: LatencyClass) -> Self {
        self.class = class;
        self
    }

    /// Sets a client-supplied trace id (see
    /// [`trace_id`](MappingRequest::trace_id)).
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = Some(trace_id);
        self
    }

    /// Sets the tenant identity the fairness controls account this request
    /// under (see [`tenant`](MappingRequest::tenant)).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets a per-request modeled-latency deadline (see
    /// [`deadline_s`](MappingRequest::deadline_s)).
    pub fn with_deadline_s(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// The tenant label fairness accounting uses: the explicit
    /// [`tenant`](MappingRequest::tenant) when set, the
    /// [`tag`](MappingRequest::tag) otherwise.
    pub fn tenant_label(&self) -> &str {
        self.tenant.as_deref().unwrap_or(&self.tag)
    }

    /// The probe library this request maps.
    pub fn library(&self) -> ProbeLibrary {
        ProbeLibrary::subset(&self.ff, &self.probes)
    }

    /// Batching fingerprint: requests with equal fingerprints build identical
    /// receptor grids (same atoms, same grid geometry, same desolvation-term
    /// count) and may share a batch.
    ///
    /// This is a *host-side grouping* key over the request inputs; the
    /// device-side residency key is the content hash of the built grids
    /// (`ReceptorGrids::content_key`), computed once per batch.
    pub fn receptor_fingerprint(&self) -> u64 {
        let mut hash = gpu_sim::Fnv1a::new();
        hash.write_u64(self.config.docking.grid_dim as u64);
        hash.write_f64(self.config.docking.spacing);
        hash.write_u64(self.config.docking.n_desolv as u64);
        for atom in &self.protein.atoms {
            hash.write_f64(atom.position.x);
            hash.write_f64(atom.position.y);
            hash.write_f64(atom.position.z);
            hash.write_f64(atom.charge);
            hash.write_u64(atom.kind as u64);
        }
        hash.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmap_core::PipelineMode;
    use ftmap_molecule::ProteinSpec;

    fn request(spec: &ProteinSpec, grid_dim: usize) -> MappingRequest {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(spec, &ff);
        let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
        config.docking.grid_dim = grid_dim;
        MappingRequest::new(protein, ff, vec![ProbeType::Ethanol], config)
    }

    #[test]
    fn fingerprint_groups_same_receptor() {
        let spec = ProteinSpec::small_test();
        let a = request(&spec, 16);
        let mut b = request(&spec, 16);
        // Different probes / tag / minimization do not split a batch.
        b.probes = vec![ProbeType::Benzene, ProbeType::Urea];
        b.tag = "other".into();
        b.config.conformations_per_probe = 7;
        assert_eq!(a.receptor_fingerprint(), b.receptor_fingerprint());
    }

    #[test]
    fn class_is_scheduling_metadata_not_identity() {
        // Latency class must never split a batch key or change a result key:
        // it defaults to Bulk and is carried verbatim.
        let spec = ProteinSpec::small_test();
        let a = request(&spec, 16);
        let b = request(&spec, 16).with_class(LatencyClass::Interactive);
        assert_eq!(a.class, LatencyClass::Bulk);
        assert_eq!(b.class, LatencyClass::Interactive);
        assert_eq!(a.receptor_fingerprint(), b.receptor_fingerprint());
        assert_eq!(LatencyClass::Interactive.priority(), 0);
        assert_eq!(LatencyClass::Bulk.priority(), 1);
    }

    #[test]
    fn fingerprint_splits_different_receptor_or_grid() {
        let spec = ProteinSpec::small_test();
        let a = request(&spec, 16);
        // Different grid geometry ⇒ different receptor grids ⇒ new batch.
        let b = request(&spec, 32);
        assert_ne!(a.receptor_fingerprint(), b.receptor_fingerprint());
        // Different protein ⇒ new batch.
        let mut other = ProteinSpec::small_test();
        other.seed = 1234;
        let c = request(&other, 16);
        assert_ne!(a.receptor_fingerprint(), c.receptor_fingerprint());
    }
}
