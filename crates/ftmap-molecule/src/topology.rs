//! Bonded topology: bonds, angles, torsions, impropers, and exclusion rules.
//!
//! The bonded terms are a tiny fraction of FTMap's runtime (Fig. 3(b): ~0.2 %) and are
//! left on the host in the paper; they are still required for a faithful energy model
//! and, importantly, the bonded graph defines the 1-2 / 1-3 exclusions used when the
//! non-bonded neighbor lists are built.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A covalent bond between two atoms (indices into the owning molecule's atom list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bond {
    /// First atom index.
    pub i: usize,
    /// Second atom index.
    pub j: usize,
}

/// A bond angle i–j–k centered on `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Angle {
    /// First atom index.
    pub i: usize,
    /// Central atom index.
    pub j: usize,
    /// Third atom index.
    pub k: usize,
}

/// A proper torsion i–j–k–l about the j–k bond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torsion {
    /// First atom index.
    pub i: usize,
    /// Second atom index.
    pub j: usize,
    /// Third atom index.
    pub k: usize,
    /// Fourth atom index.
    pub l: usize,
}

/// An improper torsion keeping atom `i` in the plane of `j`, `k`, `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Improper {
    /// Central atom index.
    pub i: usize,
    /// First plane atom.
    pub j: usize,
    /// Second plane atom.
    pub k: usize,
    /// Third plane atom.
    pub l: usize,
}

/// The bonded topology of a molecule or complex.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    n_atoms: usize,
    bonds: Vec<Bond>,
    angles: Vec<Angle>,
    torsions: Vec<Torsion>,
    impropers: Vec<Improper>,
}

impl Topology {
    /// Creates an empty topology over `n_atoms` atoms.
    pub fn new(n_atoms: usize) -> Self {
        Topology { n_atoms, ..Default::default() }
    }

    /// Number of atoms the topology covers.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Adds a bond between atoms `i` and `j`.
    ///
    /// # Panics
    /// Panics if either index is out of range or `i == j`.
    pub fn add_bond(&mut self, i: usize, j: usize) {
        assert!(i < self.n_atoms && j < self.n_atoms, "bond index out of range");
        assert_ne!(i, j, "an atom cannot bond to itself");
        self.bonds.push(Bond { i: i.min(j), j: i.max(j) });
    }

    /// Registered bonds.
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// Registered angles.
    pub fn angles(&self) -> &[Angle] {
        &self.angles
    }

    /// Registered torsions.
    pub fn torsions(&self) -> &[Torsion] {
        &self.torsions
    }

    /// Registered impropers.
    pub fn impropers(&self) -> &[Improper] {
        &self.impropers
    }

    /// Adds an explicit angle term.
    pub fn add_angle(&mut self, i: usize, j: usize, k: usize) {
        assert!(i < self.n_atoms && j < self.n_atoms && k < self.n_atoms);
        self.angles.push(Angle { i, j, k });
    }

    /// Adds an explicit torsion term.
    pub fn add_torsion(&mut self, i: usize, j: usize, k: usize, l: usize) {
        assert!(i < self.n_atoms && j < self.n_atoms && k < self.n_atoms && l < self.n_atoms);
        self.torsions.push(Torsion { i, j, k, l });
    }

    /// Adds an explicit improper term.
    pub fn add_improper(&mut self, i: usize, j: usize, k: usize, l: usize) {
        assert!(i < self.n_atoms && j < self.n_atoms && k < self.n_atoms && l < self.n_atoms);
        self.impropers.push(Improper { i, j, k, l });
    }

    /// Derives angle and torsion terms from the bond graph (every connected i–j–k path
    /// becomes an angle, every i–j–k–l path a torsion), the way CHARMM topology builders
    /// autogenerate bonded terms.
    pub fn autogenerate_bonded_terms(&mut self) {
        let adjacency = self.adjacency();
        self.angles.clear();
        self.torsions.clear();

        // Angles: for every central atom j, every unordered pair of its neighbours.
        for (j, neigh) in adjacency.iter().enumerate() {
            for a in 0..neigh.len() {
                for b in (a + 1)..neigh.len() {
                    self.angles.push(Angle { i: neigh[a], j, k: neigh[b] });
                }
            }
        }

        // Torsions: for every bond j-k, every neighbour i of j (≠ k) and l of k (≠ j).
        for bond in &self.bonds {
            let (j, k) = (bond.i, bond.j);
            for &i in &adjacency[j] {
                if i == k {
                    continue;
                }
                for &l in &adjacency[k] {
                    if l == j || l == i {
                        continue;
                    }
                    self.torsions.push(Torsion { i, j, k, l });
                }
            }
        }
    }

    /// The adjacency list of the bond graph.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n_atoms];
        for b in &self.bonds {
            adj[b.i].push(b.j);
            adj[b.j].push(b.i);
        }
        adj
    }

    /// The set of excluded non-bonded pairs: directly bonded atoms (1-2) and atoms
    /// separated by two bonds (1-3). Returned as ordered `(min, max)` pairs.
    pub fn excluded_pairs(&self) -> HashSet<(usize, usize)> {
        let adjacency = self.adjacency();
        let mut excluded = HashSet::new();
        for b in &self.bonds {
            excluded.insert((b.i.min(b.j), b.i.max(b.j)));
        }
        for (j, neigh) in adjacency.iter().enumerate() {
            for a in 0..neigh.len() {
                for b in (a + 1)..neigh.len() {
                    let (lo, hi) = (neigh[a].min(neigh[b]), neigh[a].max(neigh[b]));
                    if lo != hi {
                        excluded.insert((lo, hi));
                    }
                }
            }
            let _ = j;
        }
        excluded
    }

    /// Merges another topology whose atom indices are offset by `offset`
    /// (used to combine a protein topology with a probe topology into a complex).
    pub fn merge_offset(&mut self, other: &Topology, offset: usize) {
        assert!(offset + other.n_atoms <= self.n_atoms, "merged topology exceeds atom count");
        for b in &other.bonds {
            self.bonds.push(Bond { i: b.i + offset, j: b.j + offset });
        }
        for a in &other.angles {
            self.angles.push(Angle { i: a.i + offset, j: a.j + offset, k: a.k + offset });
        }
        for t in &other.torsions {
            self.torsions.push(Torsion {
                i: t.i + offset,
                j: t.j + offset,
                k: t.k + offset,
                l: t.l + offset,
            });
        }
        for im in &other.impropers {
            self.impropers.push(Improper {
                i: im.i + offset,
                j: im.j + offset,
                k: im.k + offset,
                l: im.l + offset,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a linear chain 0-1-2-3-4.
    fn chain(n: usize) -> Topology {
        let mut t = Topology::new(n);
        for i in 0..n - 1 {
            t.add_bond(i, i + 1);
        }
        t
    }

    #[test]
    fn bonds_are_normalized() {
        let mut t = Topology::new(3);
        t.add_bond(2, 0);
        assert_eq!(t.bonds()[0], Bond { i: 0, j: 2 });
    }

    #[test]
    #[should_panic(expected = "cannot bond to itself")]
    fn self_bond_panics() {
        let mut t = Topology::new(2);
        t.add_bond(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bond_panics() {
        let mut t = Topology::new(2);
        t.add_bond(0, 5);
    }

    #[test]
    fn autogenerate_counts_for_linear_chain() {
        let mut t = chain(5);
        t.autogenerate_bonded_terms();
        // Chain of 5 atoms: 4 bonds, 3 angles, 2 torsions.
        assert_eq!(t.bonds().len(), 4);
        assert_eq!(t.angles().len(), 3);
        assert_eq!(t.torsions().len(), 2);
    }

    #[test]
    fn autogenerate_branched() {
        // Star: atom 0 bonded to 1, 2, 3 → 3 angles centered on 0, no torsions.
        let mut t = Topology::new(4);
        t.add_bond(0, 1);
        t.add_bond(0, 2);
        t.add_bond(0, 3);
        t.autogenerate_bonded_terms();
        assert_eq!(t.angles().len(), 3);
        assert_eq!(t.torsions().len(), 0);
    }

    #[test]
    fn excluded_pairs_for_chain() {
        let t = chain(4);
        let ex = t.excluded_pairs();
        // 1-2 exclusions: (0,1),(1,2),(2,3); 1-3: (0,2),(1,3)
        assert!(ex.contains(&(0, 1)));
        assert!(ex.contains(&(1, 2)));
        assert!(ex.contains(&(2, 3)));
        assert!(ex.contains(&(0, 2)));
        assert!(ex.contains(&(1, 3)));
        assert!(!ex.contains(&(0, 3)));
        assert_eq!(ex.len(), 5);
    }

    #[test]
    fn merge_offsets_indices() {
        let mut protein = chain(3);
        let probe = chain(2);
        let mut combined = Topology::new(5);
        combined.merge_offset(&protein, 0);
        combined.merge_offset(&probe, 3);
        assert_eq!(combined.bonds().len(), 3);
        assert!(combined.bonds().contains(&Bond { i: 3, j: 4 }));
        protein.autogenerate_bonded_terms();
        assert_eq!(protein.angles().len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds atom count")]
    fn merge_overflow_panics() {
        let probe = chain(3);
        let mut combined = Topology::new(4);
        combined.merge_offset(&probe, 2);
    }

    #[test]
    fn explicit_terms_are_kept() {
        let mut t = Topology::new(6);
        t.add_angle(0, 1, 2);
        t.add_torsion(0, 1, 2, 3);
        t.add_improper(1, 0, 2, 3);
        assert_eq!(t.angles().len(), 1);
        assert_eq!(t.torsions().len(), 1);
        assert_eq!(t.impropers().len(), 1);
    }
}
