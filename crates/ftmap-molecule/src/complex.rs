//! Protein–probe complexes.
//!
//! The unit of work for the energy-minimization phase is one *conformation*: the rigid
//! protein plus one docked probe pose. [`Complex`] concatenates the two atom sets,
//! merges their topologies, and knows which atoms are allowed to move during
//! minimization (the probe atoms — rigid docking already fixed the protein, and FTMap
//! minimizes the probe/side-chain degrees of freedom).

use crate::atom::Atom;
use crate::probe::Probe;
use crate::protein::SyntheticProtein;
use crate::topology::Topology;
use ftmap_math::{Real, Vec3};

/// A protein–probe complex ready for energy minimization.
#[derive(Debug, Clone)]
pub struct Complex {
    /// All atoms: protein atoms first, then probe atoms.
    pub atoms: Vec<Atom>,
    /// Merged bonded topology.
    pub topology: Topology,
    /// Index of the first probe atom in `atoms`.
    pub probe_offset: usize,
}

impl Complex {
    /// Builds a complex from a protein and a (posed) probe.
    pub fn new(protein: &SyntheticProtein, probe: &Probe) -> Self {
        let probe_offset = protein.atoms.len();
        let mut atoms = Vec::with_capacity(probe_offset + probe.atoms.len());
        atoms.extend_from_slice(&protein.atoms);
        for (k, atom) in probe.atoms.iter().enumerate() {
            let mut a = *atom;
            a.id = probe_offset + k;
            atoms.push(a);
        }

        let mut topology = Topology::new(atoms.len());
        topology.merge_offset(&protein.topology, 0);
        topology.merge_offset(&probe.topology, probe_offset);

        Complex { atoms, topology, probe_offset }
    }

    /// Total number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of probe atoms.
    pub fn n_probe_atoms(&self) -> usize {
        self.atoms.len() - self.probe_offset
    }

    /// The protein atoms.
    pub fn protein_atoms(&self) -> &[Atom] {
        &self.atoms[..self.probe_offset]
    }

    /// The probe atoms.
    pub fn probe_atoms(&self) -> &[Atom] {
        &self.atoms[self.probe_offset..]
    }

    /// True when atom `i` is free to move during minimization (probe atoms only).
    pub fn is_mobile(&self, i: usize) -> bool {
        i >= self.probe_offset
    }

    /// Positions of all atoms (Å), in order.
    pub fn positions(&self) -> Vec<Vec3> {
        self.atoms.iter().map(|a| a.position).collect()
    }

    /// Overwrites atom positions from a flat slice (used by the minimizer when it
    /// accepts a step).
    ///
    /// # Panics
    /// Panics if the slice length differs from the atom count.
    pub fn set_positions(&mut self, positions: &[Vec3]) {
        assert_eq!(positions.len(), self.atoms.len(), "position count mismatch");
        for (a, &p) in self.atoms.iter_mut().zip(positions) {
            a.position = p;
        }
    }

    /// Centroid of the probe atoms (Å) — the "pose location" used by consensus clustering.
    pub fn probe_centroid(&self) -> Vec3 {
        let pos: Vec<Vec3> = self.probe_atoms().iter().map(|a| a.position).collect();
        Vec3::centroid(&pos)
    }

    /// Minimum distance between any probe atom and any protein atom (Å); a docked pose
    /// should have a small positive value (contact without clashes).
    pub fn min_interface_distance(&self) -> Real {
        let mut best = Real::INFINITY;
        for pa in self.probe_atoms() {
            for ra in self.protein_atoms() {
                best = best.min(pa.position.distance(ra.position));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::probe::ProbeType;
    use crate::protein::ProteinSpec;

    fn small_complex() -> Complex {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let probe = Probe::new(ProbeType::Ethanol, &ff);
        Complex::new(&protein, &probe)
    }

    #[test]
    fn atom_counts_add_up() {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let probe = Probe::new(ProbeType::Acetone, &ff);
        let complex = Complex::new(&protein, &probe);
        assert_eq!(complex.n_atoms(), protein.n_atoms() + probe.n_atoms());
        assert_eq!(complex.n_probe_atoms(), probe.n_atoms());
        assert_eq!(complex.probe_atoms().len(), probe.n_atoms());
        assert_eq!(complex.protein_atoms().len(), protein.n_atoms());
    }

    #[test]
    fn atom_ids_are_global_and_sequential() {
        let complex = small_complex();
        for (i, atom) in complex.atoms.iter().enumerate() {
            assert_eq!(atom.id, i);
        }
    }

    #[test]
    fn mobility_flags() {
        let complex = small_complex();
        assert!(!complex.is_mobile(0));
        assert!(complex.is_mobile(complex.probe_offset));
        assert!(complex.is_mobile(complex.n_atoms() - 1));
        // Mobility agrees with the is_probe flag.
        for (i, atom) in complex.atoms.iter().enumerate() {
            assert_eq!(complex.is_mobile(i), atom.is_probe);
        }
    }

    #[test]
    fn topology_merged_with_offsets() {
        let complex = small_complex();
        // Probe bonds must reference only probe atoms.
        let probe_bond_count =
            complex.topology.bonds().iter().filter(|b| b.i >= complex.probe_offset).count();
        assert!(probe_bond_count > 0);
        for b in complex.topology.bonds() {
            // No bond may cross the protein/probe boundary.
            assert_eq!(b.i >= complex.probe_offset, b.j >= complex.probe_offset);
        }
    }

    #[test]
    fn set_positions_round_trip() {
        let mut complex = small_complex();
        let mut positions = complex.positions();
        positions[0] = Vec3::new(100.0, 0.0, 0.0);
        complex.set_positions(&positions);
        assert_eq!(complex.atoms[0].position, Vec3::new(100.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "position count mismatch")]
    fn set_positions_wrong_length_panics() {
        let mut complex = small_complex();
        complex.set_positions(&[Vec3::ZERO]);
    }

    #[test]
    fn interface_distance_positive() {
        let complex = small_complex();
        assert!(complex.min_interface_distance() > 0.0);
    }
}
