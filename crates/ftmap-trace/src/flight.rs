//! The flight recorder: an always-on bounded ring sink with tail-sampling.
//!
//! Recording everything forever is incompatible with the ≤1.01× overhead
//! gate; recording nothing means the one request you need to explain is
//! gone. The flight recorder threads that needle:
//!
//! * every event lands in a **bounded ring** (sharded like
//!   [`crate::Recorder`]; the oldest events are evicted once a shard fills —
//!   evictions are counted and surfaced via
//!   [`TraceSink::dropped_events`]);
//! * when the serve layer resolves a request it calls
//!   [`FlightRecorder::note_request`] with the tail-sampling verdict: for
//!   SLO-breaching / p99-outlier requests the request's full causal tree
//!   (every event carrying its trace id) is **extracted from the ring and
//!   retained**; everything else ages out naturally;
//! * [`FlightRecorder::dump_perfetto`] renders the retained trees (plus
//!   their critical-path flows) as a Chrome trace JSON document — the
//!   post-incident artifact.
//!
//! Retention is itself bounded ([`FlightRecorder::with_capacity`]): keeping
//! the newest `max_retained` trees, oldest evicted first.

use crate::critical_path::analyze_all;
use crate::event::TraceEvent;
use crate::perfetto::export_chrome_trace_with_flows;
use crate::recorder::resolve_counted;
use crate::sink::TraceSink;
use crate::tree::build_request_trees;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Ring shards (same sharding scheme as [`crate::Recorder`]).
const SHARDS: usize = 16;
/// Default per-recorder event capacity (split across shards).
const DEFAULT_CAPACITY: usize = 65_536;
/// Default number of retained (tail-sampled) request trees.
const DEFAULT_RETAINED: usize = 32;

#[derive(Debug, Default)]
struct Retained {
    /// Newest-last retained trees: `(trace_id, raw events)`.
    trees: VecDeque<(u64, Vec<TraceEvent>)>,
}

/// A bounded, always-on [`TraceSink`] retaining full causal trees only for
/// tail-sampled (slow / SLO-breaching) requests.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: [Mutex<VecDeque<TraceEvent>>; SHARDS],
    shard_capacity: usize,
    max_retained: usize,
    retained: Mutex<Retained>,
    evicted: AtomicU64,
    retained_total: AtomicU64,
    dropped_orphans: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default ring (65 536 events) and retention
    /// (32 trees) capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY, DEFAULT_RETAINED)
    }

    /// A recorder bounding the live ring at `capacity_events` (split across
    /// shards) and retention at `max_retained` trees.
    pub fn with_capacity(capacity_events: usize, max_retained: usize) -> Self {
        FlightRecorder {
            shards: Default::default(),
            shard_capacity: (capacity_events / SHARDS).max(1),
            max_retained: max_retained.max(1),
            retained: Mutex::new(Retained::default()),
            evicted: AtomicU64::new(0),
            retained_total: AtomicU64::new(0),
            dropped_orphans: AtomicU64::new(0),
        }
    }

    fn shard_index() -> usize {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }

    /// Events currently buffered in the live ring.
    pub fn ring_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Ring evictions so far (events that aged out before any request
    /// retained them — expected in the steady state).
    pub fn evicted_events(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Total trees retained by tail-sampling so far (including ones since
    /// evicted from the bounded retention window).
    pub fn retained_total(&self) -> u64 {
        self.retained_total.load(Ordering::Relaxed)
    }

    /// The serve layer's per-request tail-sampling decision: when `keep` is
    /// true, every ring event carrying `trace_id` is moved into the retained
    /// store (bounded, oldest tree evicted first). When `keep` is false this
    /// is a no-op — the request's events age out of the ring on their own.
    pub fn note_request(&self, trace_id: u64, keep: bool) {
        if !keep {
            return;
        }
        let mut events = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            let mut kept = VecDeque::with_capacity(shard.len());
            for event in shard.drain(..) {
                if event.tags.trace == Some(trace_id) {
                    events.push(event);
                } else {
                    kept.push_back(event);
                }
            }
            *shard = kept;
        }
        if events.is_empty() {
            return;
        }
        self.retained_total.fetch_add(1, Ordering::Relaxed);
        let mut retained = self.retained.lock();
        retained.trees.push_back((trace_id, events));
        while retained.trees.len() > self.max_retained {
            retained.trees.pop_front();
        }
    }

    /// Trace ids currently retained, oldest first.
    pub fn retained_trace_ids(&self) -> Vec<u64> {
        self.retained.lock().trees.iter().map(|(id, _)| *id).collect()
    }

    /// The retained events, anchor-resolved and merged onto one timeline
    /// (retention is non-destructive — breach dumps shouldn't race each
    /// other for the evidence).
    pub fn retained_events(&self) -> Vec<TraceEvent> {
        let raw: Vec<TraceEvent> = self
            .retained
            .lock()
            .trees
            .iter()
            .flat_map(|(_, events)| events.iter().cloned())
            .collect();
        let (resolved, orphans) = resolve_counted(raw);
        self.dropped_orphans.fetch_add(orphans, Ordering::Relaxed);
        resolved
    }

    /// Renders the retained trees as a Chrome trace JSON document, with each
    /// request's critical path as flow arrows — the artifact to write out
    /// when an SLO pages.
    pub fn dump_perfetto(&self) -> String {
        let events = self.retained_events();
        let trees = build_request_trees(&events);
        let flows: Vec<_> = analyze_all(&trees).iter().map(|a| a.flow()).collect();
        export_chrome_trace_with_flows(&events, &flows)
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, event: TraceEvent) {
        let mut shard = self.shards[Self::shard_index()].lock();
        if shard.len() >= self.shard_capacity {
            shard.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(event);
    }

    fn dropped_events(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed) + self.dropped_orphans.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Track};

    fn event(name: &str, trace: u64, at: f64) -> TraceEvent {
        let mut e = TraceEvent::instant(Track::Queue, name, Category::Serve, at);
        e.tags.trace = Some(trace);
        e
    }

    #[test]
    fn tail_sampling_retains_only_kept_traces() {
        let flight = FlightRecorder::with_capacity(1024, 4);
        for id in 0..4u64 {
            flight.record(event("admit", id, id as f64));
            flight.record(event("job-resolve", id, id as f64 + 1.0));
        }
        assert_eq!(flight.ring_len(), 8);
        flight.note_request(1, false);
        flight.note_request(2, true);
        assert_eq!(flight.retained_trace_ids(), vec![2]);
        assert_eq!(flight.retained_total(), 1);
        // Trace 2's events left the ring; the rest are still aging there.
        assert_eq!(flight.ring_len(), 6);
        let retained = flight.retained_events();
        assert_eq!(retained.len(), 2);
        assert!(retained.iter().all(|e| e.tags.trace == Some(2)));
        // Retaining a trace with no ring events is a no-op.
        flight.note_request(99, true);
        assert_eq!(flight.retained_total(), 1);
    }

    #[test]
    fn retention_window_is_bounded_oldest_first() {
        let flight = FlightRecorder::with_capacity(1024, 2);
        for id in 0..3u64 {
            flight.record(event("admit", id, id as f64));
            flight.note_request(id, true);
        }
        assert_eq!(flight.retained_trace_ids(), vec![1, 2]);
        assert_eq!(flight.retained_total(), 3);
    }

    #[test]
    fn ring_eviction_is_counted_and_surfaced() {
        let flight = FlightRecorder::with_capacity(SHARDS, 4);
        // shard capacity is 1; this thread lands on one shard, so the second
        // record evicts the first.
        flight.record(event("a", 0, 0.0));
        flight.record(event("b", 0, 1.0));
        assert_eq!(flight.evicted_events(), 1);
        assert_eq!(flight.dropped_events(), 1);
        assert_eq!(flight.ring_len(), 1);
    }

    #[test]
    fn dump_renders_valid_chrome_trace() {
        let flight = FlightRecorder::with_capacity(1024, 4);
        flight.record(event("admit", 7, 0.0));
        flight.record(event("job-resolve", 7, 1.0));
        flight.note_request(7, true);
        let doc = flight.dump_perfetto();
        let parsed = crate::json::parse(&doc).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
    }
}
