//! Small statistics helpers used by the benchmark harness and the profiling reports.
//!
//! The paper's evaluation reports per-step runtimes, percentage breakdowns (Fig. 2/3)
//! and speedup ratios (Tables 1/2). [`RunningStats`] accumulates timing samples online;
//! [`percent_breakdown`] and [`speedup`] convert them into the numbers the report
//! binary prints next to the paper's values.

use crate::Real;
use serde::{Deserialize, Serialize};

/// Online mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: Real,
    m2: Real,
    min: Real,
    max: Real,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: Real::INFINITY, max: Real::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: Real) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as Real;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = Real>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> Real {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> Real {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as Real
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Real {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` if empty).
    pub fn min(&self) -> Real {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    pub fn max(&self) -> Real {
        self.max
    }

    /// Total of all samples.
    pub fn sum(&self) -> Real {
        self.mean() * self.count as Real
    }
}

/// Converts a list of `(label, value)` pairs into `(label, percent-of-total)` pairs.
///
/// Used to regenerate the Fig. 2 / Fig. 3 pie-chart style breakdowns. Values must be
/// non-negative; an all-zero input yields all-zero percentages.
pub fn percent_breakdown<L: Clone>(parts: &[(L, Real)]) -> Vec<(L, Real)> {
    let total: Real = parts.iter().map(|(_, v)| *v).sum();
    parts
        .iter()
        .map(|(l, v)| {
            let pct = if total > 0.0 { 100.0 * v / total } else { 0.0 };
            (l.clone(), pct)
        })
        .collect()
}

/// Speedup of `accelerated` relative to `baseline` (baseline / accelerated).
/// Returns `+inf` when the accelerated time is zero and `0` when the baseline is zero.
pub fn speedup(baseline: Real, accelerated: Real) -> Real {
    if accelerated <= 0.0 {
        if baseline <= 0.0 {
            0.0
        } else {
            Real::INFINITY
        }
    } else {
        baseline / accelerated
    }
}

/// Geometric mean of a slice of positive values; 0 for an empty slice.
pub fn geometric_mean(values: &[Real]) -> Real {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: Real = values.iter().map(|v| v.max(Real::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as Real).exp()
}

/// Median of a slice (averaging the two central elements for even lengths); 0 if empty.
pub fn median(values: &[Real]) -> Real {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        assert!(approx_eq(s.variance(), 32.0 / 7.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(approx_eq(s.sum(), 40.0, 1e-12));
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(3.0);
        assert_eq!(s1.mean(), 3.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.std_dev(), 0.0);
    }

    #[test]
    fn percent_breakdown_sums_to_100() {
        let parts = vec![("fft", 93.0), ("rot", 2.3), ("accum", 2.4), ("filter", 2.3)];
        let pct = percent_breakdown(&parts);
        let total: Real = pct.iter().map(|(_, p)| *p).sum();
        assert!(approx_eq(total, 100.0, 1e-9));
        assert!(pct[0].1 > 90.0);
    }

    #[test]
    fn percent_breakdown_all_zero() {
        let parts = vec![("a", 0.0), ("b", 0.0)];
        let pct = percent_breakdown(&parts);
        assert!(pct.iter().all(|(_, p)| *p == 0.0));
    }

    #[test]
    fn speedup_ratios() {
        assert!(approx_eq(speedup(4060.0, 125.5), 32.35, 0.01));
        assert_eq!(speedup(1.0, 0.0), Real::INFINITY);
        assert_eq!(speedup(0.0, 0.0), 0.0);
    }

    #[test]
    fn geometric_mean_and_median() {
        assert!(approx_eq(geometric_mean(&[1.0, 4.0, 16.0]), 4.0, 1e-9));
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!(approx_eq(median(&[3.0, 1.0, 2.0]), 2.0, 1e-12));
        assert!(approx_eq(median(&[4.0, 1.0, 2.0, 3.0]), 2.5, 1e-12));
        assert_eq!(median(&[]), 0.0);
    }
}
