//! Cross-crate integration tests: the docking engines agree and the GPU path reproduces
//! the paper's qualitative behaviour.

use ftmap::prelude::*;

fn setup() -> (SyntheticProtein, Probe) {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let probe = Probe::new(ProbeType::Acetone, &ff);
    (protein, probe)
}

#[test]
fn gpu_and_direct_engines_retain_identical_pose_sets() {
    let (protein, probe) = setup();
    let direct =
        Docking::new(&protein.atoms, DockingConfig::small_test(DockingEngineKind::DirectSerial))
            .run(&probe);
    let gpu = Docking::new(
        &protein.atoms,
        DockingConfig::small_test(DockingEngineKind::Gpu { batch: 8 }),
    )
    .run(&probe);

    assert_eq!(direct.poses.len(), gpu.poses.len());
    for (d, g) in direct.poses.iter().zip(&gpu.poses) {
        assert_eq!(d.rotation_index, g.rotation_index);
        assert_eq!(d.translation, g.translation);
        assert!((d.score - g.score).abs() < 1e-6);
    }
}

#[test]
fn correlation_dominates_serial_fft_docking() {
    // Fig. 2(b): FFT correlation is ~93 % of the per-rotation cost. On the scaled test
    // grid the exact percentage differs, but correlation must dominate every other step.
    let (protein, probe) = setup();
    let run = Docking::new(&protein.atoms, DockingConfig::small_test(DockingEngineKind::FftSerial))
        .run(&probe);
    let [rot, corr, accum, filt] = run.wall.percentages();
    assert!(corr > rot && corr > accum && corr > filt, "correlation {corr}% should dominate");
}

#[test]
fn modeled_gpu_docking_beats_modeled_serial_docking() {
    // Table 1's bottom line (32.6× overall per-rotation speedup) in qualitative form.
    let (protein, probe) = setup();
    let serial =
        Docking::new(&protein.atoms, DockingConfig::small_test(DockingEngineKind::FftSerial))
            .run(&probe);
    let gpu = Docking::new(
        &protein.atoms,
        DockingConfig::small_test(DockingEngineKind::Gpu { batch: 8 }),
    )
    .run(&probe);
    let speedup = serial.modeled.total() / gpu.modeled.total().max(1e-12);
    assert!(speedup > 1.0, "modeled docking speedup {speedup} should exceed 1");
    // Rotation + grid assignment stays on the host in both paths, so it cannot speed up.
    assert!(gpu.modeled.rotation_grid_s >= serial.modeled.rotation_grid_s * 0.5);
}
