//! # ftmap-molecule
//!
//! Molecular substrate for the ftmap-rs workspace: everything the docking and
//! energy-minimization engines need to know about the molecules themselves.
//!
//! The original FTMap/PIPER pipeline reads PDB structures and CHARMM parameter files.
//! Neither production data set ships with this reproduction, so this crate provides:
//!
//! * [`Atom`], [`AtomKind`] and [`ForceField`] — a compact CHARMM-like parameter set
//!   (partial charge, Lennard-Jones `eps`/`rmin`, ACE solvation volume, Born radius)
//!   sufficient to evaluate every term in the paper's Equations (3)–(10).
//! * [`probe::ProbeLibrary`] — the 16 small-molecule probes FTMap docks
//!   (ethanol, isopropanol, acetone, …) with idealized geometries.
//! * [`protein::SyntheticProtein`] — a deterministic generator of protein-sized atom sets
//!   (~2200 atoms, the complex size quoted in the paper's §V.B) with surface pockets, so
//!   the docking grids, neighbor lists and pair counts have realistic statistics.
//! * [`topology::Topology`] — bonds / angles / torsions / impropers plus exclusion rules,
//!   needed by the bonded energy terms and by neighbor-list construction.
//! * [`neighbor::NeighborList`] — the cutoff neighbor lists that the minimization engine
//!   restructures into pairs-lists (the core of the paper's §IV).
//! * [`pdbio`] — minimal PDB-like text I/O so examples can dump and reload structures.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod atom;
pub mod complex;
pub mod forcefield;
pub mod neighbor;
pub mod pdbio;
pub mod probe;
pub mod protein;
pub mod topology;

pub use atom::{Atom, AtomKind, Element};
pub use complex::Complex;
pub use forcefield::{ForceField, NonbondedParams};
pub use neighbor::NeighborList;
pub use probe::{Probe, ProbeLibrary, ProbeType};
pub use protein::{ProteinSpec, SyntheticProtein};
pub use topology::Topology;
