//! The shared kernel-execution layer: typed launch builder, staged output
//! buffers, and cross-kernel statistics accounting.
//!
//! Before this module existed, every consumer of the device model hand-rolled
//! the same three pieces of machinery around [`Device::launch`]:
//!
//! 1. a [`LaunchConfig`] assembled inline, with ad-hoc clamping of the shared
//!    memory request to the device's per-SM capacity;
//! 2. mutex-wrapped output buffers that blocks write disjoint regions of
//!    (the model's analogue of device global memory), unwrapped after the
//!    launch;
//! 3. manual merging of per-launch [`KernelStats`] across the kernels of a
//!    phase (`KernelStats::zero()` + `accumulate` chains).
//!
//! [`KernelLaunch`] replaces (1): a builder that mirrors CUDA's
//! `kernel<<<grid, block, shmem>>>` launch syntax and knows the device it will
//! run on. [`Staged`] replaces (2): an output buffer owned by the launch layer
//! that kernels write through and the host *takes back* after the launch — the
//! model's equivalent of `cudaMemcpy(DeviceToHost)` for results, with the
//! locking hidden. [`StatsLedger`] replaces (3): a named accumulator that
//! merges stats and counters across the launches of a multi-kernel phase.

use crate::device::Device;
use crate::kernel::{partition_range, BlockKernel, LaunchConfig};
use crate::memory::MemoryCounters;
use crate::residency::CacheStats;
use crate::timing::KernelStats;
use parking_lot::{Mutex, MutexGuard};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;

/// Threads per block used when the builder is not told otherwise — the value
/// the paper's correlation and minimization kernels use throughout.
pub const DEFAULT_THREADS_PER_BLOCK: usize = 64;

/// How the launch grid is sized: an explicit block count, or derived from a
/// work-item count when the launch runs (so the builder methods compose in any
/// order).
#[derive(Debug, Clone, Copy)]
enum GridShape {
    Blocks(usize),
    ForItems(usize),
}

/// A typed, device-aware kernel-launch builder.
///
/// Mirrors the CUDA launch configuration (`<<<grid, block, shmem>>>`): choose a
/// grid with [`grid`](Self::grid) or [`for_items`](Self::for_items), a block
/// width with [`threads`](Self::threads), optionally request shared memory, and
/// execute with [`run`](Self::run) (block-parallel) or
/// [`run_serial`](Self::run_serial) (host-model baseline).
///
/// # Example
///
/// ```
/// use gpu_sim::{BlockContext, Device, KernelLaunch};
///
/// let device = Device::tesla_c1060();
/// let stats = KernelLaunch::on(&device)
///     .for_items(10_000)
///     .run(&|ctx: &mut BlockContext| {
///         let span = ctx.block_range(10_000);
///         ctx.record_flops(span.len() as u64);
///     });
/// assert_eq!(stats.counters.flops, 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct KernelLaunch<'d> {
    device: &'d Device,
    grid: GridShape,
    threads_per_block: usize,
    shared_mem_words: usize,
}

impl<'d> KernelLaunch<'d> {
    /// Starts a launch on `device` with a 1-block grid of
    /// [`DEFAULT_THREADS_PER_BLOCK`] threads and no shared memory.
    pub fn on(device: &'d Device) -> Self {
        KernelLaunch {
            device,
            grid: GridShape::Blocks(1),
            threads_per_block: DEFAULT_THREADS_PER_BLOCK,
            shared_mem_words: 0,
        }
    }

    /// Sets the number of blocks in the grid.
    pub fn grid(mut self, blocks: usize) -> Self {
        assert!(blocks > 0, "launch needs at least one block");
        self.grid = GridShape::Blocks(blocks);
        self
    }

    /// Sets the number of threads per block.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "launch needs at least one thread per block");
        self.threads_per_block = threads;
        self
    }

    /// Sizes the grid so that one thread covers one item: `ceil(n_items /
    /// threads_per_block)` blocks (at least one). The block count is resolved
    /// when the launch runs, so this composes with [`threads`](Self::threads)
    /// in either order.
    pub fn for_items(mut self, n_items: usize) -> Self {
        self.grid = GridShape::ForItems(n_items);
        self
    }

    /// The resolved number of blocks in the grid.
    fn grid_blocks(&self) -> usize {
        match self.grid {
            GridShape::Blocks(blocks) => blocks,
            GridShape::ForItems(n_items) => n_items.div_ceil(self.threads_per_block).max(1),
        }
    }

    /// Requests `words` f64 words of per-block shared memory. The request is
    /// validated against the device's capacity at launch.
    pub fn shared_mem_words(mut self, words: usize) -> Self {
        self.shared_mem_words = words;
        self
    }

    /// Requests `words` f64 words of per-block shared memory, capped at the
    /// device's per-SM capacity — the "use as much shared memory as the part
    /// has" pattern the paper's kernels rely on.
    pub fn shared_mem_capped(mut self, words: usize) -> Self {
        self.shared_mem_words = words.min(self.device.spec().shared_mem_words());
        self
    }

    /// The device this launch targets.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The assembled launch configuration.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid_blocks(), self.threads_per_block)
            .with_shared_mem_words(self.shared_mem_words)
    }

    /// The `start..end` slice of an `n_items`-sized problem owned by
    /// `block_idx` under this launch's grid — the same contiguous-chunk
    /// partition [`crate::BlockContext::block_range`] hands to executing
    /// kernels. Every item is covered by exactly one block.
    pub fn item_range(&self, block_idx: usize, n_items: usize) -> Range<usize> {
        partition_range(block_idx, self.grid_blocks(), n_items)
    }

    /// Executes the kernel block-parallel on the device and returns its stats.
    pub fn run<K: BlockKernel>(&self, kernel: &K) -> KernelStats {
        let stats = self.device.launch(&self.config(), kernel);
        self.trace_launch::<K>(&stats);
        stats
    }

    /// Executes the kernel serially (host-model baseline; no launch overhead,
    /// no worker threads) and returns its stats.
    pub fn run_serial<K: BlockKernel>(&self, kernel: &K) -> KernelStats {
        let stats = self.device.run_serial(&self.config(), kernel);
        self.trace_launch::<K>(&stats);
        stats
    }

    /// Emits the launch as an anchored trace stage when an item scope is
    /// active on this thread (free otherwise). The kernel's type name labels
    /// the span.
    fn trace_launch<K>(&self, stats: &KernelStats) {
        if ftmap_trace::hook::active() {
            let name = std::any::type_name::<K>().rsplit("::").next().unwrap_or("kernel");
            ftmap_trace::hook::kernel(
                name,
                stats.modeled_time_s,
                self.grid_blocks(),
                self.threads_per_block,
            );
        }
    }

    /// Executes the kernel block-parallel and records the stats into `ledger`
    /// under `phase`, returning them as well.
    pub fn run_recorded<K: BlockKernel>(
        &self,
        ledger: &mut StatsLedger,
        phase: &str,
        kernel: &K,
    ) -> KernelStats {
        let stats = self.run(kernel);
        ledger.record(phase, &stats);
        stats
    }
}

/// An output buffer owned by the launch layer.
///
/// Kernels write their results through a `&Staged<T>` captured in the kernel
/// struct — mirroring global-memory writes on a real device — and the host
/// takes the finished buffer back with [`Staged::take`] after the launch. The
/// interior locking that makes concurrent block writes safe is an
/// implementation detail of this type; consumer crates no longer touch a mutex
/// directly.
///
/// Blocks should write *disjoint* regions (as CUDA blocks write disjoint
/// global-memory ranges); the lock makes overlapping writes safe but
/// serialized, not ordered.
#[derive(Debug, Default)]
pub struct Staged<T> {
    slot: Mutex<T>,
}

impl<T> Staged<T> {
    /// Stages an output buffer with the given initial contents.
    pub fn new(value: T) -> Self {
        Staged { slot: Mutex::new(value) }
    }

    /// Locks the buffer for a block's write window.
    pub fn write(&self) -> MutexGuard<'_, T> {
        self.slot.lock()
    }

    /// Consumes the staging slot, returning the finished buffer (the host-side
    /// "download" of the result).
    pub fn take(self) -> T {
        self.slot.into_inner()
    }
}

impl<T: Clone + Default> Staged<Vec<T>> {
    /// Stages a zero-initialized buffer of `n` elements.
    pub fn zeroed(n: usize) -> Self {
        Staged::new(vec![T::default(); n])
    }
}

/// Per-phase record inside a [`StatsLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PhaseRecord {
    launches: usize,
    stats: KernelStats,
    /// Modeled host↔device transfer seconds charged to this phase. Kept in its
    /// own bucket — **not** folded into `stats.modeled_time_s` — so kernel
    /// totals stay transfer-free. This is the ledger-level counterpart of the
    /// convention the scheduler enforces end to end (the pipeline's overlap
    /// accounting itself runs on [`crate::TransferSnapshot`] deltas +
    /// [`crate::sched::Stream`]): transfers are tracked beside kernel time,
    /// never inside it, so they can be overlapped without double-counting.
    transfer_s: f64,
}

impl PhaseRecord {
    fn zero() -> Self {
        PhaseRecord { launches: 0, stats: KernelStats::zero(), transfer_s: 0.0 }
    }
}

/// Accumulates [`KernelStats`] across the launches of a multi-kernel phase (and
/// across phases), replacing the `KernelStats::zero()` + `accumulate` chains
/// each consumer crate used to hand-roll.
///
/// Phases are named; recording twice under one name accumulates (blocks and
/// times add, counters merge, thread width keeps its maximum — the semantics of
/// [`KernelStats::accumulate`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsLedger {
    phases: BTreeMap<String, PhaseRecord>,
    /// Residency-cache hit/miss/eviction events attributed to this ledger's
    /// unit of work (a batch, a job, a run). Like the transfer bucket, cache
    /// events live beside kernel stats, never inside them.
    cache: CacheStats,
    /// Derived-payload residency events (transform/plan entries keyed next to
    /// the raw grids — see [`crate::ResidencyCache::get_or_insert_derived_with`])
    /// attributed to this ledger's unit of work, in their own bucket: a
    /// derived hit skips recomputation, a raw hit skips an upload, and the
    /// reports distinguish the two. `serde(default)` keeps ledgers serialized
    /// before this bucket existed deserializable.
    #[serde(default)]
    derived_cache: CacheStats,
}

impl StatsLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        StatsLedger::default()
    }

    /// Records one launch's stats under `phase`.
    pub fn record(&mut self, phase: &str, stats: &KernelStats) {
        let entry = self.phases.entry(phase.to_string()).or_insert_with(PhaseRecord::zero);
        entry.launches += 1;
        entry.stats.accumulate(stats);
    }

    /// Charges `seconds` of modeled host↔device transfer time to `phase`
    /// (kept separate from kernel time; see [`StatsLedger::total_transfer_s`]).
    pub fn record_transfer_s(&mut self, phase: &str, seconds: f64) {
        let entry = self.phases.entry(phase.to_string()).or_insert_with(PhaseRecord::zero);
        entry.transfer_s += seconds;
    }

    /// Modeled transfer seconds charged to `phase` (0 if never recorded).
    pub fn transfer_s(&self, phase: &str) -> f64 {
        self.phases.get(phase).map(|r| r.transfer_s).unwrap_or(0.0)
    }

    /// Total modeled transfer seconds over all phases. Transfers live in their
    /// own bucket so [`StatsLedger::total_modeled_s`] stays kernel-only; a
    /// stream-overlap model that hides transfers under kernels reports the
    /// overlapped makespan instead of `total_modeled_s() + total_transfer_s()`.
    pub fn total_transfer_s(&self) -> f64 {
        self.phases.values().map(|r| r.transfer_s).sum()
    }

    /// Total modeled seconds with transfers charged back-to-back (the
    /// no-overlap upper bound a single synchronous stream would take).
    pub fn total_serialized_s(&self) -> f64 {
        self.total_modeled_s() + self.total_transfer_s()
    }

    /// Folds residency-cache events (typically a [`CacheStats::delta_since`]
    /// snapshot taken around this ledger's unit of work) into the ledger's
    /// cache bucket.
    pub fn record_cache(&mut self, delta: &CacheStats) {
        self.cache.accumulate(delta);
    }

    /// The residency-cache events recorded on this ledger.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// Folds derived-payload residency events (a
    /// [`CacheStats::delta_since`] snapshot of
    /// [`crate::ResidencyCache::derived_stats`]) into the ledger's derived
    /// bucket, kept separate from the raw-grid bucket.
    pub fn record_derived_cache(&mut self, delta: &CacheStats) {
        self.derived_cache.accumulate(delta);
    }

    /// The derived-payload residency events recorded on this ledger.
    pub fn derived_cache_stats(&self) -> CacheStats {
        self.derived_cache
    }

    /// The merged stats of a phase (zero if the phase was never recorded).
    pub fn phase(&self, phase: &str) -> KernelStats {
        self.phases.get(phase).map(|r| r.stats).unwrap_or_else(KernelStats::zero)
    }

    /// Number of launches recorded under `phase`.
    pub fn launches(&self, phase: &str) -> usize {
        self.phases.get(phase).map(|r| r.launches).unwrap_or(0)
    }

    /// Total launches recorded across all phases.
    pub fn total_launches(&self) -> usize {
        self.phases.values().map(|r| r.launches).sum()
    }

    /// The merged stats over all phases.
    pub fn total(&self) -> KernelStats {
        let mut total = KernelStats::zero();
        for record in self.phases.values() {
            total.accumulate(&record.stats);
        }
        total
    }

    /// The merged memory counters over all phases.
    pub fn total_counters(&self) -> MemoryCounters {
        self.total().counters
    }

    /// Total modeled device seconds over all phases.
    pub fn total_modeled_s(&self) -> f64 {
        self.phases.values().map(|r| r.stats.modeled_time_s).sum()
    }

    /// Merges another ledger into this one, phase by phase.
    pub fn merge(&mut self, other: &StatsLedger) {
        for (name, record) in &other.phases {
            let entry = self.phases.entry(name.clone()).or_insert_with(PhaseRecord::zero);
            entry.launches += record.launches;
            entry.stats.accumulate(&record.stats);
            entry.transfer_s += record.transfer_s;
        }
        self.cache.accumulate(&other.cache);
        self.derived_cache.accumulate(&other.derived_cache);
    }

    /// Phase names with their merged stats, sorted by name.
    pub fn phases(&self) -> impl Iterator<Item = (&str, KernelStats)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), v.stats))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
            && self.cache == CacheStats::default()
            && self.derived_cache == CacheStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BlockContext;
    use crate::DeviceSpec;

    fn stats(blocks: usize, flops: u64, modeled: f64) -> KernelStats {
        KernelStats {
            blocks,
            threads_per_block: 64,
            counters: MemoryCounters { flops, ..Default::default() },
            wall_time_s: 0.0,
            modeled_time_s: modeled,
        }
    }

    #[test]
    fn builder_assembles_config() {
        let device = Device::tesla_c1060();
        let launch = KernelLaunch::on(&device).grid(12).threads(128).shared_mem_words(256);
        let config = launch.config();
        assert_eq!(config.grid_blocks, 12);
        assert_eq!(config.threads_per_block, 128);
        assert_eq!(config.shared_mem_words, 256);
    }

    #[test]
    fn for_items_covers_the_problem() {
        let device = Device::tesla_c1060();
        let launch = KernelLaunch::on(&device).threads(64).for_items(1000);
        assert_eq!(launch.config().grid_blocks, 16);
        // The grid resolves at run time, so builder order does not matter.
        let reversed = KernelLaunch::on(&device).for_items(1000).threads(32);
        assert_eq!(reversed.config().grid_blocks, 1000usize.div_ceil(32));
        // Zero items still launches one (empty-ranged) block.
        let empty = KernelLaunch::on(&device).for_items(0);
        assert_eq!(empty.config().grid_blocks, 1);
    }

    #[test]
    fn shared_mem_capped_respects_device_capacity() {
        let device = Device::tesla_c1060();
        let capacity = device.spec().shared_mem_words();
        let launch = KernelLaunch::on(&device).shared_mem_capped(usize::MAX);
        assert_eq!(launch.config().shared_mem_words, capacity);
        let small = KernelLaunch::on(&device).shared_mem_capped(8);
        assert_eq!(small.config().shared_mem_words, 8);
    }

    #[test]
    fn run_executes_and_run_recorded_feeds_ledger() {
        let device = Device::tesla_c1060();
        let output: Staged<Vec<f64>> = Staged::zeroed(100);
        let mut ledger = StatsLedger::new();
        let stats = {
            let kernel = |ctx: &mut BlockContext| {
                let span = ctx.block_range(100);
                ctx.record_flops(span.len() as u64);
                let mut out = output.write();
                for i in span {
                    out[i] = i as f64;
                }
            };
            KernelLaunch::on(&device).grid(10).run_recorded(&mut ledger, "square", &kernel)
        };
        assert_eq!(stats.counters.flops, 100);
        assert_eq!(ledger.launches("square"), 1);
        assert_eq!(ledger.phase("square").counters.flops, 100);
        let out = output.take();
        assert!((out[99] - 99.0).abs() < 1e-12);
    }

    #[test]
    fn run_serial_uses_host_model() {
        let device = Device::new(DeviceSpec::xeon_core());
        let kernel = |ctx: &mut BlockContext| ctx.record_flops(10);
        let stats = KernelLaunch::on(&device).grid(4).run_serial(&kernel);
        assert_eq!(stats.counters.flops, 40);
        assert_eq!(stats.blocks, 4);
    }

    #[test]
    fn item_range_matches_block_context_partition() {
        let device = Device::tesla_c1060();
        let launch = KernelLaunch::on(&device).grid(10);
        for b in 0..10 {
            let ctx = BlockContext::new(b, 10, 64, crate::memory::SharedMemory::new(0));
            assert_eq!(launch.item_range(b, 103), ctx.block_range(103));
        }
    }

    #[test]
    fn ledger_accumulates_within_a_phase() {
        let mut ledger = StatsLedger::new();
        ledger.record("pair", &stats(10, 100, 0.5));
        ledger.record("pair", &stats(5, 50, 0.25));
        let merged = ledger.phase("pair");
        assert_eq!(merged.blocks, 15);
        assert_eq!(merged.counters.flops, 150);
        assert!((merged.modeled_time_s - 0.75).abs() < 1e-12);
        assert_eq!(ledger.launches("pair"), 2);
    }

    #[test]
    fn ledger_totals_span_phases() {
        let mut ledger = StatsLedger::new();
        ledger.record("a", &stats(1, 10, 0.1));
        ledger.record("b", &stats(2, 20, 0.2));
        assert_eq!(ledger.total().counters.flops, 30);
        assert!((ledger.total_modeled_s() - 0.3).abs() < 1e-12);
        assert_eq!(ledger.total_launches(), 2);
        assert_eq!(ledger.total_counters().flops, 30);
        assert_eq!(ledger.phases().count(), 2);
    }

    #[test]
    fn ledger_missing_phase_is_zero() {
        let ledger = StatsLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.phase("nope"), KernelStats::zero());
        assert_eq!(ledger.launches("nope"), 0);
    }

    #[test]
    fn ledger_transfer_bucket_stays_separate_from_kernel_time() {
        let mut ledger = StatsLedger::new();
        ledger.record("corr", &stats(10, 100, 0.5));
        ledger.record_transfer_s("corr", 0.2);
        ledger.record_transfer_s("upload_only", 0.1);
        // Kernel totals unchanged by transfer recording.
        assert!((ledger.total_modeled_s() - 0.5).abs() < 1e-12);
        assert!((ledger.transfer_s("corr") - 0.2).abs() < 1e-12);
        assert!((ledger.total_transfer_s() - 0.3).abs() < 1e-12);
        assert!((ledger.total_serialized_s() - 0.8).abs() < 1e-12);
        // Transfer-only phases record no launches.
        assert_eq!(ledger.launches("upload_only"), 0);
        // Merge carries the transfer bucket along.
        let mut other = StatsLedger::new();
        other.record_transfer_s("corr", 0.4);
        ledger.merge(&other);
        assert!((ledger.transfer_s("corr") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ledger_merge_combines_ledgers() {
        let mut a = StatsLedger::new();
        a.record("x", &stats(1, 10, 0.1));
        let mut b = StatsLedger::new();
        b.record("x", &stats(2, 20, 0.2));
        b.record("y", &stats(3, 30, 0.3));
        a.merge(&b);
        assert_eq!(a.phase("x").counters.flops, 30);
        assert_eq!(a.phase("y").counters.flops, 30);
        assert_eq!(a.launches("x"), 2);
        assert_eq!(a.total_launches(), 3);
    }

    #[test]
    fn ledger_cache_bucket_accumulates_and_merges() {
        let mut ledger = StatsLedger::new();
        assert!(ledger.is_empty());
        ledger.record_cache(&CacheStats { hits: 2, misses: 1, evictions: 0, insertions: 1 });
        assert!(!ledger.is_empty());
        // Cache events never leak into kernel or transfer totals.
        assert_eq!(ledger.total_modeled_s(), 0.0);
        assert_eq!(ledger.total_transfer_s(), 0.0);
        let mut other = StatsLedger::new();
        other.record_cache(&CacheStats { hits: 1, misses: 1, evictions: 1, insertions: 0 });
        ledger.merge(&other);
        let cache = ledger.cache_stats();
        assert_eq!((cache.hits, cache.misses, cache.evictions, cache.insertions), (3, 2, 1, 1));
        assert!((cache.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ledger_derived_cache_bucket_is_separate() {
        let mut ledger = StatsLedger::new();
        ledger.record_derived_cache(&CacheStats {
            hits: 4,
            misses: 1,
            evictions: 0,
            insertions: 1,
        });
        assert!(!ledger.is_empty());
        // The raw-grid bucket is untouched.
        assert_eq!(ledger.cache_stats(), CacheStats::default());
        assert_eq!(ledger.derived_cache_stats().hits, 4);
        // Merge carries the derived bucket along.
        let mut other = StatsLedger::new();
        other.record_derived_cache(&CacheStats { hits: 1, misses: 2, evictions: 1, insertions: 2 });
        ledger.merge(&other);
        let derived = ledger.derived_cache_stats();
        assert_eq!(
            (derived.hits, derived.misses, derived.evictions, derived.insertions),
            (5, 3, 1, 3)
        );
    }

    #[test]
    fn staged_buffers_roundtrip() {
        let staged = Staged::new(vec![0.0f64; 4]);
        staged.write()[2] = 7.0;
        assert_eq!(staged.take(), vec![0.0, 0.0, 7.0, 0.0]);
        let zeroed: Staged<Vec<u32>> = Staged::zeroed(3);
        assert_eq!(zeroed.take(), vec![0, 0, 0]);
    }
}
