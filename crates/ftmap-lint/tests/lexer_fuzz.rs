//! Property test: banned constructs embedded in comments, strings, raw
//! strings, byte strings and block comments NEVER produce diagnostics —
//! i.e. the lexer cannot be tricked into reading data as code.
//!
//! The vendored proptest stub has no string strategies, so payloads are
//! built by indexing a palette of the nastiest fragments with generated
//! index vectors, and the wrapper form (line comment / block comment /
//! string / raw string / byte string) is itself a generated choice.

use ftmap_lint::lint_source;
use proptest::prelude::*;

/// Fragments that would each fire a rule if lexed as code on a hot path.
/// Every item is newline-free, contains no `*/` (block-comment safe) and no
/// `"#` (raw-string safe).
const PALETTE: &[&str] = &[
    "Instant::now()",
    "SystemTime::now()",
    "state.lock().unwrap()",
    ".expect(\"boom\")",
    "panic!(\"dead\")",
    "unreachable!()",
    "todo!()",
    "LaunchConfig::new(64, 128)",
    "device.launch(&config, &kernel)",
    "device.run_serial(&config, &kernel)",
    "record_transfer(Transfer::upload(8))",
    "Transfer::download(1024)",
    "#[allow(dead_code)]",
    "lint-allow(no-wall-clock): not a real suppression target",
    "\\",              // a lone backslash stresses escape handling
    "' \" r# b\" br#", // quote/prefix soup
];

/// The strictest scope: every path-scoped rule applies here.
const HOT_PATH: &str = "crates/gpu-sim/src/sched/fuzz.rs";

fn payload(indices: &[usize]) -> String {
    let mut out = String::new();
    for (k, &i) in indices.iter().enumerate() {
        if k > 0 {
            out.push(' ');
        }
        out.push_str(PALETTE[i % PALETTE.len()]);
    }
    out
}

/// Escapes a payload for embedding in an ordinary `"…"` literal.
fn escape(payload: &str) -> String {
    payload.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Wraps the payload in the chosen non-code form inside a clean scaffold.
fn embed(form: usize, payload: &str) -> String {
    match form % 5 {
        0 => format!("fn scaffold() {{\n    // {payload}\n    let x = 1;\n}}\n"),
        1 => format!("fn scaffold() {{\n    /* {payload} */\n    let x = 1;\n}}\n"),
        2 => {
            let escaped = escape(payload);
            format!("fn scaffold() {{\n    let s = \"{escaped}\";\n    let x = s.len();\n}}\n")
        }
        3 => format!("fn scaffold() {{\n    let s = r#\"{payload}\"#;\n    let x = s.len();\n}}\n"),
        _ => {
            format!("fn scaffold() {{\n    let s = b\"{}\";\n    let x = 1;\n}}\n", escape(payload))
        }
    }
}

proptest! {
    #[test]
    fn embedded_payloads_never_lint(
        form in 0usize..5,
        indices in prop::collection::vec(0usize..PALETTE.len(), 1..8),
    ) {
        let src = embed(form, &payload(&indices));
        let diags = lint_source(HOT_PATH, &src);
        prop_assert!(
            diags.is_empty(),
            "payload leaked out of its wrapper: {:?}\nsource:\n{}",
            diags,
            src
        );
    }

    #[test]
    fn code_after_the_wrapper_still_lints(
        form in 0usize..5,
        indices in prop::collection::vec(0usize..PALETTE.len(), 1..8),
    ) {
        // The dual property: a real violation *after* the wrapped payload
        // must still be seen — the wrapper cannot swallow trailing code.
        let mut src = embed(form, &payload(&indices));
        src.push_str("fn tail(v: Option<u32>) -> u32 { v.unwrap() }\n");
        let diags = lint_source(HOT_PATH, &src);
        prop_assert!(
            diags.len() == 1 && diags[0].rule == "no-panic-in-workers",
            "expected exactly the tail unwrap, got: {diags:?}\nsource:\n{src}"
        );
    }
}
