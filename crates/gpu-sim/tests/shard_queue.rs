//! Property tests on the scheduler's shard queue: the work-stealing dispatch
//! must hand every work item to exactly one device-worker — never skipping,
//! never double-assigning — and re-assemble results in submission order, for
//! any item count and pool size (the `launch_partition` properties, one layer
//! up the stack).

use gpu_sim::sched::{DevicePool, ShardQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted item is serviced exactly once: the union of the
    /// per-device assignment lists is a permutation of 0..n_items, and each
    /// worker's stream recorded exactly as many ops as it claimed items.
    #[test]
    fn every_item_dispatched_exactly_once(
        n_items in 0usize..200,
        pool_size in 1usize..6,
    ) {
        let pool = DevicePool::tesla(pool_size);
        let queue = ShardQueue::new(&pool);
        let outcome = queue.execute(vec![(); n_items], |_, ()| ((), 1e-6));

        prop_assert_eq!(outcome.results.len(), n_items);
        prop_assert_eq!(outcome.reports.len(), pool_size);
        let mut covered = vec![0u32; n_items];
        for report in &outcome.reports {
            prop_assert_eq!(report.stream.ops, report.items());
            for &idx in &report.item_indices {
                prop_assert!(idx < n_items, "assigned out-of-range item {}", idx);
                covered[idx] += 1;
            }
        }
        prop_assert!(
            covered.iter().all(|&c| c == 1),
            "items covered other than exactly once: {:?}",
            covered.iter().enumerate().filter(|(_, &c)| c != 1).take(5).collect::<Vec<_>>()
        );
    }

    /// Results come back in submission order no matter which device serviced
    /// which shard, and the shard context reports the item's true index.
    #[test]
    fn results_are_ordered_by_submission(
        n_items in 0usize..150,
        pool_size in 1usize..5,
    ) {
        let pool = DevicePool::tesla(pool_size);
        let queue = ShardQueue::new(&pool);
        let items: Vec<usize> = (0..n_items).collect();
        let outcome =
            queue.execute(items, |ctx, item| ((item, ctx.item_index, ctx.device_index), 1e-6));
        for (i, &(item, item_index, device_index)) in outcome.results.iter().enumerate() {
            prop_assert!(item == i, "result slot {} holds item {}", i, item);
            prop_assert_eq!(item_index, i);
            prop_assert!(device_index < pool_size);
        }
    }

    /// Stream accounting invariants survive arbitrary work shapes: per-device
    /// overlapped time never exceeds serialized time, the makespan is the max
    /// of the per-device busy times, and skew is at least 1.
    #[test]
    fn stream_accounting_invariants(
        n_items in 1usize..60,
        pool_size in 1usize..5,
        kernel_us in 1u32..50,
    ) {
        let pool = DevicePool::tesla(pool_size);
        let queue = ShardQueue::new(&pool);
        let kernel_s = kernel_us as f64 * 1e-6;
        let outcome = queue.execute(vec![(); n_items], |ctx, ()| {
            ctx.device.upload_bytes(64 << 10);
            ctx.device.download_bytes(16 << 10);
            ((), kernel_s)
        });
        let mut max_busy = 0.0_f64;
        for report in &outcome.reports {
            prop_assert!(report.busy_s() <= report.stream.serialized_s + 1e-12);
            let expected_kernel_s = report.stream.ops as f64 * kernel_s;
            prop_assert!((report.stream.kernel_s - expected_kernel_s).abs() < 1e-12);
            max_busy = max_busy.max(report.busy_s());
        }
        prop_assert!((outcome.makespan_s() - max_busy).abs() < 1e-15);
        prop_assert!(outcome.load_skew() >= 1.0 - 1e-12);
        let total_ops: usize = outcome.reports.iter().map(|r| r.stream.ops).sum();
        prop_assert_eq!(total_ops, n_items);
    }
}
