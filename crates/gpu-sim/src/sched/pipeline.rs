//! The cross-batch phased pipeline: dock → minimize with no global barrier.
//!
//! [`super::ShardQueue`] executes one fixed item list per call, so a two-phase
//! schedule (dock every probe, then minimize every pose block) is two calls
//! with a **barrier** between them: at the end of each phase the pool idles
//! while the slowest device drains, and nothing from the next batch may start
//! until the current batch's last block lands. [`PhasePipeline`] removes both
//! waits. Workers are **persistent** (one per pooled device, alive for the
//! scheduler's lifetime) and feed from one continuously-refilled ready set:
//!
//! * each batch submits **phase-tagged items** — a dock item per entry, whose
//!   completion *generates* that entry's minimize-block items (the
//!   dock→minimize dependency edge is per probe, not per phase), so probe A's
//!   pose blocks minimize while probe B is still docking;
//! * batches queue up behind each other without draining the pool: when batch
//!   N's tail leaves devices idle, those devices immediately claim batch
//!   N+1's dock items — the paper's transfer/compute overlap idea applied one
//!   level up, across request batches;
//! * every batch carries a **priority** (lower wins): all ready items of an
//!   urgent batch are claimed before any item of a patient one, so a small
//!   interactive batch overtakes a bulk scan at the next item boundary
//!   instead of waiting out its phases. Priority never affects *results* —
//!   only when work runs.
//!
//! Determinism: item execution writes into per-entry/per-block slots owned by
//! the submitting [`PhasedExec`], and folding happens in `(entry, pose)` order
//! at batch completion, so results are bit-identical to any barriered or
//! single-device schedule no matter how batches interleave.
//!
//! Accounting is **batch-scoped**: each item's transfer seconds come from a
//! [`crate::TransferSnapshot`] delta taken on the servicing device around that
//! item alone and are recorded on the *owning batch's* per-device streams.
//! Two batches overlapping on the pool can therefore never double-attribute a
//! transfer — the fix for the ledger-window scheme ([`crate::StatsLedger`]
//! buckets filled from `pool.total_transfer_time()` between resets), which
//! silently charges batch N+1's uploads to batch N once phases overlap.
//!
//! A modeled **virtual timeline** runs alongside: each device's clock advances
//! by the modeled seconds of the items it services (an item never starts
//! before its dependency's completion instant), giving per-batch modeled
//! span/latency figures and a pool makespan that reflect the overlap — the
//! quantities the `fig_serve_pipeline` bench gates.

use crate::device::Device;
use crate::sched::pool::DevicePool;
use crate::sched::shard::ShardCtx;
use crate::sched::stream::Stream;
use crate::sync::{locked, wait_on};
use crate::timing::{StreamOp, StreamStats};
use ftmap_trace::{Category, ItemScope, Tags, TraceEvent, TraceSink, Track};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Which stage of the dock→minimize pipeline an item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Rigid docking of one entry (probe): runs as soon as a device is free.
    Dock,
    /// Minimization of one pose block: runs only after its entry's dock item
    /// completed (the per-probe dependency edge).
    Minimize,
}

/// What a batch knows how to execute. Implementors own their payloads and
/// result slots; the scheduler only routes `(entry, pose_range)` descriptors
/// to devices, so it stays agnostic of probes, grids and shards.
pub trait PhasedExec: Send + Sync {
    /// Docks entry `entry` on the servicing device. Returns the item's pure
    /// modeled **kernel** seconds (transfers are captured from the device's
    /// accounting and must not be folded in) plus the minimize-block layout
    /// this dock unlocked: one `(pose_range, weight)` per block, in pose
    /// order. An empty layout means the entry is finished after docking
    /// (e.g. a fused dock+minimize item).
    fn dock(&self, ctx: &ShardCtx<'_>, entry: usize) -> (f64, Vec<(Range<usize>, f64)>);

    /// Minimizes one of entry `entry`'s pose blocks on the servicing device,
    /// returning the block's pure modeled kernel seconds.
    fn minimize(&self, ctx: &ShardCtx<'_>, entry: usize, pose_range: Range<usize>) -> f64;
}

/// Trace identity a batch carries: who submitted it and at which urgency
/// tier. Flows onto every trace event the batch's items emit; empty by
/// default (`BatchLabel::default()`), which costs nothing when tracing is
/// off.
#[derive(Debug, Clone, Default)]
pub struct BatchLabel {
    /// Tenant identity (the serve layer's job tag).
    pub tenant: Option<String>,
    /// Latency class name (`"interactive"` / `"bulk"`).
    pub class: Option<&'static str>,
}

/// One batch submitted to the pipeline.
pub struct PhasedBatch {
    /// Scheduling priority: **lower is more urgent**. Ready items of a more
    /// urgent batch are always claimed first; ties break by submission order.
    pub priority: u32,
    /// Number of dock entries; the scheduler submits dock items `0..entries`.
    pub entries: usize,
    /// Cost-model weight per dock item (uniform 1.0 is fine); must have
    /// `entries` elements.
    pub dock_weights: Vec<f64>,
    /// The executor that does the work and owns the results.
    pub exec: Arc<dyn PhasedExec>,
    /// Trace identity (tenant / latency class); `BatchLabel::default()` when
    /// the caller has none.
    pub label: BatchLabel,
    /// Request trace id per dock entry (empty when the caller doesn't do
    /// request-level tracing; otherwise must have `entries` elements). Each
    /// entry's id flows onto its dock item span and every minimize item the
    /// dock unlocks, so per-request causal trees can be reassembled from the
    /// event stream.
    pub entry_traces: Vec<u64>,
}

/// Per-device account of what one batch ran, split by phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhasedDeviceReport {
    /// Human-readable device name.
    pub device: String,
    /// Dock-phase stream summary on this device (this batch's items only).
    pub dock: StreamStats,
    /// Minimize-phase stream summary on this device (this batch's items only).
    pub minimize: StreamStats,
}

impl PhasedDeviceReport {
    /// Modeled busy seconds this batch put on the device (both phases,
    /// overlap applied per phase stream).
    pub fn busy_s(&self) -> f64 {
        self.dock.overlapped_s + self.minimize.overlapped_s
    }

    /// Items of either phase serviced on this device.
    pub fn items(&self) -> usize {
        self.dock.ops + self.minimize.ops
    }
}

/// What one batch did, returned on completion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// The batch's submission sequence number (scheduler-wide, 0-based).
    pub seq: usize,
    /// The priority it ran at.
    pub priority: u32,
    /// Virtual-timeline instant of submission (seconds).
    pub submitted_v_s: f64,
    /// Virtual instant the batch's first item started.
    pub started_v_s: f64,
    /// Virtual instant the batch's last item completed.
    pub completed_v_s: f64,
    /// Dock items executed.
    pub docks: usize,
    /// Minimize-block items executed.
    pub blocks: usize,
    /// Per-device, per-phase stream accounting — **scoped to this batch**, so
    /// overlapping batches never share a transfer second.
    pub per_device: Vec<PhasedDeviceReport>,
}

impl BatchReport {
    /// Modeled latency: completion minus submission on the virtual timeline.
    pub fn latency_modeled_s(&self) -> f64 {
        (self.completed_v_s - self.submitted_v_s).max(0.0)
    }

    /// Modeled span: the batch's own start-to-finish window.
    pub fn span_modeled_s(&self) -> f64 {
        (self.completed_v_s - self.started_v_s).max(0.0)
    }

    /// Total modeled transfer seconds this batch caused (both phases, all
    /// devices) — the batch-scoped figure a ledger bucket should carry.
    pub fn transfer_modeled_s(&self) -> f64 {
        self.per_device
            .iter()
            .map(|d| {
                d.dock.upload_s + d.dock.download_s + d.minimize.upload_s + d.minimize.download_s
            })
            .sum()
    }

    /// What the same work would have cost under a per-batch two-phase
    /// barrier run in isolation: dock-phase makespan plus minimize-phase
    /// makespan (each phase as slow as its busiest device).
    pub fn barrier_equivalent_s(&self) -> f64 {
        let dock = self.per_device.iter().map(|d| d.dock.overlapped_s).fold(0.0, f64::max);
        let minimize = self.per_device.iter().map(|d| d.minimize.overlapped_s).fold(0.0, f64::max);
        dock + minimize
    }

    /// Modeled seconds the phase overlap saved versus the barriered schedule
    /// of the same items (0 when the span already exceeds the barrier sum).
    pub fn overlap_saved_s(&self) -> f64 {
        (self.barrier_equivalent_s() - self.span_modeled_s()).max(0.0)
    }
}

/// Shared completion slot between a [`BatchHandle`] and the workers.
struct SlotState {
    report: Option<BatchReport>,
    /// Set when a worker panicked while this batch was in flight: the batch
    /// can never complete, so waiters must fail loudly instead of hanging.
    stranded: bool,
}

type BatchSlot = Arc<(Mutex<SlotState>, Condvar)>;

fn new_slot() -> BatchSlot {
    Arc::new((Mutex::new(SlotState { report: None, stranded: false }), Condvar::new()))
}

/// A waiter's view of one submitted batch.
#[derive(Clone)]
pub struct BatchHandle {
    slot: BatchSlot,
    seq: usize,
}

impl BatchHandle {
    /// The batch's scheduler-wide sequence number.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// True once the batch completed ([`BatchHandle::wait`] will not block).
    pub fn is_completed(&self) -> bool {
        locked(&self.slot.0).report.is_some()
    }

    /// Blocks until the batch completes, returning its report.
    ///
    /// # Panics
    /// Panics if a scheduler worker panicked while the batch was in flight
    /// (the batch is stranded and would otherwise never resolve).
    pub fn wait(&self) -> BatchReport {
        let (lock, done) = &*self.slot;
        let mut state = locked(lock);
        loop {
            if let Some(report) = &state.report {
                return report.clone();
            }
            if state.stranded {
                // Release the guard before panicking so the slot mutex stays
                // usable for other waiters (they will observe `stranded` too).
                drop(state);
                // lint-allow(no-panic-in-workers): the documented loud-failure
                // API for stranded batches — this runs on the *waiter's*
                // thread, after the worker panic that poisoned the scheduler.
                panic!("phase-pipeline worker panicked; batch {} is stranded", self.seq);
            }
            state = wait_on(done, state);
        }
    }
}

/// One ready-to-run item in the shared queue.
struct ReadyItem {
    batch_slot: usize,
    /// The owning batch's executor, carried with the item so workers never
    /// need to re-lock the scheduler mid-execution to find it.
    exec: Arc<dyn PhasedExec>,
    phase: Phase,
    entry: usize,
    pose_range: Range<usize>,
    weight: f64,
    /// Virtual instant the item became runnable (its dock parent's completion
    /// for minimize items; the batch's submission instant for dock items).
    ready_v_s: f64,
    /// Latency-class tag carried for trace item spans (`Copy`, so free even
    /// when tracing is off).
    class: Option<&'static str>,
    /// Request trace id of the entry this item serves (from
    /// [`PhasedBatch::entry_traces`]); minimize items inherit their dock's.
    trace: Option<u64>,
}

/// In-flight bookkeeping for one batch.
struct BatchState {
    seq: usize,
    priority: u32,
    /// Items submitted but not yet completed (docks + generated blocks).
    outstanding: usize,
    /// Dock items not yet completed — while nonzero, more blocks may appear.
    docks_pending: usize,
    docks_done: usize,
    blocks_done: usize,
    submitted_v_s: f64,
    started_v_s: f64,
    completed_v_s: f64,
    /// Per-device `[dock, minimize]` streams, scoped to this batch.
    streams: Vec<[Stream; 2]>,
    /// Trace identity the batch was submitted with.
    label: BatchLabel,
    slot: BatchSlot,
    on_complete: Option<Box<dyn FnOnce(BatchReport) + Send>>,
}

/// Everything the workers share.
struct SchedState {
    /// Ready items, ordered by `(priority, batch seq, insertion order)` — the
    /// first entry is always the most urgent runnable work.
    ready: BTreeMap<(u32, usize, u64), ReadyItem>,
    next_order: u64,
    /// Live batches by slot id (completed batches are removed).
    batches: BTreeMap<usize, BatchState>,
    /// Batches submitted whose completion (including the completion callback)
    /// has not finished yet. This — not `batches.is_empty()` — is what
    /// [`PhasePipeline::drain`] and capacity waiters watch: a batch leaves
    /// `batches` before its callback runs, but it only stops counting here
    /// *after* the callback returns, so a drainer can never observe "all
    /// done" while a callback still holds scheduler or caller state.
    unfinished: usize,
    next_seq: usize,
    /// Per-device modeled clocks: the virtual timeline work is laid onto.
    device_clock: Vec<f64>,
    /// Per-device completed-cost tallies for claim gating: (modeled seconds,
    /// summed weights, items).
    completed: Vec<(f64, f64, usize)>,
    shutdown: bool,
    /// Set when a worker panicked: in-flight batches are stranded and every
    /// blocking entry point fails loudly instead of hanging.
    poisoned: bool,
}

impl SchedState {
    /// Mean modeled cost per completed item across the pool (`None` before
    /// the first completion) — the slack band of the claim gate.
    fn mean_item_cost(&self) -> Option<f64> {
        let (cost, items) =
            self.completed.iter().fold((0.0, 0usize), |(c, n), t| (c + t.0, n + t.2));
        if items == 0 {
            None
        } else {
            Some(cost / items as f64)
        }
    }

    /// Whether worker `idx` may claim work now: its device clock must be
    /// within half a mean item cost of the pool minimum (the min-clock worker
    /// is never gated, so the queue always drains). Same fairness rule as
    /// [`super::ShardQueue`]'s modeled-cost stealing, driven by the device
    /// clocks the virtual timeline keeps anyway.
    fn may_claim(&self, idx: usize) -> bool {
        let Some(mean) = self.mean_item_cost() else {
            return true;
        };
        let min = self.device_clock.iter().copied().fold(f64::INFINITY, f64::min);
        self.device_clock[idx] <= min + 0.5 * mean
    }

    /// True when every submitted batch has fully completed, callbacks
    /// included.
    fn all_batches_done(&self) -> bool {
        self.unfinished == 0
    }

    /// Number of batches still incomplete (callbacks included).
    fn inflight(&self) -> usize {
        self.unfinished
    }
}

/// The persistent, priority-aware two-stage pipeline over a device pool. See
/// the [module docs](self).
pub struct PhasePipeline {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

struct Shared {
    pool: Arc<DevicePool>,
    state: Mutex<SchedState>,
    /// Workers park here waiting for claimable work; batch completion and
    /// capacity changes notify it too.
    work: Condvar,
    /// Capacity/completion waiters ([`PhasePipeline::wait_capacity`],
    /// drain) park here.
    settled: Condvar,
    /// Trace sink every worker records into. [`ftmap_trace::noop`] by
    /// default: workers check `enabled()` once per item and skip all tag
    /// assembly when tracing is off.
    trace: Arc<dyn TraceSink>,
}

impl PhasePipeline {
    /// Starts a pipeline over `pool`, spawning one persistent worker per
    /// pooled device. Workers idle (parked on a condvar) until batches arrive
    /// and exit on [`PhasePipeline::shutdown`] / drop.
    pub fn new(pool: Arc<DevicePool>) -> Self {
        Self::with_trace(pool, ftmap_trace::noop())
    }

    /// Like [`PhasePipeline::new`], but every scheduler edge — item claim,
    /// dock/minimize spans, batch submit/start/complete — plus the kernel,
    /// transfer and cache events the items generate are recorded into `sink`
    /// on the modeled virtual timeline.
    pub fn with_trace(pool: Arc<DevicePool>, sink: Arc<dyn TraceSink>) -> Self {
        let n = pool.len();
        let shared = Arc::new(Shared {
            pool: Arc::clone(&pool),
            trace: sink,
            state: Mutex::new(SchedState {
                ready: BTreeMap::new(),
                next_order: 0,
                batches: BTreeMap::new(),
                unfinished: 0,
                next_seq: 0,
                device_clock: vec![0.0; n],
                completed: vec![(0.0, 0.0, 0); n],
                shutdown: false,
                poisoned: false,
            }),
            work: Condvar::new(),
            settled: Condvar::new(),
        });
        let workers = (0..n)
            .map(|device_index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, device_index))
            })
            .collect();
        PhasePipeline { shared, workers }
    }

    /// The pool this pipeline schedules onto.
    pub fn pool(&self) -> &Arc<DevicePool> {
        &self.shared.pool
    }

    /// Submits a batch; its dock items become claimable immediately. Returns
    /// a handle the caller may wait on; `on_complete` (if any) runs exactly
    /// once, on the worker that finishes the batch's last item, before the
    /// handle resolves.
    ///
    /// # Panics
    /// Panics if the pipeline has been shut down, or if `dock_weights` does
    /// not have `entries` elements.
    pub fn submit(
        &self,
        batch: PhasedBatch,
        on_complete: Option<Box<dyn FnOnce(BatchReport) + Send>>,
    ) -> BatchHandle {
        assert_eq!(batch.dock_weights.len(), batch.entries, "dock_weights must cover every entry");
        assert!(
            batch.entry_traces.is_empty() || batch.entry_traces.len() == batch.entries,
            "entry_traces must be empty or cover every entry"
        );
        let slot = new_slot();
        let exec = Arc::clone(&batch.exec);
        let mut state = locked(&self.shared.state);
        assert!(!state.shutdown, "submit after PhasePipeline::shutdown");
        assert!(
            !state.poisoned,
            "submit to a poisoned PhasePipeline (a worker panicked; its device is gone \
             and the claim gate would stall new work)"
        );
        let seq = state.next_seq;
        state.next_seq += 1;
        state.unfinished += 1;
        // "Now" on the virtual timeline: the earliest instant any device
        // could pick the new work up.
        let submitted_v_s = state.device_clock.iter().copied().fold(f64::INFINITY, f64::min);
        let entries = batch.entries;
        let class = batch.label.class;
        if self.shared.trace.enabled() {
            let tags = Tags {
                batch_seq: Some(seq as u64),
                tenant: batch.label.tenant.clone(),
                class,
                ..Tags::default()
            }
            .with_num("entries", entries as f64)
            .with_num("priority", f64::from(batch.priority));
            self.shared.trace.record(
                TraceEvent::instant(
                    Track::Batch(seq as u64),
                    "batch-submit",
                    Category::Batch,
                    submitted_v_s,
                )
                .with_tags(tags),
            );
        }
        let batch_state = BatchState {
            seq,
            priority: batch.priority,
            outstanding: entries,
            docks_pending: entries,
            docks_done: 0,
            blocks_done: 0,
            submitted_v_s,
            started_v_s: f64::INFINITY,
            completed_v_s: submitted_v_s,
            streams: (0..self.shared.pool.len()).map(|_| [Stream::new(), Stream::new()]).collect(),
            label: batch.label,
            slot: Arc::clone(&slot),
            on_complete,
        };
        // An empty batch completes immediately (no items will ever run), so it
        // never enters the live-batch table at all.
        if entries == 0 {
            drop(state);
            {
                // A callback panic here unwinds the *submitting* thread —
                // loud on its own, but `unfinished` would stay forever
                // nonzero: poison the scheduler and strand the slot so later
                // drain()/wait() calls fail instead of hanging.
                let _poison_guard = PoisonGuard { shared: &self.shared };
                let strand_guard = StrandGuard::new(&slot);
                finish_batch(&self.shared, batch_state);
                strand_guard.disarm();
            }
            locked(&self.shared.state).unfinished -= 1;
            self.shared.settled.notify_all();
            self.shared.work.notify_all();
            return BatchHandle { slot, seq };
        }
        state.batches.insert(seq, batch_state);
        for entry in 0..entries {
            let order = state.next_order;
            state.next_order += 1;
            state.ready.insert(
                (batch.priority, seq, order),
                ReadyItem {
                    batch_slot: seq,
                    exec: Arc::clone(&exec),
                    phase: Phase::Dock,
                    entry,
                    pose_range: 0..0,
                    weight: batch.dock_weights[entry],
                    ready_v_s: submitted_v_s,
                    class,
                    trace: batch.entry_traces.get(entry).copied(),
                },
            );
        }
        drop(state);
        self.shared.work.notify_all();
        BatchHandle { slot, seq }
    }

    /// Blocks until fewer than `max_inflight` batches are incomplete — the
    /// dispatcher's flow control: keep batch N+1 docking under batch N, but
    /// never pile up unboundedly.
    ///
    /// # Panics
    /// Panics if a scheduler worker panicked (capacity may never free up).
    pub fn wait_capacity(&self, max_inflight: usize) {
        let mut state = locked(&self.shared.state);
        while state.inflight() >= max_inflight.max(1) {
            if state.poisoned {
                drop(state); // keep the state mutex held by nobody while panicking
                             // lint-allow(no-panic-in-workers): documented loud-failure API
                             // on the caller's thread once the scheduler is poisoned.
                panic!("phase-pipeline worker panicked; batches are stranded");
            }
            state = wait_on(&self.shared.settled, state);
        }
    }

    /// Blocks until every submitted batch has completed.
    ///
    /// # Panics
    /// Panics if a scheduler worker panicked (stranded batches never
    /// complete — hanging here silently would hide the failure).
    pub fn drain(&self) {
        let mut state = locked(&self.shared.state);
        while !state.all_batches_done() {
            if state.poisoned {
                drop(state); // keep the state mutex held by nobody while panicking
                             // lint-allow(no-panic-in-workers): documented loud-failure API
                             // on the caller's thread once the scheduler is poisoned.
                panic!("phase-pipeline worker panicked; batches are stranded");
            }
            state = wait_on(&self.shared.settled, state);
        }
    }

    /// Number of batches currently incomplete.
    pub fn inflight(&self) -> usize {
        locked(&self.shared.state).inflight()
    }

    /// The scheduler's current virtual instant: the earliest point any
    /// device could begin new work (the minimum device clock — the same
    /// instant [`submit`](PhasePipeline::submit) stamps on a new batch).
    /// Admission layers stamp requests with this at arrival to measure
    /// modeled queue wait that accrues *before* batch submission.
    pub fn now_v_s(&self) -> f64 {
        let state = locked(&self.shared.state);
        state.device_clock.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The modeled pool makespan so far: the busiest device's virtual clock.
    /// After [`PhasePipeline::drain`] this is the modeled time the whole
    /// pipelined run took — the figure barrier dispatch is compared against.
    pub fn makespan_modeled_s(&self) -> f64 {
        let state = locked(&self.shared.state);
        state.device_clock.iter().copied().fold(0.0, f64::max)
    }

    /// Per-device modeled busy seconds (the virtual time each device spent
    /// executing items, summed over every batch) — the numerator of a
    /// utilization gauge.
    pub fn device_busy_modeled_s(&self) -> Vec<f64> {
        let state = locked(&self.shared.state);
        state.completed.iter().map(|t| t.0).collect()
    }

    /// Per-device virtual clocks: the instant each device's last item
    /// completed. `busy / max(clock)` gives per-device utilization; the
    /// spread of this vector is the pool's load skew.
    pub fn device_clocks_v_s(&self) -> Vec<f64> {
        let state = locked(&self.shared.state);
        state.device_clock.clone()
    }

    /// Per-device **projected completion instants**: each device's virtual
    /// clock plus an even share of the ready backlog's modeled cost — the
    /// admission estimator's view of when the pool frees up for new work.
    ///
    /// Ready-item cost is projected from the pool's observed mean cost per
    /// unit weight (before any item has completed the backlog projects as
    /// zero, so the instants degrade gracefully to the raw clocks).
    /// `priority_cutoff` restricts the backlog to items at least as urgent as
    /// the given priority (lower is more urgent): an interactive admission
    /// (`Some(0)`) ignores patient bulk items it would overtake, while
    /// `None` counts everything.
    pub fn projected_completion_v_s(&self, priority_cutoff: Option<u32>) -> Vec<f64> {
        let state = locked(&self.shared.state);
        let n = state.device_clock.len().max(1);
        let (cost, weight) =
            state.completed.iter().fold((0.0, 0.0), |(c, w), t| (c + t.0, w + t.1));
        let per_weight = if weight > 0.0 { cost / weight } else { 0.0 };
        let backlog_weight: f64 = state
            .ready
            .iter()
            .filter(|((priority, _, _), _)| priority_cutoff.is_none_or(|cut| *priority <= cut))
            .map(|(_, item)| item.weight)
            .sum();
        let share = backlog_weight * per_weight / n as f64;
        state.device_clock.iter().map(|clock| clock + share).collect()
    }

    /// Drains outstanding batches, stops the workers and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            // `locked` recovers from a poisoned mutex: shutdown runs during
            // Drop (and so possibly during a panic's cleanup), where a second
            // panic would abort the process. The explicit `poisoned` flag —
            // not mutex poisoning — is what guards scheduler invariants.
            locked(&self.shared.state).shutdown = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                eprintln!("gpu-sim: phase-pipeline worker panicked; batches may be stranded");
            }
        }
    }
}

impl Drop for PhasePipeline {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Completes a batch: builds its report, runs the completion callback (if
/// any), and resolves the handle slot. Called without the scheduler lock held
/// — the callback may do real work (clustering, job-slot completion).
fn finish_batch(shared: &Shared, mut batch: BatchState) {
    let per_device = batch
        .streams
        .iter()
        .enumerate()
        .map(|(idx, [dock, minimize])| PhasedDeviceReport {
            device: shared.pool.device(idx).spec().name.clone(),
            dock: dock.stats(),
            minimize: minimize.stats(),
        })
        .collect();
    let report = BatchReport {
        seq: batch.seq,
        priority: batch.priority,
        submitted_v_s: batch.submitted_v_s,
        started_v_s: if batch.started_v_s.is_finite() {
            batch.started_v_s
        } else {
            batch.submitted_v_s
        },
        completed_v_s: batch.completed_v_s,
        docks: batch.docks_done,
        blocks: batch.blocks_done,
        per_device,
    };
    if shared.trace.enabled() {
        let tags = Tags {
            batch_seq: Some(batch.seq as u64),
            tenant: batch.label.tenant.clone(),
            class: batch.label.class,
            ..Tags::default()
        }
        .with_num("docks", batch.docks_done as f64)
        .with_num("blocks", batch.blocks_done as f64)
        .with_num("priority", f64::from(batch.priority))
        .with_num("latency_s", report.latency_modeled_s())
        .with_num("overlap_saved_s", report.overlap_saved_s());
        shared.trace.record(
            TraceEvent::span(
                Track::Batch(batch.seq as u64),
                "batch",
                Category::Batch,
                report.started_v_s,
                report.span_modeled_s(),
            )
            .with_tags(tags),
        );
    }
    if let Some(cb) = batch.on_complete.take() {
        cb(report.clone());
    }
    let (lock, done) = &*batch.slot;
    locked(lock).report = Some(report);
    done.notify_all();
}

/// Marks the scheduler poisoned after a worker panic: every in-flight batch's
/// slot is stranded (its waiters fail loudly) and blocking entry points stop
/// waiting. Runs from [`PoisonGuard::drop`] during unwinding, so it must not
/// panic itself.
fn poison(state: &mut SchedState) {
    state.poisoned = true;
    for batch in state.batches.values() {
        let (lock, done) = &*batch.slot;
        locked(lock).stranded = true;
        done.notify_all();
    }
    // Every ready item belongs to a now-stranded batch; drop them so the
    // surviving workers can drain to idle and exit at shutdown. (The dead
    // worker's frozen clock also freezes the claim gate's pool minimum, so
    // leaving items queued could gate every survivor forever.)
    state.ready.clear();
}

/// Unwind sentinel around a [`finish_batch`] call: by then the batch has
/// already left `state.batches`, so the thread-level [`PoisonGuard`] cannot
/// reach its slot — if the completion callback panics, this guard strands the
/// slot directly so `BatchHandle::wait` fails loudly instead of hanging.
struct StrandGuard {
    slot: Option<BatchSlot>,
}

impl StrandGuard {
    fn new(slot: &BatchSlot) -> Self {
        StrandGuard { slot: Some(Arc::clone(slot)) }
    }

    /// Disarms the guard: the batch finished cleanly.
    fn disarm(mut self) {
        self.slot = None;
    }
}

impl Drop for StrandGuard {
    fn drop(&mut self) {
        let Some(slot) = &self.slot else { return };
        if !std::thread::panicking() {
            return;
        }
        let (lock, done) = &**slot;
        locked(lock).stranded = true;
        done.notify_all();
    }
}

/// Unwind sentinel living on every worker's stack: if the worker panics —
/// inside [`PhasedExec`] code, a completion callback, or the scheduler's own
/// accounting — the drop handler poisons the scheduler so waiters fail
/// loudly. Without it, a panicked item would leave its batch's `outstanding`
/// forever nonzero and every `wait`/`drain`/`wait_capacity`/shutdown would
/// hang silently (the barriered `ShardQueue` path propagates such panics to
/// its caller, and the pipelined path must be no quieter).
struct PoisonGuard<'a> {
    shared: &'a Shared,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        eprintln!("gpu-sim: phase-pipeline worker panicked; stranding in-flight batches");
        // The panicking stack released its state guard during unwinding (it
        // may have poisoned the mutex); spin briefly in case another worker
        // holds it right now.
        for _ in 0..1024 {
            match self.shared.state.try_lock() {
                Ok(mut state) => {
                    poison(&mut state);
                    break;
                }
                Err(std::sync::TryLockError::Poisoned(recovered)) => {
                    poison(&mut recovered.into_inner());
                    break;
                }
                Err(std::sync::TryLockError::WouldBlock) => std::thread::yield_now(),
            }
        }
        self.shared.work.notify_all();
        self.shared.settled.notify_all();
    }
}

/// One persistent worker: claim the most urgent ready item (gated by the
/// modeled-cost fairness rule), execute it, account it to its batch, generate
/// follow-on minimize items, complete batches.
fn worker_loop(shared: &Shared, device_index: usize) {
    let device: &Arc<Device> = shared.pool.device(device_index);
    let _poison_guard = PoisonGuard { shared };
    loop {
        // --- Claim.
        let claimed = {
            let mut state = locked(&shared.state);
            loop {
                if !state.ready.is_empty() && state.may_claim(device_index) {
                    break;
                }
                // After a worker panic, stranded batches never finish — exit
                // once the remaining runnable work is gone so shutdown can
                // still join everyone.
                if state.shutdown
                    && state.ready.is_empty()
                    && (state.all_batches_done() || state.poisoned)
                {
                    return;
                }
                state = wait_on(&shared.work, state);
            }
            state.ready.pop_first().map(|(_key, item)| item)
        };
        // The wait loop only breaks on a non-empty ready set, but claim
        // defensively rather than planting an unwrap in the worker body.
        let Some(item) = claimed else { continue };

        // --- Execute outside the lock. The device runs one item at a time
        // (it has exactly one worker), so the snapshot delta is exactly this
        // item's transfers.
        let ctx = ShardCtx { device, device_index, item_index: item.entry };
        // Tag assembly and scope entry only happen when a real sink is
        // installed; the untraced path pays one `enabled()` call per item.
        let item_tags = if shared.trace.enabled() {
            let mut tags = Tags::device(device_index as u32);
            tags.batch_seq = Some(item.batch_slot as u64);
            tags.class = item.class;
            tags.probe = Some(item.entry as u32);
            tags.trace = item.trace;
            if item.phase == Phase::Minimize {
                tags.pose_range = Some((item.pose_range.start as u32, item.pose_range.end as u32));
            }
            Some(tags)
        } else {
            None
        };
        // While the scope is active, every kernel launch, transfer and cache
        // lookup the item performs records an event anchored to this item:
        // an offset from the item's start, rebased to absolute once the item
        // span (recorded below with the same anchor id) fixes its start.
        let scope = item_tags.as_ref().and_then(|tags| {
            ItemScope::enter(&shared.trace, Track::Device(device_index as u32), tags.clone())
        });
        let before = device.transfer_snapshot();
        let batch_slot = item.batch_slot;
        let (kernel_s, unlocked) = match item.phase {
            Phase::Dock => item.exec.dock(&ctx, item.entry),
            Phase::Minimize => {
                (item.exec.minimize(&ctx, item.entry, item.pose_range.clone()), Vec::new())
            }
        };
        let after = device.transfer_snapshot();
        let anchor = scope.as_ref().map(|s| s.anchor());
        drop(scope);

        // --- Account, advance the virtual timeline, unlock dependents.
        let (finished, start_v, actual_s) = {
            let mut state = locked(&shared.state);
            let op = {
                let delta = after.delta_since(&before);
                StreamOp::new(delta.upload_s, kernel_s, delta.download_s)
            };
            let actual_s = op.serialized_s();
            let start_v = state.device_clock[device_index].max(item.ready_v_s);
            let completion_v = start_v + actual_s;
            state.device_clock[device_index] = completion_v;
            let tally = &mut state.completed[device_index];
            tally.0 += actual_s;
            tally.1 += item.weight;
            tally.2 += 1;

            let Some(batch) = state.batches.get_mut(&batch_slot) else {
                // A live item's batch has vanished: a scheduler invariant is
                // broken. Route it through the typed poison path (strand the
                // remaining batches loudly) instead of panicking mid-lock.
                poison(&mut state);
                drop(state);
                shared.work.notify_all();
                shared.settled.notify_all();
                continue;
            };
            let phase_idx = match item.phase {
                Phase::Dock => 0,
                Phase::Minimize => 1,
            };
            batch.streams[device_index][phase_idx].record(op);
            batch.started_v_s = batch.started_v_s.min(start_v);
            batch.completed_v_s = batch.completed_v_s.max(completion_v);
            batch.outstanding -= 1;
            match item.phase {
                Phase::Dock => {
                    batch.docks_pending -= 1;
                    batch.docks_done += 1;
                }
                Phase::Minimize => batch.blocks_done += 1,
            }
            let priority = batch.priority;
            let seq = batch.seq;
            batch.outstanding += unlocked.len();
            let done = batch.outstanding == 0;
            for (pose_range, weight) in unlocked {
                let order = state.next_order;
                state.next_order += 1;
                state.ready.insert(
                    (priority, seq, order),
                    ReadyItem {
                        batch_slot,
                        exec: Arc::clone(&item.exec),
                        phase: Phase::Minimize,
                        entry: item.entry,
                        pose_range,
                        weight,
                        ready_v_s: completion_v,
                        class: item.class,
                        trace: item.trace,
                    },
                );
            }
            let finished = if done { state.batches.remove(&batch_slot) } else { None };
            (finished, start_v, actual_s)
        };
        if let Some(tags) = item_tags {
            let name = match item.phase {
                Phase::Dock => "dock",
                Phase::Minimize => "minimize",
            };
            let mut event = TraceEvent::span(
                Track::Device(device_index as u32),
                name,
                Category::Sched,
                start_v,
                actual_s,
            )
            .with_tags(tags.with_num("ready_v_s", item.ready_v_s).with_num("kernel_s", kernel_s));
            if let Some(id) = anchor {
                event = event.defines(id);
            }
            shared.trace.record(event);
        }
        if let Some(batch) = finished {
            // Report assembly + completion callback run outside the state
            // lock (the callback may do real work: clustering, job slots).
            // Only afterwards does the batch stop counting as unfinished —
            // so drainers can't observe completion while the callback still
            // borrows caller state (and, transitively, this scheduler).
            let strand_guard = StrandGuard::new(&batch.slot);
            finish_batch(shared, batch);
            strand_guard.disarm();
            locked(&shared.state).unfinished -= 1;
            shared.settled.notify_all();
        }
        shared.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A synthetic exec: every entry docks (kernel 1 ms + an upload) and
    /// unlocks `blocks_per_entry` minimize blocks (2 ms each). Records every
    /// event for the dependency/exactly-once assertions.
    struct TestExec {
        blocks_per_entry: usize,
        dock_count: Vec<AtomicUsize>,
        block_count: Vec<AtomicUsize>,
        violations: AtomicUsize,
    }

    impl TestExec {
        fn new(entries: usize, blocks_per_entry: usize) -> Self {
            TestExec {
                blocks_per_entry,
                dock_count: (0..entries).map(|_| AtomicUsize::new(0)).collect(),
                block_count: (0..entries).map(|_| AtomicUsize::new(0)).collect(),
                violations: AtomicUsize::new(0),
            }
        }
    }

    impl PhasedExec for TestExec {
        fn dock(&self, ctx: &ShardCtx<'_>, entry: usize) -> (f64, Vec<(Range<usize>, f64)>) {
            ctx.device.upload_bytes(1 << 20);
            self.dock_count[entry].fetch_add(1, Ordering::SeqCst);
            let blocks = (0..self.blocks_per_entry).map(|b| (b..b + 1, 1.0)).collect();
            (1e-3, blocks)
        }

        fn minimize(&self, ctx: &ShardCtx<'_>, entry: usize, pose_range: Range<usize>) -> f64 {
            ctx.device.download_bytes(1 << 16);
            if self.dock_count[entry].load(Ordering::SeqCst) != 1 {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
            assert_eq!(pose_range.len(), 1);
            self.block_count[entry].fetch_add(1, Ordering::SeqCst);
            2e-3
        }
    }

    fn submit_test_batch(
        pipeline: &PhasePipeline,
        exec: &Arc<TestExec>,
        priority: u32,
    ) -> BatchHandle {
        let entries = exec.dock_count.len();
        pipeline.submit(
            PhasedBatch {
                label: Default::default(),
                entry_traces: Vec::new(),
                priority,
                entries,
                dock_weights: vec![1.0; entries],
                exec: Arc::clone(exec) as Arc<dyn PhasedExec>,
            },
            None,
        )
    }

    #[test]
    fn single_batch_runs_every_item_once_with_dock_first() {
        let pool = Arc::new(DevicePool::tesla(3));
        let pipeline = PhasePipeline::new(pool);
        let exec = Arc::new(TestExec::new(5, 4));
        let handle = submit_test_batch(&pipeline, &exec, 0);
        let report = handle.wait();
        assert_eq!(report.docks, 5);
        assert_eq!(report.blocks, 20);
        assert_eq!(exec.violations.load(Ordering::SeqCst), 0);
        for entry in 0..5 {
            assert_eq!(exec.dock_count[entry].load(Ordering::SeqCst), 1);
            assert_eq!(exec.block_count[entry].load(Ordering::SeqCst), 4);
        }
        // The virtual timeline is coherent: span > 0, latency >= span start.
        assert!(report.completed_v_s > report.started_v_s);
        assert!(report.latency_modeled_s() >= report.span_modeled_s());
        // Per-batch streams saw every item exactly once across the pool.
        let items: usize = report.per_device.iter().map(PhasedDeviceReport::items).sum();
        assert_eq!(items, 25);
        assert!(report.transfer_modeled_s() > 0.0);
        pipeline.shutdown();
    }

    #[test]
    fn cross_batch_overlap_beats_the_barrier_schedule() {
        // Two batches on a 2-device pool: under barrier dispatch the total is
        // the sum of each batch's two phase makespans; pipelined, batch 2's
        // docks fill batch 1's idle tail, so the pool makespan lands strictly
        // below the barrier sum.
        let pool = Arc::new(DevicePool::tesla(2));
        let pipeline = PhasePipeline::new(pool);
        let execs: Vec<Arc<TestExec>> = (0..3).map(|_| Arc::new(TestExec::new(3, 3))).collect();
        let handles: Vec<BatchHandle> =
            execs.iter().map(|e| submit_test_batch(&pipeline, e, 1)).collect();
        let reports: Vec<BatchReport> = handles.iter().map(BatchHandle::wait).collect();
        pipeline.drain();
        let pipelined = pipeline.makespan_modeled_s();
        let barrier: f64 = reports.iter().map(BatchReport::barrier_equivalent_s).sum();
        assert!(
            pipelined < barrier,
            "pipelined makespan {pipelined} should beat barrier sum {barrier}"
        );
        // Batches were submitted back to back, so later batches started
        // before earlier ones completed (the cross-batch overlap itself).
        assert!(reports[1].started_v_s < reports[0].completed_v_s);
        pipeline.shutdown();
    }

    #[test]
    fn urgent_batches_overtake_patient_ones() {
        // Saturate the pool with two bulk batches, then submit an interactive
        // one: its modeled completion must come before the *last* bulk
        // completion even though it arrived last.
        let pool = Arc::new(DevicePool::tesla(2));
        let pipeline = PhasePipeline::new(pool);
        let bulk: Vec<Arc<TestExec>> = (0..2).map(|_| Arc::new(TestExec::new(6, 6))).collect();
        let bulk_handles: Vec<BatchHandle> =
            bulk.iter().map(|e| submit_test_batch(&pipeline, e, 1)).collect();
        let interactive = Arc::new(TestExec::new(1, 1));
        let interactive_handle = submit_test_batch(&pipeline, &interactive, 0);
        let interactive_report = interactive_handle.wait();
        let bulk_reports: Vec<BatchReport> = bulk_handles.iter().map(BatchHandle::wait).collect();
        let last_bulk = bulk_reports.iter().map(|r| r.completed_v_s).fold(0.0, f64::max);
        assert!(
            interactive_report.completed_v_s < last_bulk,
            "interactive finished at {} vs last bulk {}",
            interactive_report.completed_v_s,
            last_bulk
        );
        pipeline.shutdown();
    }

    #[test]
    fn completion_callback_fires_once_with_the_report() {
        let pool = Arc::new(DevicePool::tesla(1));
        let pipeline = PhasePipeline::new(pool);
        let exec = Arc::new(TestExec::new(2, 1));
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_cb = Arc::clone(&fired);
        let handle = pipeline.submit(
            PhasedBatch {
                label: Default::default(),
                entry_traces: Vec::new(),
                priority: 0,
                entries: 2,
                dock_weights: vec![1.0; 2],
                exec: Arc::clone(&exec) as Arc<dyn PhasedExec>,
            },
            Some(Box::new(move |report: BatchReport| {
                assert_eq!(report.docks, 2);
                fired_cb.fetch_add(1, Ordering::SeqCst);
            })),
        );
        handle.wait();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(handle.is_completed());
        pipeline.shutdown();
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let pool = Arc::new(DevicePool::tesla(2));
        let pipeline = PhasePipeline::new(pool);
        let exec = Arc::new(TestExec::new(0, 0));
        let handle = submit_test_batch(&pipeline, &exec, 0);
        let report = handle.wait();
        assert_eq!(report.docks, 0);
        assert_eq!(report.blocks, 0);
        assert_eq!(report.span_modeled_s(), 0.0);
        pipeline.shutdown();
    }

    #[test]
    fn wait_capacity_bounds_inflight_batches() {
        let pool = Arc::new(DevicePool::tesla(1));
        let pipeline = PhasePipeline::new(pool);
        for _ in 0..4 {
            pipeline.wait_capacity(2);
            assert!(pipeline.inflight() < 2);
            let exec = Arc::new(TestExec::new(2, 2));
            submit_test_batch(&pipeline, &exec, 1);
        }
        pipeline.drain();
        assert_eq!(pipeline.inflight(), 0);
        pipeline.shutdown();
    }

    #[test]
    fn exec_panic_strands_the_batch_loudly_instead_of_hanging() {
        // A panic inside PhasedExec code must not leave waiters blocked
        // forever: the worker's poison guard strands in-flight batches, so
        // wait()/drain() fail with a message and shutdown still joins.
        struct PanickingExec;
        impl PhasedExec for PanickingExec {
            fn dock(&self, _: &ShardCtx<'_>, _: usize) -> (f64, Vec<(Range<usize>, f64)>) {
                panic!("exec bug");
            }
            fn minimize(&self, _: &ShardCtx<'_>, _: usize, _: Range<usize>) -> f64 {
                unreachable!()
            }
        }
        let pool = Arc::new(DevicePool::tesla(2));
        let pipeline = PhasePipeline::new(pool);
        let handle = pipeline.submit(
            PhasedBatch {
                label: Default::default(),
                entry_traces: Vec::new(),
                priority: 0,
                entries: 1,
                dock_weights: vec![1.0],
                exec: Arc::new(PanickingExec),
            },
            None,
        );
        let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(waited.is_err(), "wait() must fail loudly on a stranded batch");
        let drained = {
            let pipeline = &pipeline;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pipeline.drain()))
        };
        assert!(drained.is_err(), "drain() must fail loudly on a stranded batch");
        // Shutdown must still terminate (surviving workers exit despite the
        // stranded batch).
        pipeline.shutdown();
    }

    #[test]
    fn callback_panic_strands_waiters_loudly() {
        // The batch leaves `state.batches` before its completion callback
        // runs, so the thread-level poison guard alone cannot strand its
        // slot: the StrandGuard around finish_batch must, or wait() would
        // hang forever on a callback bug.
        let pool = Arc::new(DevicePool::tesla(1));
        let pipeline = PhasePipeline::new(pool);
        let exec = Arc::new(TestExec::new(1, 0));
        let handle = pipeline.submit(
            PhasedBatch {
                label: Default::default(),
                entry_traces: Vec::new(),
                priority: 0,
                entries: 1,
                dock_weights: vec![1.0],
                exec: Arc::clone(&exec) as Arc<dyn PhasedExec>,
            },
            Some(Box::new(|_report: BatchReport| panic!("callback bug"))),
        );
        let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(waited.is_err(), "a callback panic must fail the waiter, not hang it");
        pipeline.shutdown();
    }

    #[test]
    fn exec_panic_with_survivors_still_drains_and_joins() {
        // The harder variant: a multi-entry batch where only one item
        // panics. The surviving worker must neither claim the stranded
        // batch's leftovers (the dead worker's frozen clock freezes the
        // claim gate's minimum) nor spin forever — poison clears the ready
        // set, so shutdown drains and joins promptly.
        struct PanicOnEntryZero;
        impl PhasedExec for PanicOnEntryZero {
            fn dock(&self, _: &ShardCtx<'_>, entry: usize) -> (f64, Vec<(Range<usize>, f64)>) {
                assert!(entry != 0, "exec bug on entry 0");
                std::thread::sleep(std::time::Duration::from_micros(200));
                (1e-3, Vec::new())
            }
            fn minimize(&self, _: &ShardCtx<'_>, _: usize, _: Range<usize>) -> f64 {
                unreachable!()
            }
        }
        let pool = Arc::new(DevicePool::tesla(2));
        let pipeline = PhasePipeline::new(pool);
        let handle = pipeline.submit(
            PhasedBatch {
                label: Default::default(),
                entry_traces: Vec::new(),
                priority: 0,
                entries: 6,
                dock_weights: vec![1.0; 6],
                exec: Arc::new(PanicOnEntryZero),
            },
            None,
        );
        let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(waited.is_err(), "stranded batch must fail its waiter");
        // Submissions after the poison are refused loudly instead of stalling.
        let resubmit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.submit(
                PhasedBatch {
                    label: Default::default(),
                    entry_traces: Vec::new(),
                    priority: 0,
                    entries: 1,
                    dock_weights: vec![1.0],
                    exec: Arc::new(PanicOnEntryZero),
                },
                None,
            )
        }));
        assert!(resubmit.is_err(), "submit to a poisoned scheduler must be refused");
        // The real assertion: this returns instead of hanging on the join.
        pipeline.shutdown();
    }

    #[test]
    fn batch_scoped_transfers_sum_to_the_pool_total() {
        // The double-attribution regression at the scheduler level: with two
        // batches overlapping on the pool, the per-batch transfer figures
        // must partition the pool's cumulative transfer time exactly.
        let pool = Arc::new(DevicePool::tesla(2));
        pool.reset_transfer_stats();
        let pipeline = PhasePipeline::new(Arc::clone(&pool));
        let execs: Vec<Arc<TestExec>> = (0..2).map(|_| Arc::new(TestExec::new(4, 2))).collect();
        let handles: Vec<BatchHandle> =
            execs.iter().map(|e| submit_test_batch(&pipeline, e, 1)).collect();
        let total_batches: f64 = handles.iter().map(|h| h.wait().transfer_modeled_s()).sum();
        pipeline.shutdown();
        let pool_total = pool.total_transfer_time();
        assert!(pool_total > 0.0);
        assert!(
            (total_batches - pool_total).abs() < 1e-12,
            "batch-scoped transfers {total_batches} != pool total {pool_total}"
        );
    }

    #[test]
    fn entry_traces_flow_onto_item_spans_and_children() {
        let pool = Arc::new(DevicePool::tesla(2));
        let recorder = Arc::new(ftmap_trace::Recorder::new());
        let pipeline = PhasePipeline::with_trace(pool, Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let exec = Arc::new(TestExec::new(3, 2));
        let handle = pipeline.submit(
            PhasedBatch {
                label: Default::default(),
                entry_traces: vec![100, 101, 102],
                priority: 0,
                entries: 3,
                dock_weights: vec![1.0; 3],
                exec: Arc::clone(&exec) as Arc<dyn PhasedExec>,
            },
            None,
        );
        handle.wait();
        pipeline.shutdown();
        let events = recorder.events();
        for trace_id in [100u64, 101, 102] {
            let docks: Vec<_> = events
                .iter()
                .filter(|e| e.name == "dock" && e.tags.trace == Some(trace_id))
                .collect();
            assert_eq!(docks.len(), 1, "one dock span per traced entry");
            let minimizes: Vec<_> = events
                .iter()
                .filter(|e| e.name == "minimize" && e.tags.trace == Some(trace_id))
                .collect();
            assert_eq!(minimizes.len(), 2, "minimize items inherit the dock's trace id");
            // Anchored children (transfers) inherit the scope tags too.
            assert!(events
                .iter()
                .any(|e| e.cat == Category::Transfer && e.tags.trace == Some(trace_id)));
            // The dependency edge survives in the tags: each minimize's
            // ready_v_s is its dock's completion instant.
            let dock_end = docks[0].end_s();
            for minimize in minimizes {
                let ready = minimize
                    .tags
                    .nums
                    .iter()
                    .find(|(k, _)| *k == "ready_v_s")
                    .map(|(_, v)| *v)
                    .expect("minimize spans carry ready_v_s");
                assert!((ready - dock_end).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn projected_completion_tracks_clocks_and_backlog() {
        let pool = Arc::new(DevicePool::tesla(2));
        let pipeline = PhasePipeline::new(pool);
        // Idle pipeline: no backlog, no completions — projections are the raw
        // clocks (all zero).
        assert_eq!(pipeline.projected_completion_v_s(None), vec![0.0, 0.0]);
        let exec = Arc::new(TestExec::new(4, 3));
        let handle = submit_test_batch(&pipeline, &exec, 1);
        handle.wait();
        pipeline.drain();
        // Drained: the ready set is empty again, so projections collapse to
        // the device clocks regardless of the cutoff.
        let clocks = pipeline.device_clocks_v_s();
        assert_eq!(pipeline.projected_completion_v_s(None), clocks);
        assert_eq!(pipeline.projected_completion_v_s(Some(0)), clocks);
        // And a projection can never fall below the device clocks.
        for (proj, clock) in pipeline.projected_completion_v_s(None).iter().zip(&clocks) {
            assert!(proj >= clock);
        }
        pipeline.shutdown();
    }

    #[test]
    #[should_panic(expected = "entry_traces must be empty or cover every entry")]
    fn partial_entry_traces_are_rejected() {
        let pool = Arc::new(DevicePool::tesla(1));
        let pipeline = PhasePipeline::new(pool);
        let exec = Arc::new(TestExec::new(2, 1));
        pipeline.submit(
            PhasedBatch {
                label: Default::default(),
                entry_traces: vec![1],
                priority: 0,
                entries: 2,
                dock_weights: vec![1.0; 2],
                exec: Arc::clone(&exec) as Arc<dyn PhasedExec>,
            },
            None,
        );
    }
}
