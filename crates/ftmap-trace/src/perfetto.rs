//! Chrome trace-event (Perfetto) JSON export.
//!
//! Renders a resolved event list as the classic `{"traceEvents": [...]}`
//! document Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly. The modeled virtual timeline maps 1 modeled second → 1e6 trace
//! microseconds. Track layout:
//!
//! * **pid 1 "devices"** — one thread per pooled device (`tid` = pool index):
//!   item spans with their anchored kernel/transfer/cache children;
//! * **pid 2 "serve"** — `tid 0` is the admission queue (admit/resolve
//!   instants plus a `queue_depth` counter series); each batch gets its own
//!   `tid` (`100 + seq`) carrying submit→start→complete;
//!
//! Span events use phase `"X"` (complete events), instants `"i"`, the queue
//! depth counter `"C"`, and track names are declared with `"M"` metadata
//! events — the full set of phases the `trace_check` schema validator
//! accepts.

use crate::event::{Category, Tags, TraceEvent, Track};
use crate::json::{escape, number};
use std::collections::BTreeSet;

/// pid for the per-device tracks.
const PID_DEVICES: u64 = 1;
/// pid for the serve-layer tracks (queue + batches).
const PID_SERVE: u64 = 2;
/// tid of the admission-queue track within [`PID_SERVE`].
const TID_QUEUE: u64 = 0;
/// Batch `seq` maps to tid `BATCH_TID_BASE + seq`, keeping batch lanes away
/// from the queue lane.
const BATCH_TID_BASE: u64 = 100;

fn track_ids(track: Track) -> (u64, u64) {
    match track {
        Track::Device(index) => (PID_DEVICES, index as u64),
        Track::Queue => (PID_SERVE, TID_QUEUE),
        Track::Batch(seq) => (PID_SERVE, BATCH_TID_BASE + seq),
    }
}

fn track_name(track: Track) -> String {
    match track {
        Track::Device(index) => format!("device {index}"),
        Track::Queue => "admission queue".to_string(),
        Track::Batch(seq) => format!("batch {seq}"),
    }
}

/// Modeled seconds → trace microseconds.
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

fn args_json(tags: &Tags) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(device) = tags.device {
        parts.push(format!("\"device\": {device}"));
    }
    if let Some(seq) = tags.batch_seq {
        parts.push(format!("\"batch_seq\": {seq}"));
    }
    if let Some(tenant) = &tags.tenant {
        parts.push(format!("\"tenant\": \"{}\"", escape(tenant)));
    }
    if let Some(class) = tags.class {
        parts.push(format!("\"class\": \"{}\"", escape(class)));
    }
    if let Some(probe) = tags.probe {
        parts.push(format!("\"probe\": {probe}"));
    }
    if let Some((start, end)) = tags.pose_range {
        parts.push(format!("\"pose_start\": {start}"));
        parts.push(format!("\"pose_end\": {end}"));
    }
    if let Some(trace) = tags.trace {
        parts.push(format!("\"trace\": {trace}"));
    }
    if let Some(verdict) = tags.verdict {
        parts.push(format!("\"verdict\": \"{}\"", escape(verdict)));
    }
    for (key, value) in &tags.nums {
        parts.push(format!("\"{}\": {}", escape(key), number(*value)));
    }
    format!("{{{}}}", parts.join(", "))
}

fn event_json(event: &TraceEvent) -> String {
    let (pid, tid) = track_ids(event.track);
    let ts = number(us(event.start_s));
    let name = escape(&event.name);
    let cat = event.cat.as_str();
    let args = args_json(&event.tags);
    // The serve layer records queue depth as instants named "queue_depth"
    // carrying a "depth" num; render those as counter ("C") samples so
    // Perfetto draws the depth as a step chart.
    if event.track == Track::Queue && event.name == "queue_depth" {
        let depth =
            event.tags.nums.iter().find(|(k, _)| *k == "depth").map(|(_, v)| *v).unwrap_or(0.0);
        return format!(
            "{{\"name\": \"queue_depth\", \"cat\": \"{cat}\", \"ph\": \"C\", \"ts\": {ts}, \
             \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"depth\": {}}}}}",
            number(depth)
        );
    }
    if event.is_instant() {
        format!(
            "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {ts}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {args}}}"
        )
    } else {
        format!(
            "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"X\", \"ts\": {ts}, \
             \"dur\": {}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {args}}}",
            number(us(event.dur_s))
        )
    }
}

fn metadata_json(tracks: &BTreeSet<Track>) -> Vec<String> {
    let mut out = vec![
        format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID_DEVICES}, \"tid\": 0, \
             \"args\": {{\"name\": \"devices\"}}}}"
        ),
        format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID_SERVE}, \"tid\": 0, \
             \"args\": {{\"name\": \"serve\"}}}}"
        ),
    ];
    for &track in tracks {
        let (pid, tid) = track_ids(track);
        out.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(&track_name(track))
        ));
    }
    out
}

/// One step of a causal flow: an arrow anchor at `at_s` on `track`, labelled
/// for the Perfetto UI.
#[derive(Debug, Clone)]
pub struct FlowStep {
    /// Track the arrow attaches to.
    pub track: Track,
    /// Absolute modeled instant of the anchor.
    pub at_s: f64,
    /// Step label (shown on hover).
    pub name: String,
}

/// A causal flow — rendered as Chrome trace-event flow phases (`"s"` start,
/// `"t"` step, `"f"` end sharing an `id`) so Perfetto draws arrows along a
/// request's critical path across tracks.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Flow id (the request's trace id).
    pub id: u64,
    /// Flow category label.
    pub name: String,
    /// Ordered anchor points; flows with fewer than 2 steps are skipped.
    pub steps: Vec<FlowStep>,
}

fn flow_json(flow: &Flow) -> Vec<String> {
    if flow.steps.len() < 2 {
        return Vec::new();
    }
    let last = flow.steps.len() - 1;
    flow.steps
        .iter()
        .enumerate()
        .map(|(i, step)| {
            let (pid, tid) = track_ids(step.track);
            let ph = if i == 0 {
                "s"
            } else if i == last {
                "f"
            } else {
                "t"
            };
            // `"bp": "e"` binds the terminating arrow to the enclosing slice
            // rather than the next slice on the track.
            let bp = if ph == "f" { ", \"bp\": \"e\"" } else { "" };
            format!(
                "{{\"name\": \"{}\", \"cat\": \"critical-path\", \"ph\": \"{ph}\", \
                 \"id\": {}, \"ts\": {}, \"pid\": {pid}, \"tid\": {tid}{bp}, \
                 \"args\": {{\"step\": \"{}\"}}}}",
                escape(&flow.name),
                flow.id,
                number(us(step.at_s)),
                escape(&step.name)
            )
        })
        .collect()
}

/// Renders **resolved** events (see [`crate::Recorder::events`]) as a Chrome
/// trace-event JSON document. The result loads directly in Perfetto; modeled
/// seconds appear as microseconds on its timeline.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    export_chrome_trace_with_flows(events, &[])
}

/// Like [`export_chrome_trace`] but also renders causal flows (request
/// critical paths) as Perfetto flow events.
pub fn export_chrome_trace_with_flows(events: &[TraceEvent], flows: &[Flow]) -> String {
    let tracks: BTreeSet<Track> = events.iter().map(|e| e.track).collect();
    let mut lines = metadata_json(&tracks);
    lines.extend(events.iter().map(event_json));
    lines.extend(flows.iter().flat_map(flow_json));
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    out.push_str(&lines.iter().map(|l| format!("    {l}")).collect::<Vec<_>>().join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Numeric arg keys the exporter emits; the importer interns them back to
/// `&'static str` so a re-imported event carries the same `nums` tags.
const KNOWN_NUM_KEYS: &[&str] = &[
    "kernel_s",
    "ready_v_s",
    "bytes",
    "grid_blocks",
    "threads_per_block",
    "depth",
    "jobs",
    "latency_s",
    "admitted_v_s",
    "makespan_s",
    "entries",
    "priority",
    "docks",
    "blocks",
    "overlap_saved_s",
    "bucket_derived",
    "key_lo32",
];

fn intern_class(class: &str) -> Option<&'static str> {
    match class {
        "interactive" => Some("interactive"),
        "bulk" => Some("bulk"),
        _ => None,
    }
}

fn import_cat(cat: &str) -> Category {
    match cat {
        "kernel" => Category::Kernel,
        "transfer" => Category::Transfer,
        "cache" => Category::Cache,
        "sched" => Category::Sched,
        "batch" => Category::Batch,
        _ => Category::Serve,
    }
}

fn import_track(pid: u64, tid: u64) -> Option<Track> {
    match pid {
        PID_DEVICES => Some(Track::Device(tid as u32)),
        PID_SERVE if tid == TID_QUEUE => Some(Track::Queue),
        PID_SERVE if tid >= BATCH_TID_BASE => Some(Track::Batch(tid - BATCH_TID_BASE)),
        _ => None,
    }
}

fn import_tags(args: &crate::json::JsonValue) -> Tags {
    let mut tags = Tags::default();
    let f = |key: &str| args.get(key).and_then(crate::json::JsonValue::as_f64);
    tags.device = f("device").map(|v| v as u32);
    tags.batch_seq = f("batch_seq").map(|v| v as u64);
    tags.trace = f("trace").map(|v| v as u64);
    tags.probe = f("probe").map(|v| v as u32);
    if let (Some(start), Some(end)) = (f("pose_start"), f("pose_end")) {
        tags.pose_range = Some((start as u32, end as u32));
    }
    tags.tenant =
        args.get("tenant").and_then(crate::json::JsonValue::as_str).map(|s| s.to_string());
    tags.class = args.get("class").and_then(crate::json::JsonValue::as_str).and_then(intern_class);
    for &key in KNOWN_NUM_KEYS {
        if let Some(value) = f(key) {
            tags.nums.push((key, value));
        }
    }
    tags
}

/// Parses a Chrome trace-event document produced by [`export_chrome_trace`]
/// back into resolved [`TraceEvent`]s (metadata and flow rows are skipped;
/// `queue_depth` counter samples become instants again). This is the reverse
/// mapping `trace_report` uses to analyse an exported `trace.json` offline.
pub fn import_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    use crate::json::{parse, JsonValue};
    let doc = parse(text).map_err(|e| e.to_string())?;
    let rows = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut events = Vec::new();
    for row in rows {
        let ph = row.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        if !matches!(ph, "X" | "i" | "C") {
            continue; // metadata ("M") and flow ("s"/"t"/"f") rows carry no span data
        }
        let pid = row.get("pid").and_then(JsonValue::as_f64).unwrap_or(-1.0);
        let tid = row.get("tid").and_then(JsonValue::as_f64).unwrap_or(-1.0);
        let track = match import_track(pid as u64, tid as u64) {
            Some(track) if pid >= 0.0 && tid >= 0.0 => track,
            _ => continue,
        };
        let name = row.get("name").and_then(JsonValue::as_str).unwrap_or("").to_string();
        let cat = import_cat(row.get("cat").and_then(JsonValue::as_str).unwrap_or(""));
        let start_s = row.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1e6;
        let dur_s = row.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0) / 1e6;
        let tags = row.get("args").map(import_tags).unwrap_or_default();
        let mut event = TraceEvent::span(track, name, cat, start_s, dur_s);
        event.tags = tags;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Tags, TraceEvent, Track};
    use crate::json::{parse, JsonValue};

    #[test]
    fn export_parses_back_with_expected_shape() {
        let events = vec![
            TraceEvent::span(Track::Device(0), "dock", Category::Sched, 0.001, 0.002)
                .with_tags(Tags::device(0).with_num("kernel_s", 0.0015)),
            TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.0),
            TraceEvent::instant(Track::Queue, "queue_depth", Category::Serve, 0.0)
                .with_tags(Tags::default().with_num("depth", 3.0)),
            TraceEvent::instant(Track::Batch(2), "submit", Category::Batch, 0.0005),
        ];
        let doc = export_chrome_trace(&events);
        let parsed = parse(&doc).expect("exporter output is valid JSON");
        let trace_events =
            parsed.get("traceEvents").and_then(JsonValue::as_array).expect("traceEvents array");
        // 4 events + 2 process_name + 3 thread_name metadata rows.
        assert_eq!(trace_events.len(), 9);
        let phases: Vec<&str> =
            trace_events.iter().filter_map(|e| e.get("ph").and_then(JsonValue::as_str)).collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 5);
        assert!(phases.contains(&"X") && phases.contains(&"i") && phases.contains(&"C"));
        let span = trace_events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("dock"))
            .expect("dock span present");
        assert_eq!(span.get("ts").and_then(JsonValue::as_f64), Some(1000.0));
        assert_eq!(span.get("dur").and_then(JsonValue::as_f64), Some(2000.0));
        assert_eq!(
            span.get("args").and_then(|a| a.get("kernel_s")).and_then(JsonValue::as_f64),
            Some(0.0015)
        );
    }

    #[test]
    fn flows_render_as_s_t_f_with_shared_id() {
        let events = vec![TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.0)];
        let flow = Flow {
            id: 7,
            name: "request 7".to_string(),
            steps: vec![
                FlowStep { track: Track::Queue, at_s: 0.0, name: "admit".to_string() },
                FlowStep { track: Track::Device(1), at_s: 0.001, name: "dock".to_string() },
                FlowStep { track: Track::Queue, at_s: 0.002, name: "resolve".to_string() },
            ],
        };
        let doc = export_chrome_trace_with_flows(&events, &[flow]);
        let parsed = parse(&doc).expect("valid JSON");
        let rows = parsed.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        let phases: Vec<&str> = rows
            .iter()
            .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
            .filter(|p| matches!(*p, "s" | "t" | "f"))
            .collect();
        assert_eq!(phases, vec!["s", "t", "f"]);
        for row in rows.iter().filter(|e| {
            matches!(e.get("ph").and_then(JsonValue::as_str), Some("s") | Some("t") | Some("f"))
        }) {
            assert_eq!(row.get("id").and_then(JsonValue::as_f64), Some(7.0));
            assert!(row.get("ts").and_then(JsonValue::as_f64).is_some());
        }
    }

    #[test]
    fn import_round_trips_exported_events() {
        let events = vec![
            TraceEvent::span(Track::Device(2), "minimize", Category::Sched, 0.003, 0.004)
                .with_tags({
                    let mut tags = Tags::device(2).with_num("ready_v_s", 0.002);
                    tags.trace = Some(42);
                    tags.probe = Some(1);
                    tags.pose_range = Some((0, 8));
                    tags.class = Some("bulk");
                    tags
                }),
            TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.0).with_tags(Tags {
                trace: Some(42),
                tenant: Some("t0".to_string()),
                ..Default::default()
            }),
        ];
        let doc = export_chrome_trace(&events);
        let imported = import_chrome_trace(&doc).expect("import succeeds");
        assert_eq!(imported.len(), 2);
        let span = imported.iter().find(|e| e.name == "minimize").expect("span imported");
        assert_eq!(span.track, Track::Device(2));
        assert!((span.start_s - 0.003).abs() < 1e-12 && (span.dur_s - 0.004).abs() < 1e-12);
        assert_eq!(span.tags.trace, Some(42));
        assert_eq!(span.tags.pose_range, Some((0, 8)));
        assert_eq!(span.tags.class, Some("bulk"));
        assert!(span
            .tags
            .nums
            .iter()
            .any(|(k, v)| *k == "ready_v_s" && (*v - 0.002).abs() < 1e-12));
        let admit = imported.iter().find(|e| e.name == "admit").expect("instant imported");
        assert_eq!(admit.tags.tenant.as_deref(), Some("t0"));
    }
}
