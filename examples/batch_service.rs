//! The batch-mapping service end to end: 10 concurrent jobs over 2 receptors,
//! submitted from client threads, batched by receptor onto a 2-device pool,
//! with the receptor-grid residency cache turning every job after the first
//! (per receptor, per device) into a zero-upload cache hit.
//!
//! Run with: `cargo run --release --example batch_service`

use ftmap::prelude::*;
use std::sync::Arc;

fn main() {
    let ff = ForceField::charmm_like();
    let protein_a = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let mut spec_b = ProteinSpec::small_test();
    spec_b.seed = 1301;
    let protein_b = SyntheticProtein::generate(&spec_b, &ff);

    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 4;
    config.conformations_per_probe = 2;

    // 10 jobs over 2 receptors with varying probe subsets.
    let probe_sets: [&[ProbeType]; 5] = [
        &[ProbeType::Ethanol],
        &[ProbeType::Acetone, ProbeType::Urea],
        &[ProbeType::Benzene],
        &[ProbeType::Ethanol, ProbeType::Benzene],
        &[ProbeType::Phenol],
    ];
    let mut jobs = Vec::new();
    for (i, probes) in probe_sets.iter().enumerate() {
        for (label, protein) in [("A", &protein_a), ("B", &protein_b)] {
            jobs.push(
                MappingRequest::new(protein.clone(), ff.clone(), probes.to_vec(), config.clone())
                    .with_tag(format!("receptor-{label}/job-{i}")),
            );
        }
    }
    let n_jobs = jobs.len();

    let pool = Arc::new(DevicePool::tesla(2));
    let service = Arc::new(BatchMappingService::builder(Arc::clone(&pool)).build());
    println!(
        "batch service up: {} devices, admission queue depth {}, {} jobs incoming\n",
        pool.len(),
        service.config().queue.max_pending,
        n_jobs
    );

    // Concurrent clients: every job is submitted from its own thread and the
    // handle is awaited there — the service is the only shared state.
    let mut clients = Vec::new();
    for job in jobs {
        let service = Arc::clone(&service);
        clients.push(std::thread::spawn(move || {
            service.submit(job).expect_admitted("job refused").wait()
        }));
    }
    let mut reports: Vec<_> =
        clients.into_iter().map(|c| c.join().expect("client thread")).collect();
    reports.sort_by(|a, b| a.tag.cmp(&b.tag));

    println!(
        "{:<22} {:>6} {:>7} {:>9} {:>7} {:>12}",
        "job", "batch", "sites", "confs", "probes", "makespan ms"
    );
    for report in &reports {
        println!(
            "{:<22} {:>6} {:>7} {:>9} {:>7} {:>12.3}",
            report.tag,
            report.batch.batch_index,
            report.result.sites.len(),
            report.result.conformations_minimized,
            report.batch.probes,
            1e3 * report.batch.makespan_modeled_s,
        );
        assert!(!report.result.sites.is_empty(), "{}: no consensus sites", report.tag);
    }

    // Per-job determinism: the same request resubmitted on the warm service
    // must reproduce its consensus sites exactly.
    let rerun =
        MappingRequest::new(protein_a.clone(), ff.clone(), probe_sets[3].to_vec(), config.clone())
            .with_tag("receptor-A/job-3");
    let rerun_report = service.submit(rerun).expect_admitted("admitted").wait();
    let original = reports.iter().find(|r| r.tag == "receptor-A/job-3").expect("original report");
    assert_eq!(rerun_report.result.sites.len(), original.result.sites.len());
    for (a, b) in rerun_report.result.sites.iter().zip(&original.result.sites) {
        assert!(a.cluster.center.distance(b.cluster.center) == 0.0);
    }
    println!("\nwarm re-run of {}: identical sites (deterministic)", rerun_report.tag);

    let stats = service.stats();
    let cache = stats.cache();
    println!(
        "\nservice: {} jobs in {} batches | residency cache: {} lookups, {} hits, \
         {} misses, {} evictions (hit rate {:.0}%)",
        stats.jobs_completed,
        stats.batches_run,
        cache.lookups(),
        cache.hits,
        cache.misses,
        cache.evictions,
        100.0 * cache.hit_rate(),
    );
    for (i, device) in pool.devices().iter().enumerate() {
        let d = device.residency().stats();
        println!(
            "    device {i}: {} resident grid sets ({} KiB), {} hits / {} misses",
            device.residency().len(),
            device.residency().resident_bytes() / 1024,
            d.hits,
            d.misses,
        );
    }
    // 2 receptors × 2 devices bound the cold uploads; every other shard hit.
    assert!(cache.misses <= 4, "at most one miss per (receptor, device)");
    assert!(cache.hits > cache.misses, "hits must dominate under batching");

    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("clients done"));
    service.shutdown();
    println!("\nservice drained and shut down cleanly");
}
