//! A minimal Rust lexer: just enough to tell *code* from comments, strings
//! and raw strings, with a line number on every token.
//!
//! The rule engine ([`crate::rules`]) works on identifier/punctuation
//! streams, so the only job here is to never misfile a banned name that
//! appears inside a comment, a string literal, a raw string, a byte string
//! or a char literal as code — and conversely to never lose a banned name
//! that *is* code. The grammar subset handled:
//!
//! * line comments `//…` and (nested) block comments `/* … */`;
//! * string `"…"` and byte-string `b"…"` literals with escapes;
//! * raw strings `r"…"`, `r#"…"#`, … and their `br…` byte forms;
//! * char literals `'x'`, `'\n'`, `'\u{1F600}'` — distinguished from
//!   lifetimes (`'a`, `'static`), which lex as punctuation + identifier;
//! * identifiers (including keywords — the rules don't care) and numbers;
//! * everything else as single-character punctuation tokens.
//!
//! No external dependencies: the container is offline, and the linter must
//! build before anything else in CI does.

/// What a token is, as far as the rule engine cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A string/char/byte/numeric literal (content is opaque to rules).
    Literal,
    /// A single punctuation character.
    Punct,
}

/// One code token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// The token's text. For [`TokenKind::Literal`] this is the full literal
    /// including quotes; rules must never match on it.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: usize,
}

/// One comment (line or block) with its line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the delimiters.
    pub text: String,
    /// 1-indexed first line of the comment.
    pub start_line: usize,
    /// 1-indexed last line of the comment.
    pub end_line: usize,
}

/// Lexer output: the code-token stream and the comment list, separated.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Identifier / literal / punctuation tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into code tokens and comments.
///
/// Unterminated strings or block comments do not panic: the open construct
/// simply swallows the rest of the file (the compiler rejects such a file
/// anyway; the linter's job is just to not crash before rustc reports it).
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(String::new()),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(' ');
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, start_line: start, end_line: start });
    }

    /// Block comments nest in Rust: `/* /* */ */` is one comment.
    fn block_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, start_line: start, end_line: self.line });
    }

    /// A `"…"` literal; `prefix` carries any `b` already consumed.
    fn string_literal(&mut self, prefix: String) {
        let line = self.line;
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    // Escape: the next char can never close the string —
                    // covers \" and \\ (and multi-char escapes keep lexing
                    // as ordinary chars).
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// Raw strings: `r"…"` / `r#"…"#` / `br##"…"##` … The closing quote must
    /// be followed by the same number of `#` as the opening one.
    fn raw_string(&mut self, prefix: String) {
        let line = self.line;
        let mut text = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    text.push('#');
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// Dispatches `r…` / `b…` prefixes. Returns false when the `r`/`b` is
    /// just the start of an ordinary identifier (e.g. `rotation`, `batch`).
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1, c2) {
            // r"…" or r#…
            (Some('r'), Some('"'), _) | (Some('r'), Some('#'), _) => {
                // `r#ident` (raw identifier) also starts r#; it is one when
                // an ident char follows the #.
                if c1 == Some('#') && c2.map(is_ident_start).unwrap_or(false) {
                    return false;
                }
                self.bump();
                self.raw_string("r".to_string());
                true
            }
            // b"…"
            (Some('b'), Some('"'), _) => {
                self.bump();
                self.string_literal("b".to_string());
                true
            }
            // br"…" or br#"…"#
            (Some('b'), Some('r'), Some('"')) | (Some('b'), Some('r'), Some('#')) => {
                self.bump();
                self.bump();
                self.raw_string("br".to_string());
                true
            }
            // b'…'
            (Some('b'), Some('\''), _) => {
                self.bump();
                self.char_literal("b".to_string());
                true
            }
            _ => false,
        }
    }

    /// `'a` (lifetime) vs `'a'` (char literal): it is a char literal when a
    /// closing quote follows the (possibly escaped) content; a lifetime is a
    /// quote followed by an identifier with no closing quote.
    fn char_or_lifetime(&mut self) {
        if self.peek(1) == Some('\\') {
            self.char_literal(String::new());
            return;
        }
        let is_lifetime = match (self.peek(1), self.peek(2)) {
            // 'x' → char; 'xy…  (no close) → lifetime
            (Some(c1), Some('\'')) => !is_ident_start(c1) && c1 != '\'',
            (Some(c1), _) => is_ident_start(c1),
            _ => false,
        };
        if is_lifetime {
            let line = self.line;
            self.bump(); // the quote
            self.push(TokenKind::Punct, "'".to_string(), line);
            self.ident();
        } else {
            self.char_literal(String::new());
        }
    }

    fn char_literal(&mut self, prefix: String) {
        let line = self.line;
        let mut text = prefix;
        text.push('\'');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// Numbers only need to not be mistaken for idents; suffixes (`1.0f64`,
    /// `8u64`) merge into the literal so the suffix is not an ident token.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // `1..n` range: stop the literal at the first dot of a `..`.
                if c == '.' && self.peek(1) == Some('.') {
                    break;
                }
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, usize)> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text, t.line))
            .collect()
    }

    #[test]
    fn code_idents_carry_lines() {
        let src = "let a = 1;\nlet banned = Instant::now();\n";
        let ids = idents(src);
        assert!(ids.contains(&("Instant".to_string(), 2)));
        assert!(ids.contains(&("now".to_string(), 2)));
    }

    #[test]
    fn comments_and_strings_hide_idents() {
        let src = r##"
// Instant::now() in a comment
/* Instant::now() in a block
   spanning lines */
let s = "Instant::now()";
let r = r#"Instant::now() "quoted" inside raw"#;
let b = b"Instant::now()";
"##;
        assert!(idents(src).iter().all(|(t, _)| t != "Instant" && t != "now"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[1].start_line, 3);
        assert_eq!(lexed.comments[1].end_line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.text == "x"));
        assert!(!lexed.comments[0].text.contains("let"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { 'l: loop { break 'l; } }";
        let ids = idents(src);
        assert!(ids.iter().any(|(t, _)| t == "a"));
        assert!(ids.iter().any(|(t, _)| t == "static"));
    }

    #[test]
    fn char_literals_hide_content() {
        let src = "let q = '\\''; let c = 'x'; let n = '\\n'; let sep = ',';";
        let ids = idents(src);
        assert!(ids.iter().all(|(t, _)| t != "x"));
        assert!(ids.iter().any(|(t, _)| t == "sep"));
    }

    #[test]
    fn raw_string_hash_levels() {
        let src = r####"let a = r##"content with "# inside"##; let after = 1;"####;
        let ids = idents(src);
        assert!(ids.iter().all(|(t, _)| t != "content" && t != "inside"));
        assert!(ids.iter().any(|(t, _)| t == "after"));
    }

    #[test]
    fn raw_identifiers_stay_idents() {
        let src = "let r#type = 1; let rate = r#type;";
        let ids = idents(src);
        // `r#type` lexes as ident `type` (the r# marker is punctuation noise
        // as far as rules care) and `rate` must not be eaten by an r-prefix.
        assert!(ids.iter().any(|(t, _)| t == "rate"));
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let src = r#"let s = "he said \"Instant::now()\" loudly"; let tail = 2;"#;
        let ids = idents(src);
        assert!(ids.iter().all(|(t, _)| t != "Instant"));
        assert!(ids.iter().any(|(t, _)| t == "tail"));
    }

    #[test]
    fn number_suffixes_are_not_idents() {
        let ids = idents("let x = 1.0f64 + 8u64 + 0xffu8; let range = 1..n;");
        assert!(ids.iter().all(|(t, _)| t != "f64" && t != "u64" && t != "u8"));
        assert!(ids.iter().any(|(t, _)| t == "n"));
    }
}
