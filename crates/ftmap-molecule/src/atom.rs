//! Atoms, elements and atom kinds.
//!
//! An [`Atom`] carries the per-atom quantities the paper's energy functions consume:
//! position, partial charge `q_i`, Lennard-Jones parameters `eps_i` / `rm_i`
//! (Equations 8–10), the ACE solute volume `V~_i` and the Born radius `alpha_i`
//! (Equations 5–7). The numbers live in [`crate::forcefield`]; the atom stores the
//! resolved values so the hot evaluation loops never perform table lookups.

use ftmap_math::{Real, Vec3};
use serde::{Deserialize, Serialize};

/// Chemical element of an atom (the subset occurring in proteins and FTMap probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Element {
    /// Hydrogen.
    H,
    /// Carbon.
    C,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Sulfur.
    S,
}

impl Element {
    /// All supported elements.
    pub const ALL: [Element; 5] = [Element::H, Element::C, Element::N, Element::O, Element::S];

    /// Approximate van der Waals radius in Å (used by grid voxelization).
    pub fn vdw_radius(self) -> Real {
        match self {
            Element::H => 1.20,
            Element::C => 1.70,
            Element::N => 1.55,
            Element::O => 1.52,
            Element::S => 1.80,
        }
    }

    /// Atomic mass in Daltons.
    pub fn mass(self) -> Real {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::S => 32.06,
        }
    }

    /// One-letter symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::S => "S",
        }
    }

    /// Parses a symbol (case-insensitive); returns `None` for unsupported elements.
    pub fn from_symbol(s: &str) -> Option<Element> {
        match s.trim().to_ascii_uppercase().as_str() {
            "H" => Some(Element::H),
            "C" => Some(Element::C),
            "N" => Some(Element::N),
            "O" => Some(Element::O),
            "S" => Some(Element::S),
            _ => None,
        }
    }
}

/// CHARMM-like atom kind: an element in a specific chemical environment.
///
/// The kind determines the non-bonded parameter set assigned by the force field; the
/// small set here covers backbone and generic side-chain environments plus the probe
/// functional groups, which is sufficient to obtain realistic energy-term balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomKind {
    /// Backbone amide nitrogen.
    BackboneN,
    /// Backbone alpha carbon.
    BackboneCA,
    /// Backbone carbonyl carbon.
    BackboneC,
    /// Backbone carbonyl oxygen.
    BackboneO,
    /// Aliphatic side-chain carbon.
    AliphaticC,
    /// Aromatic carbon.
    AromaticC,
    /// Polar side-chain oxygen (hydroxyl / carboxyl).
    PolarO,
    /// Polar side-chain nitrogen (amine / amide / guanidinium).
    PolarN,
    /// Side-chain sulfur.
    Sulfur,
    /// Non-polar hydrogen.
    ApolarH,
    /// Polar hydrogen (bonded to N or O).
    PolarH,
    /// Carbonyl / ketone carbon in a probe molecule.
    ProbeCarbonyl,
    /// Hydroxyl oxygen in a probe molecule.
    ProbeHydroxylO,
    /// Probe methyl carbon.
    ProbeMethylC,
    /// Probe amide/amine nitrogen.
    ProbeN,
}

impl AtomKind {
    /// All atom kinds (used to iterate parameter tables and by property tests).
    pub const ALL: [AtomKind; 15] = [
        AtomKind::BackboneN,
        AtomKind::BackboneCA,
        AtomKind::BackboneC,
        AtomKind::BackboneO,
        AtomKind::AliphaticC,
        AtomKind::AromaticC,
        AtomKind::PolarO,
        AtomKind::PolarN,
        AtomKind::Sulfur,
        AtomKind::ApolarH,
        AtomKind::PolarH,
        AtomKind::ProbeCarbonyl,
        AtomKind::ProbeHydroxylO,
        AtomKind::ProbeMethylC,
        AtomKind::ProbeN,
    ];

    /// The element underlying this kind.
    pub fn element(self) -> Element {
        match self {
            AtomKind::BackboneN | AtomKind::PolarN | AtomKind::ProbeN => Element::N,
            AtomKind::BackboneCA
            | AtomKind::BackboneC
            | AtomKind::AliphaticC
            | AtomKind::AromaticC
            | AtomKind::ProbeCarbonyl
            | AtomKind::ProbeMethylC => Element::C,
            AtomKind::BackboneO | AtomKind::PolarO | AtomKind::ProbeHydroxylO => Element::O,
            AtomKind::Sulfur => Element::S,
            AtomKind::ApolarH | AtomKind::PolarH => Element::H,
        }
    }

    /// True for hydrogen kinds.
    pub fn is_hydrogen(self) -> bool {
        self.element() == Element::H
    }
}

/// A single atom with resolved force-field parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Index of the atom within its owning molecule (stable identifier).
    pub id: usize,
    /// Atom kind (chemical environment).
    pub kind: AtomKind,
    /// Position in Å.
    pub position: Vec3,
    /// Partial charge `q_i` in elementary charge units.
    pub charge: Real,
    /// Lennard-Jones well depth `eps_i` (kcal/mol), Equation (9).
    pub lj_eps: Real,
    /// Lennard-Jones minimum-energy distance parameter `rm_i` (Å), Equation (10).
    pub lj_rmin: Real,
    /// ACE solute volume `V~_i` (Å³), Equation (6).
    pub ace_volume: Real,
    /// Born radius `alpha_i` (Å), Equation (7). Updated from self energies during
    /// minimization; initialized to the force-field intrinsic value.
    pub born_radius: Real,
    /// True when the atom belongs to the (flexible) probe rather than the rigid protein.
    pub is_probe: bool,
}

impl Atom {
    /// The element of this atom.
    pub fn element(&self) -> Element {
        self.kind.element()
    }

    /// The van der Waals radius (Å) used by grid voxelization.
    pub fn vdw_radius(&self) -> Real {
        self.element().vdw_radius()
    }

    /// The atomic mass in Daltons.
    pub fn mass(&self) -> Real {
        self.element().mass()
    }

    /// Distance to another atom in Å.
    pub fn distance(&self, other: &Atom) -> Real {
        self.position.distance(other.position)
    }

    /// Squared distance to another atom in Å².
    pub fn distance_sq(&self, other: &Atom) -> Real {
        self.position.distance_sq(other.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_symbols_round_trip() {
        for e in Element::ALL {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
        assert_eq!(Element::from_symbol("c"), Some(Element::C));
        assert_eq!(Element::from_symbol("Xx"), None);
        assert_eq!(Element::from_symbol(""), None);
    }

    #[test]
    fn element_properties_positive() {
        for e in Element::ALL {
            assert!(e.vdw_radius() > 0.0);
            assert!(e.mass() > 0.0);
        }
        assert!(Element::S.mass() > Element::C.mass());
        assert!(Element::H.vdw_radius() < Element::C.vdw_radius());
    }

    #[test]
    fn atom_kind_elements_consistent() {
        for kind in AtomKind::ALL {
            let e = kind.element();
            assert_eq!(kind.is_hydrogen(), e == Element::H);
        }
        assert_eq!(AtomKind::BackboneCA.element(), Element::C);
        assert_eq!(AtomKind::PolarO.element(), Element::O);
        assert_eq!(AtomKind::Sulfur.element(), Element::S);
    }

    #[test]
    fn atom_distance() {
        let make = |pos| Atom {
            id: 0,
            kind: AtomKind::AliphaticC,
            position: pos,
            charge: 0.0,
            lj_eps: 0.1,
            lj_rmin: 2.0,
            ace_volume: 20.0,
            born_radius: 2.0,
            is_probe: false,
        };
        let a = make(Vec3::new(0.0, 0.0, 0.0));
        let b = make(Vec3::new(3.0, 4.0, 0.0));
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.element(), Element::C);
        assert!(a.mass() > 0.0);
        assert!(a.vdw_radius() > 0.0);
    }
}
