//! CI entry point: lint the workspace, print `path:line: rule: message`
//! diagnostics, exit 1 on any violation.
//!
//! ```text
//! ftmap-lint [--root <dir>] [--list-rules]
//! ```
//!
//! With no `--root` the workspace root is auto-detected: the manifest dir's
//! grandparent when running via `cargo run -p ftmap-lint` (the crate lives
//! at `crates/ftmap-lint`), else the current directory.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

use ftmap_lint::{lint_workspace, RULES};
use std::path::PathBuf;

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    // crates/ftmap-lint/../.. == the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
        if root.join("Cargo.toml").is_file() {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in RULES {
                    println!("{}: {}", rule.name, rule.summary);
                }
                return;
            }
            "--root" => {
                root = args.next().map(PathBuf::from);
                if root.is_none() {
                    eprintln!("ftmap-lint: --root needs a path");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("ftmap-lint: unknown argument `{other}`");
                eprintln!("usage: ftmap-lint [--root <dir>] [--list-rules]");
                std::process::exit(2);
            }
        }
    }

    let root = workspace_root(root);
    let (diags, files) = match lint_workspace(&root) {
        Ok(out) => out,
        Err(err) => {
            eprintln!("ftmap-lint: cannot scan {}: {err}", root.display());
            std::process::exit(2);
        }
    };

    for diag in &diags {
        println!("{diag}");
    }
    if diags.is_empty() {
        eprintln!("ftmap-lint: clean ({files} files, {} rules)", RULES.len());
    } else {
        eprintln!("ftmap-lint: {} violation(s) across {files} files", diags.len());
        std::process::exit(1);
    }
}
