//! A pool of modeled devices shared by the scheduler's workers.

use crate::device::{Device, DeviceSpec};
use std::sync::Arc;

/// Owns N modeled devices and hands out shared handles to them.
///
/// Devices sit behind [`Arc`] so phase engines (docking, minimization) can
/// hold a pooled handle instead of constructing their own device — the pool is
/// the single owner of accelerator state for a run. Pools may be
/// heterogeneous: mixing [`DeviceSpec::tesla_c1060`] and
/// [`DeviceSpec::xeon_quad`] specs models offloading shards to whatever
/// silicon the host has.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<Arc<Device>>,
}

impl DevicePool {
    /// A pool with one device per spec.
    ///
    /// # Panics
    /// Panics if `specs` is empty — a pool must schedule onto something.
    pub fn new(specs: Vec<DeviceSpec>) -> Self {
        assert!(!specs.is_empty(), "a device pool needs at least one device");
        DevicePool { devices: specs.into_iter().map(|s| Arc::new(Device::new(s))).collect() }
    }

    /// A pool of `n` identical devices.
    pub fn homogeneous(spec: DeviceSpec, n: usize) -> Self {
        assert!(n > 0, "a device pool needs at least one device");
        Self::new(vec![spec; n])
    }

    /// A pool of `n` Tesla-C1060-class devices — the paper's accelerator,
    /// multiplied.
    pub fn tesla(n: usize) -> Self {
        Self::homogeneous(DeviceSpec::tesla_c1060(), n)
    }

    /// A heterogeneous pool: `n_tesla` C1060-class devices plus `n_xeon`
    /// quad-core-Xeon-class devices (the paper's multicore host pressed into
    /// service as an extra, slower shard consumer).
    pub fn mixed(n_tesla: usize, n_xeon: usize) -> Self {
        let mut specs = vec![DeviceSpec::tesla_c1060(); n_tesla];
        specs.extend(vec![DeviceSpec::xeon_quad(); n_xeon]);
        Self::new(specs)
    }

    /// Number of devices in the pool.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// A shared handle to device `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn device(&self, idx: usize) -> &Arc<Device> {
        &self.devices[idx]
    }

    /// All device handles, in pool order.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Human-readable names of the pooled devices, in pool order.
    pub fn device_names(&self) -> Vec<String> {
        self.devices.iter().map(|d| d.spec().name.clone()).collect()
    }

    /// Sum of the pooled devices' peak GFLOP/s (a rough capacity figure for
    /// load-balance reporting).
    pub fn peak_gflops(&self) -> f64 {
        self.devices.iter().map(|d| d.spec().peak_gflops()).sum()
    }

    /// Resets every pooled device's transfer accounting.
    ///
    /// Pools outlive pipeline runs; call this at the start of each run so a
    /// previous run's transfers cannot leak into the next run's stream-overlap
    /// accounting (see [`Device::reset_transfer_stats`]).
    pub fn reset_transfer_stats(&self) {
        for device in &self.devices {
            device.reset_transfer_stats();
        }
    }

    /// Total modeled transfer seconds accumulated across the pool since the
    /// last reset.
    pub fn total_transfer_time(&self) -> f64 {
        self.devices.iter().map(|d| d.total_transfer_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tesla_pool_is_homogeneous() {
        let pool = DevicePool::tesla(4);
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        for device in pool.devices() {
            assert_eq!(device.spec(), &DeviceSpec::tesla_c1060());
        }
        assert!((pool.peak_gflops() - 4.0 * DeviceSpec::tesla_c1060().peak_gflops()).abs() < 1e-9);
    }

    #[test]
    fn mixed_pool_is_heterogeneous() {
        let pool = DevicePool::mixed(2, 1);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.device(0).spec(), &DeviceSpec::tesla_c1060());
        assert_eq!(pool.device(2).spec(), &DeviceSpec::xeon_quad());
        let names = pool.device_names();
        assert!(names[0].contains("Tesla"));
        assert!(names[2].contains("Xeon"));
    }

    #[test]
    fn pool_reset_clears_every_device() {
        let pool = DevicePool::tesla(2);
        pool.device(0).upload_bytes(1 << 20);
        pool.device(1).download_bytes(1 << 20);
        assert!(pool.total_transfer_time() > 0.0);
        pool.reset_transfer_stats();
        assert_eq!(pool.total_transfer_time(), 0.0);
        for device in pool.devices() {
            assert_eq!(device.total_transfer_bytes(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_panics() {
        let _ = DevicePool::new(Vec::new());
    }
}
