//! Offline stand-in for `proptest`, providing the subset this workspace uses:
//! the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! range and collection strategies, and [`prelude::ProptestConfig`].
//!
//! Differences from upstream, by design of the stub:
//!
//! * cases are sampled from a deterministic per-test RNG (seeded from the test
//!   name), so runs are reproducible without a persistence file;
//! * there is **no shrinking** — a failing case panics with the sampled inputs
//!   in the message instead of a minimized counterexample;
//! * only the strategies the workspace needs are implemented (numeric ranges,
//!   `prop::array::uniform3`, `prop::collection::vec`, `Just`, constants).

pub mod strategy {
    //! The [`Strategy`] trait and the strategy combinators the workspace uses.

    use rand::rngs::SmallRng;
    use rand::{Rng, SampleRange};
    use std::fmt::Debug;
    use std::ops::Range;

    /// A source of random values for one property-test argument.
    pub trait Strategy {
        /// The type of the generated values.
        type Value: Debug;
        /// Samples one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy + Debug,
        Range<T>: SampleRange<Output = T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    /// A strategy that always produces the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Fixed-size array strategies (`prop::array`).
    pub mod array {
        use super::Strategy;
        use rand::rngs::SmallRng;

        /// Strategy producing `[S::Value; 3]` from three draws of `S`.
        #[derive(Debug, Clone)]
        pub struct Uniform3<S>(S);

        /// Generates arrays of 3 values drawn from `strategy`.
        pub fn uniform3<S: Strategy>(strategy: S) -> Uniform3<S> {
            Uniform3(strategy)
        }

        impl<S: Strategy> Strategy for Uniform3<S> {
            type Value = [S::Value; 3];
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
            }
        }
    }

    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::ops::Range;

        /// Things usable as the size argument of [`vec()`]: a fixed size or a
        /// half-open range of sizes.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn sample_len(&self, rng: &mut SmallRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut SmallRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut SmallRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy producing `Vec<S::Value>` with a length drawn from the size
        /// range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// Generates vectors of values drawn from `element`, with length drawn
        /// from `len`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod test_runner {
    //! Test-case outcome types and the deterministic per-test RNG.

    use rand::SeedableRng;

    /// Why a single sampled case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it is re-drawn, not failed.
        Reject(String),
        /// An assertion failed; the whole property fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing outcome with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption violated) with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Shorthand result type produced by a single case closure.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`ProptestConfig` upstream).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases required for the property to pass.
        pub cases: u32,
        /// Maximum rejected (assumption-violating) draws tolerated before the
        /// run aborts, as a multiple of `cases`.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, max_global_rejects: cases.saturating_mul(16).max(256) }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config::with_cases(64)
        }
    }

    /// Builds the deterministic RNG for one named test.
    pub fn rng_for_test(name: &str) -> rand::rngs::SmallRng {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        rand::rngs::SmallRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop` namespace (`prop::array`, `prop::collection`).
    pub mod prop {
        pub use crate::strategy::array;
        pub use crate::strategy::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` that samples the strategies for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    // Describe the inputs before the body gets a chance to move them.
                    let inputs: String =
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),*].join(", ");
                    let case = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    })();
                    match case {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest '{}': too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                                stringify!($name),
                                accepted,
                                msg,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property; on failure the case (and test) fails
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discards the current case (re-drawing new inputs) when the assumption does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn arrays_and_vecs_have_requested_shapes(
            a in prop::array::uniform3(0.0f64..1.0),
            v in prop::collection::vec(0u64..100, 2..6),
            w in prop::collection::vec(0u64..100, 4),
        ) {
            prop_assert_eq!(a.len(), 3);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
