//! The multi-device scheduler (the workspace's answer to "the workload is
//! embarrassingly parallel across the probe library").
//!
//! The paper maps binding sites on a *single* Tesla C1060; its own profiling
//! shows the work shards perfectly along the probe axis (16 probes × 500
//! rotations). This module turns the single [`crate::Device`] into a pool and
//! the serial per-probe loop into sharded, overlap-aware execution:
//!
//! * [`pool::DevicePool`] — owns N (possibly heterogeneous) devices behind
//!   `Arc` handles that consumers borrow instead of constructing their own;
//! * [`stream::Stream`] — models CUDA-stream copy/compute overlap: each work
//!   item contributes an upload → kernel → download
//!   [`crate::timing::StreamOp`], and the stream reports both the serialized
//!   total and the overlapped makespan
//!   ([`crate::cost::overlapped_stream_time`]), so overlapped transfer time is
//!   counted once;
//! * [`shard::ShardQueue`] — a work-stealing executor with one worker thread
//!   per pooled device. Items are claimed from a shared queue (crossbeam
//!   scoped threads + an atomic cursor), each worker drives its own device and
//!   its own stream, and results land in per-item slots so the output order is
//!   **deterministic** no matter which device serviced which shard;
//! * [`work::WorkItem`] — the pose-granularity work unit: a block of one
//!   probe's retained poses with a cost-model weight, so a single hot probe's
//!   2000 minimizations spread across the pool instead of serializing on one
//!   device ([`shard::ShardQueue::execute_weighted`]);
//! * [`pipeline::PhasePipeline`] — the cross-batch phased executor: persistent
//!   workers, phase-tagged items with a per-probe dock→minimize dependency
//!   edge, priority-aware claiming, and batch-scoped transfer accounting, so
//!   batch N+1's docking overlaps batch N's minimization instead of waiting
//!   out a two-phase barrier.
//!
//! The scheduling follows the related GPU literature: van Meel et al. overlap
//! host↔device transfers with compute, and Barros et al. partition lattice
//! work across independent device contexts; `sched` composes both moves.

pub mod pipeline;
pub mod pool;
pub mod shard;
pub mod stream;
pub mod work;

pub use pipeline::{
    BatchHandle, BatchLabel, BatchReport, Phase, PhasePipeline, PhasedBatch, PhasedDeviceReport,
    PhasedExec,
};
pub use pool::DevicePool;
pub use shard::{DeviceShardReport, ShardCtx, ShardOutcome, ShardQueue, StealPolicy};
pub use stream::Stream;
pub use work::{pose_blocks, WorkItem};
