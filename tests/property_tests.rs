//! Property-based tests on the core data structures and invariants.

use ftmap::dock::filter::{filter_top_k, score_grid};
use ftmap::dock::grids::EnergyWeights;
use ftmap::math::fft::{fft, next_pow2, Direction};
use ftmap::math::Complex;
use ftmap::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rotations preserve vector norms and pairwise distances.
    #[test]
    fn rotations_are_isometries(
        axis in prop::array::uniform3(-1.0f64..1.0),
        angle in -std::f64::consts::TAU..std::f64::consts::TAU,
        v in prop::array::uniform3(-50.0f64..50.0),
        w in prop::array::uniform3(-50.0f64..50.0),
    ) {
        prop_assume!(axis.iter().map(|a| a * a).sum::<f64>() > 1e-6);
        let rot = Rotation::from_axis_angle(Vec3::from_array(axis), angle);
        let v = Vec3::from_array(v);
        let w = Vec3::from_array(w);
        prop_assert!((rot.apply(v).norm() - v.norm()).abs() < 1e-9 * (1.0 + v.norm()));
        prop_assert!(
            (rot.apply(v).distance(rot.apply(w)) - v.distance(w)).abs()
                < 1e-9 * (1.0 + v.distance(w))
        );
        // Inverse composition is the identity.
        let round = rot.inverse().apply(rot.apply(v));
        prop_assert!((round - v).norm() < 1e-9 * (1.0 + v.norm()));
    }

    /// FFT round-trips arbitrary signals (forward then inverse is the identity).
    #[test]
    fn fft_round_trip(values in prop::collection::vec(-100.0f64..100.0, 1..64)) {
        let n = next_pow2(values.len());
        let mut signal: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        signal.resize(n, Complex::ZERO);
        let spectrum = fft(&signal, Direction::Forward);
        let back = fft(&spectrum, Direction::Inverse);
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-7);
            prop_assert!((a.im - b.im).abs() < 1e-7);
        }
    }

    /// Top-K filtering always returns at most K poses, sorted best-first, with
    /// pairwise (cyclic Chebyshev) separation greater than the exclusion radius.
    #[test]
    fn filtering_respects_exclusion(
        values in prop::collection::vec(-100.0f64..0.0, 64),
        k in 1usize..6,
        radius in 1usize..3,
    ) {
        let grid = Grid3::from_vec(4, 4, 4, values);
        let poses = filter_top_k(&grid, k, radius, 0);
        prop_assert!(poses.len() <= k);
        for pair in poses.windows(2) {
            prop_assert!(pair[0].score <= pair[1].score);
        }
        let dist = |a: usize, b: usize| {
            let d = (a as isize - b as isize).unsigned_abs() % 4;
            d.min(4 - d)
        };
        for (i, a) in poses.iter().enumerate() {
            for b in poses.iter().skip(i + 1) {
                let cheb = dist(a.translation.0, b.translation.0)
                    .max(dist(a.translation.1, b.translation.1))
                    .max(dist(a.translation.2, b.translation.2));
                prop_assert!(cheb > radius, "poses too close: {a:?} vs {b:?}");
            }
        }
    }

    /// The weighted score grid is linear in the weights: doubling every weight doubles
    /// every score.
    #[test]
    fn score_grid_is_linear_in_weights(values in prop::collection::vec(-10.0f64..10.0, 8 * 5)) {
        let n_desolv = 1usize;
        let terms: Vec<Grid3<f64>> = values
            .chunks(8)
            .map(|chunk| Grid3::from_vec(2, 2, 2, chunk.to_vec()))
            .collect();
        let desolv = terms[4].clone();
        let w1 = EnergyWeights { shape_core: 1.0, shape_attr: -1.0, elec: 0.5, desolv: 0.25 };
        let w2 = EnergyWeights { shape_core: 2.0, shape_attr: -2.0, elec: 1.0, desolv: 0.5 };
        let s1 = score_grid(&terms, &desolv, &w1, n_desolv);
        let s2 = score_grid(&terms, &desolv, &w2, n_desolv);
        for (a, b) in s1.as_slice().iter().zip(s2.as_slice()) {
            prop_assert!((2.0 * a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Neighbor lists never contain a pair beyond the cutoff and never contain
    /// duplicates.
    #[test]
    fn neighbor_list_pairs_within_cutoff(seed in 0u64..1000, cutoff in 3.0f64..8.0) {
        let ff = ForceField::charmm_like();
        let spec = ProteinSpec { target_atoms: 120, radius: 10.0, n_pockets: 1, pocket_radius: 3.0, seed };
        let protein = SyntheticProtein::generate(&spec, &ff);
        let nl = NeighborList::build_unexcluded(&protein.atoms, cutoff);
        let mut seen = std::collections::HashSet::new();
        for (i, j) in nl.iter_pairs() {
            prop_assert!(j > i);
            prop_assert!(seen.insert((i, j)), "duplicate pair ({i}, {j})");
            let d = protein.atoms[i].position.distance(protein.atoms[j].position);
            prop_assert!(d <= cutoff + 1e-9);
        }
    }
}
