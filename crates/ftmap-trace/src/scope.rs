//! Thread-local item scopes: how leaf layers attach sub-events to the work
//! item a scheduler is running on the current thread.
//!
//! A scheduler worker computes an item's virtual start instant only *after*
//! the item executes (start = max(device clock, ready instant)), so kernel
//! launches, transfers and cache lookups inside the item cannot know their
//! absolute time. Instead the worker opens an [`ItemScope`]; the leaf [`hook`]
//! functions append [`crate::Anchor::Within`] events at the scope's running
//! cursor (offset from item start, advancing by each stage's modeled
//! duration); and the worker finally records the item span with
//! [`crate::Anchor::Defines`], letting [`crate::recorder::resolve`] rebase the
//! children.
//!
//! When no scope is active — the untraced default — every hook is a single
//! thread-local read.

use crate::event::{Anchor, Category, Tags, TraceEvent, Track};
use crate::sink::TraceSink;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global anchor-id allocator (anchor ids only need to be unique within one
/// recorder's lifetime; a process-wide counter is unique across all of them).
static NEXT_ANCHOR: AtomicU64 = AtomicU64::new(1);

struct ActiveScope {
    sink: Arc<dyn TraceSink>,
    track: Track,
    tags: Tags,
    anchor: u64,
    cursor_s: f64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveScope>> = const { RefCell::new(None) };
}

/// RAII guard for one scheduled work item on the current thread.
///
/// While alive, the [`hook`] functions route anchored sub-events (kernel
/// launches, transfers, cache events) into `sink`, tagged with the item's
/// identity. [`ItemScope::enter`] returns `None` when the sink is disabled,
/// so the untraced path never installs a scope.
#[must_use = "dropping the scope immediately detaches the hooks"]
pub struct ItemScope(());

impl ItemScope {
    /// Activates a scope for the current thread. `tags` carry the item's
    /// identity (device, batch seq, probe/pose ids) onto every sub-event.
    pub fn enter(sink: &Arc<dyn TraceSink>, track: Track, tags: Tags) -> Option<ItemScope> {
        if !sink.enabled() {
            return None;
        }
        let anchor = NEXT_ANCHOR.fetch_add(1, Ordering::Relaxed);
        ACTIVE.with(|active| {
            *active.borrow_mut() =
                Some(ActiveScope { sink: Arc::clone(sink), track, tags, anchor, cursor_s: 0.0 });
        });
        Some(ItemScope(()))
    }

    /// The anchor id sub-events of this scope are recorded under. The worker
    /// records the item span with [`crate::TraceEvent::defines`] on this id.
    pub fn anchor(&self) -> u64 {
        ACTIVE.with(|active| active.borrow().as_ref().map(|s| s.anchor).unwrap_or(0))
    }

    /// Modeled seconds of stage events consumed so far (the running offset the
    /// next stage event starts at).
    pub fn cursor_s(&self) -> f64 {
        ACTIVE.with(|active| active.borrow().as_ref().map(|s| s.cursor_s).unwrap_or(0.0))
    }
}

impl Drop for ItemScope {
    fn drop(&mut self) {
        ACTIVE.with(|active| *active.borrow_mut() = None);
    }
}

/// Leaf instrumentation hooks, called by `gpu-sim` and `piper-dock` on every
/// modeled kernel launch, transfer, and residency lookup. Each is a no-op
/// (one thread-local read) unless an [`ItemScope`] is active on the calling
/// thread.
pub mod hook {
    use super::*;

    /// True when an item scope is active on this thread (lets callers skip
    /// preparing hook arguments that themselves cost something).
    pub fn active() -> bool {
        ACTIVE.with(|active| active.borrow().is_some())
    }

    fn emit(name: &str, cat: Category, dur_s: f64, nums: &[(&'static str, f64)]) {
        ACTIVE.with(|active| {
            let mut borrow = active.borrow_mut();
            let Some(scope) = borrow.as_mut() else { return };
            let mut tags = scope.tags.clone();
            tags.nums.extend_from_slice(nums);
            let event = TraceEvent {
                track: scope.track,
                name: name.to_string(),
                cat,
                start_s: scope.cursor_s,
                dur_s: dur_s.max(0.0),
                anchor: Anchor::Within(scope.anchor),
                tags,
            };
            scope.cursor_s += dur_s.max(0.0);
            scope.sink.record(event);
        });
    }

    /// A modeled kernel launch: a stage span of `modeled_s` at the scope
    /// cursor. `name` is the phase/kernel label the caller charges the launch
    /// to.
    pub fn kernel(name: &str, modeled_s: f64, grid_blocks: usize, threads_per_block: usize) {
        emit(
            name,
            Category::Kernel,
            modeled_s,
            &[("grid_blocks", grid_blocks as f64), ("threads_per_block", threads_per_block as f64)],
        );
    }

    /// A host↔device transfer: a stage span of `modeled_s`. `direction` is
    /// `"upload"` or `"download"`.
    pub fn transfer(direction: &'static str, bytes: u64, modeled_s: f64) {
        emit(direction, Category::Transfer, modeled_s, &[("bytes", bytes as f64)]);
    }

    /// A named phase marker at the scope cursor (instant, no modeled cost):
    /// `piper-dock` drops these at each batched-FFT phase boundary so the
    /// per-phase kernel spans that follow can be grouped under the ledger's
    /// phase names.
    pub fn mark(name: &str) {
        emit(name, Category::Sched, 0.0, &[]);
    }

    /// A residency-cache event at the scope cursor (instant — cache bookkeeping
    /// has no modeled cost; the miss's upload is charged by the transfer hook).
    /// `kind` is `"hit"`, `"miss"` or `"evict"`; `bucket` is `"raw"` or
    /// `"derived"`.
    pub fn cache(kind: &'static str, bucket: &'static str, key: u64) {
        // The key is informational; fold it to f64 losslessly enough for
        // display (52 bits of the hash survive).
        emit(
            &format!("cache-{kind}"),
            Category::Cache,
            0.0,
            &[
                ("bucket_derived", (bucket == "derived") as u8 as f64),
                ("key_lo32", (key & 0xffff_ffff) as f64),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::noop;

    #[test]
    fn disabled_sink_installs_no_scope() {
        assert!(ItemScope::enter(&noop(), Track::Device(0), Tags::default()).is_none());
        assert!(!hook::active());
        hook::kernel("k", 1.0, 1, 1); // must be a silent no-op
    }

    #[test]
    fn hooks_attach_anchored_stage_events_with_scope_tags() {
        let recorder = Arc::new(Recorder::new());
        let sink: Arc<dyn TraceSink> = Arc::clone(&recorder) as _;
        let anchor;
        {
            let scope =
                ItemScope::enter(&sink, Track::Device(2), Tags::device(2)).expect("enabled sink");
            anchor = scope.anchor();
            assert!(hook::active());
            hook::transfer("upload", 64, 0.5);
            hook::kernel("dock", 2.0, 8, 128);
            hook::cache("hit", "raw", 0xdead_beef);
            assert!((scope.cursor_s() - 2.5).abs() < 1e-12);
        }
        assert!(!hook::active());
        // Record the defining span the way a scheduler worker would.
        recorder.record(
            TraceEvent::span(Track::Device(2), "item", Category::Sched, 10.0, 2.5).defines(anchor),
        );
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, "item");
        assert_eq!(events[1].name, "upload");
        assert!((events[1].start_s - 10.0).abs() < 1e-12);
        assert_eq!(events[2].name, "dock");
        assert!((events[2].start_s - 10.5).abs() < 1e-12);
        assert_eq!(events[2].tags.device, Some(2));
        assert_eq!(events[3].name, "cache-hit");
        assert!((events[3].start_s - 12.5).abs() < 1e-12);
    }
}
