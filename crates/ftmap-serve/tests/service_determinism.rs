//! Determinism of the batch service: a job's report depends only on its own
//! request. Submitting the same jobs in a shuffled order — which changes
//! queue positions, batch composition, warm-vs-cold cache state and device
//! assignment — must produce **identical** per-job consensus sites, pose
//! centres and conformation counts.

use ftmap_core::{FtMapConfig, MappingResult, PipelineMode};
use ftmap_molecule::{ForceField, ProbeType, ProteinSpec, SyntheticProtein};
use ftmap_serve::{BatchMappingService, MappingRequest};
use gpu_sim::sched::DevicePool;
use std::collections::HashMap;
use std::sync::Arc;

/// The job mix: 8 jobs over 2 receptors with varying probe subsets.
fn job_set() -> Vec<MappingRequest> {
    let ff = ForceField::charmm_like();
    let spec_a = ProteinSpec::small_test();
    let mut spec_b = ProteinSpec::small_test();
    spec_b.seed = 1301;
    let protein_a = SyntheticProtein::generate(&spec_a, &ff);
    let protein_b = SyntheticProtein::generate(&spec_b, &ff);
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 2;
    config.conformations_per_probe = 1;

    let probe_sets: [&[ProbeType]; 4] = [
        &[ProbeType::Ethanol],
        &[ProbeType::Acetone, ProbeType::Urea],
        &[ProbeType::Benzene],
        &[ProbeType::Ethanol, ProbeType::Benzene],
    ];
    let mut jobs = Vec::new();
    for (i, probes) in probe_sets.iter().enumerate() {
        for (label, protein) in [("a", &protein_a), ("b", &protein_b)] {
            jobs.push(
                MappingRequest::new(protein.clone(), ff.clone(), probes.to_vec(), config.clone())
                    .with_tag(format!("job-{label}{i}")),
            );
        }
    }
    jobs
}

/// Runs the job set through a fresh service (fresh pool, cold caches) in the
/// given submission order and returns each job's result keyed by tag.
fn run_in_order(jobs: Vec<MappingRequest>) -> HashMap<String, MappingResult> {
    let pool = Arc::new(DevicePool::tesla(2));
    let service = BatchMappingService::builder(pool).build();
    let handles: Vec<_> =
        jobs.into_iter().map(|job| service.submit(job).expect_admitted("admitted")).collect();
    let mut results = HashMap::new();
    for handle in handles {
        let report = handle.wait();
        results.insert(report.tag.clone(), report.result.clone());
    }
    results
}

fn assert_bit_identical(a: &MappingResult, b: &MappingResult, tag: &str) {
    assert_eq!(a.conformations_minimized, b.conformations_minimized, "{tag}: conformations");
    assert_eq!(a.pose_centers.len(), b.pose_centers.len(), "{tag}: pose count");
    for ((pa, ca), (pb, cb)) in a.pose_centers.iter().zip(&b.pose_centers) {
        assert_eq!(pa, pb, "{tag}: probe order");
        assert!(ca.x == cb.x && ca.y == cb.y && ca.z == cb.z, "{tag}: pose centre moved");
    }
    assert_eq!(a.sites.len(), b.sites.len(), "{tag}: site count");
    for (sa, sb) in a.sites.iter().zip(&b.sites) {
        assert_eq!(sa.rank, sb.rank, "{tag}");
        let (ca, cb) = (sa.cluster.center, sb.cluster.center);
        assert!(ca.x == cb.x && ca.y == cb.y && ca.z == cb.z, "{tag}: site centre moved");
        assert_eq!(sa.cluster.members.len(), sb.cluster.members.len(), "{tag}");
        for (ma, mb) in sa.cluster.members.iter().zip(&sb.cluster.members) {
            assert_eq!(ma.probe, mb.probe, "{tag}");
            assert!(ma.energy == mb.energy, "{tag}: member energy moved");
        }
    }
}

#[test]
fn shuffled_arrival_order_yields_identical_per_job_results() {
    let jobs = job_set();
    let in_order = run_in_order(jobs.clone());

    // A fixed "shuffle": interleave receptors differently and reverse within
    // groups, so batches form from different job combinations.
    let mut shuffled = jobs.clone();
    shuffled.reverse();
    shuffled.swap(0, 3);
    shuffled.swap(2, 6);
    let reordered = run_in_order(shuffled);

    assert_eq!(in_order.len(), reordered.len());
    for (tag, reference) in &in_order {
        let other = reordered.get(tag).unwrap_or_else(|| panic!("{tag} missing"));
        assert_bit_identical(reference, other, tag);
    }
}

#[test]
fn concurrent_submission_yields_identical_per_job_results() {
    // Submit from 8 client threads at once — true concurrent admission, with
    // nondeterministic queue order — and compare against sequential runs.
    let jobs = job_set();
    let sequential = run_in_order(jobs.clone());

    let pool = Arc::new(DevicePool::tesla(2));
    let service = Arc::new(BatchMappingService::builder(pool).build());
    let mut clients = Vec::new();
    for job in jobs {
        let service = Arc::clone(&service);
        clients.push(std::thread::spawn(move || {
            let handle = service.submit(job).expect_admitted("admitted");
            let report = handle.wait();
            (report.tag.clone(), report.result.clone())
        }));
    }
    for client in clients {
        let (tag, result) = client.join().expect("client thread");
        let reference = sequential.get(&tag).unwrap_or_else(|| panic!("{tag} missing"));
        assert_bit_identical(reference, &result, &tag);
    }
}
