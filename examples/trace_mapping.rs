//! End-to-end observability: run a warm pipelined serve workload with a
//! trace recorder attached, export the modeled timeline as Chrome
//! trace-event JSON (`trace.json`, loadable at https://ui.perfetto.dev), and
//! print the Prometheus metrics snapshot.
//!
//! Every span sits on the **modeled virtual timeline** — the same clock the
//! scheduler's `BatchReport`s and the service's latency views use — so the
//! trace is a faithful picture of what the modeled pool did: per-device item
//! spans with their kernel/transfer/cache children, per-batch lanes with the
//! submit→span lifecycle, and the admission queue's admit/batch-form/resolve
//! edges plus a queue-depth counter series.
//!
//! On top of the raw timeline this run exercises the request-centric layers:
//! every job's trace id is threaded through admit → batch-form → scheduler
//! items → resolve, so the export carries per-request **critical-path flow
//! arrows**, the console gets each request's exact latency breakdown, and the
//! configured SLOs are evaluated as burn rates into `ServeStats::slo`.
//!
//! Run with: `cargo run --release --example trace_mapping`

use ftmap::prelude::*;
use ftmap::trace::{Category, Track};
use std::sync::Arc;

fn main() {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
    config.docking.n_rotations = 2;
    config.conformations_per_probe = 2;

    let recorder = Arc::new(Recorder::new());
    let pool = Arc::new(DevicePool::tesla(2));
    let service = BatchMappingService::builder(Arc::clone(&pool))
        .batch(BatchConfig { max_batch_jobs: 2, ..BatchConfig::default() })
        .trace(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .slos(vec![SloSpec::new("interactive", 0.1, 0.99), SloSpec::new("bulk", 1.0, 0.95)])
        .build();

    // A warm stream: several bulk jobs against one receptor (grids upload
    // once per device, everything after hits residency) plus an interactive
    // straggler that overtakes the bulk queue.
    let request = |tag: &str, probes: &[ProbeType]| {
        MappingRequest::new(protein.clone(), ff.clone(), probes.to_vec(), config.clone())
            .with_tag(tag)
    };
    let mut handles: Vec<JobHandle> = (0..4)
        .map(|i| {
            service
                .submit(request(&format!("bulk-{i}"), &[ProbeType::Ethanol, ProbeType::Acetone]))
                .expect_admitted("admitted")
        })
        .collect();
    handles.push(
        service
            .submit(
                request("interactive-0", &[ProbeType::Urea]).with_class(LatencyClass::Interactive),
            )
            .expect_admitted("admitted"),
    );
    for handle in &handles {
        handle.wait();
    }
    let stats = service.shutdown();

    // Resolve anchored children onto the absolute timeline, reassemble the
    // per-request causal trees, and export with critical-path flow arrows.
    let events = recorder.events();
    let trees = build_request_trees(&events);
    let analyses = analyze_all(&trees);
    let flows: Vec<_> = analyses.iter().map(|a| a.flow()).collect();
    let json = export_chrome_trace_with_flows(&events, &flows);
    std::fs::write("trace.json", &json).expect("write trace.json");

    let spans = events.iter().filter(|e| !e.is_instant()).count();
    let device_tracks = events
        .iter()
        .filter_map(|e| match e.track {
            Track::Device(index) => Some(index),
            _ => None,
        })
        .collect::<std::collections::BTreeSet<_>>();
    let kernels = events.iter().filter(|e| e.cat == Category::Kernel).count();
    let transfers = events.iter().filter(|e| e.cat == Category::Transfer).count();
    let cache_events = events.iter().filter(|e| e.cat == Category::Cache).count();
    println!(
        "trace.json: {} events ({} spans) across {} device tracks — {} kernels, \
         {} transfers, {} cache events",
        events.len(),
        spans,
        device_tracks.len(),
        kernels,
        transfers,
        cache_events,
    );
    assert!(!events.is_empty(), "a traced run must record events");
    assert_eq!(device_tracks.len(), pool.len(), "every device must appear in the trace");
    assert!(kernels > 0 && transfers > 0 && cache_events > 0);

    // The per-device busy time reconstructed from the trace's item spans is
    // the same figure the scheduler accounted — the trace and the reports
    // are two views of one modeled timeline.
    for &device in &device_tracks {
        let busy: f64 = events
            .iter()
            .filter(|e| e.track == Track::Device(device) && e.cat == Category::Sched)
            .filter(|e| !e.is_instant())
            .map(|e| e.dur_s)
            .sum();
        println!("device {device}: {:.3} ms of traced item spans", 1e3 * busy);
        assert!(busy > 0.0);
    }

    // Request-centric view: one causal tree per submitted job, each with an
    // exactly-summing latency breakdown and a critical path in the export.
    assert_eq!(trees.len(), handles.len(), "one causal tree per job");
    assert_eq!(analyses.len(), handles.len(), "every tree analyzes");
    println!("\nslowest requests (exact breakdown, modeled seconds):");
    for analysis in analyses.iter().take(3) {
        let sum = analysis.breakdown.total_s();
        assert!(
            (sum - analysis.latency_s).abs() < 1e-9,
            "breakdown must sum to the request latency"
        );
        println!(
            "  trace {} ({}) latency {:.6}s:",
            analysis.trace_id,
            analysis.class.unwrap_or("?"),
            analysis.latency_s
        );
        for (name, value) in analysis.breakdown.segments() {
            if value > 0.0 {
                println!("    {name:<22} {value:.6}s");
            }
        }
    }

    println!("\nSLO burn rates (multi-window):");
    for status in &stats.slo.classes {
        println!(
            "  {}: {} of requests ≤ {:.3}s — {} samples, burn long {:.2} / short {:.2} => {}",
            status.spec.class,
            status.spec.objective,
            status.spec.target_s,
            status.samples,
            status.burn_long,
            status.burn_short,
            status.state.as_str(),
        );
    }

    println!("\nmetrics snapshot (Prometheus exposition):");
    print!("{}", stats.prometheus());
    println!(
        "cache hit ratio: raw {:.3}, derived {:.3}, combined {:.3}",
        stats.cache().hit_rate(),
        stats.derived_cache().hit_rate(),
        stats.combined_hit_ratio(),
    );
    println!("\nopen trace.json at https://ui.perfetto.dev to browse the timeline");
}
