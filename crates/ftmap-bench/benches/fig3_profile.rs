//! Fig. 3: energy-evaluation term split of the minimization iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use ftmap_bench::MinimizationWorkload;
use ftmap_energy::terms;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let w = MinimizationWorkload::paper_scale();
    let ff = &w.ff;
    let pairs: Vec<(usize, usize)> = w.neighbors.iter_pairs().collect();

    let mut group = c.benchmark_group("fig3_energy_terms");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("electrostatics_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(i, j) in &pairs {
                let ai = &w.complex.atoms[i];
                let aj = &w.complex.atoms[j];
                let r = ai.position.distance(aj.position);
                acc += terms::ace_pair_self_energy(ai, aj, r, ff).0;
                acc += terms::gb_pair_energy(ai, aj, r, ff).0;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("vdw_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(i, j) in &pairs {
                let ai = &w.complex.atoms[i];
                let aj = &w.complex.atoms[j];
                let r = ai.position.distance(aj.position);
                acc += terms::vdw_pair_energy(ai, aj, r, ff).0;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("bonded_all_terms", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bond in w.complex.topology.bonds() {
                let r = w.complex.atoms[bond.i].position.distance(w.complex.atoms[bond.j].position);
                acc += terms::bond_energy(r, ff).0;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
