//! Direct vs FFT correlation crossover (paper §III): direct correlation wins when the
//! ligand grid is small, FFT wins when it grows. This example sweeps the ligand
//! footprint and prints the modeled serial cost of both approaches.
//!
//! Run with: `cargo run --release --example correlation_crossover`

use ftmap::dock::direct::{DirectCorrelationEngine, SparseLigand};
use ftmap::dock::fft_engine::FftCorrelationEngine;
use ftmap::dock::grids::{GridSpec, LigandGrids, ReceptorGrids};
use ftmap::gpu::{CostModel, DeviceSpec, MemoryCounters};
use ftmap::prelude::*;

fn main() {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::medium(), &ff);
    let spec = GridSpec::centered_on(&protein.atoms, 64, 1.0);
    let receptor = ReceptorGrids::build(&protein.atoms, spec, 4);

    let fft = FftCorrelationEngine::new(&receptor);
    let direct = DirectCorrelationEngine::new(&receptor);
    let xeon = CostModel::new(DeviceSpec::xeon_core());

    let fft_counters = MemoryCounters { flops: fft.flops_per_rotation(), ..Default::default() };
    let fft_time = xeon.serial_time(&fft_counters);

    println!(
        "Receptor grid 64³, 8 energy terms. FFT correlation cost is independent of probe size."
    );
    println!("{:<28}{:>16}{:>16}{:>10}", "ligand", "direct (ms)", "FFT (ms)", "winner");

    // Sweep effective ligand footprints by scaling a benzene probe.
    let probe = Probe::new(ProbeType::Benzene, &ff);
    for scale in [0.5, 1.0, 2.0, 3.0, 4.0, 6.0] {
        let mut scaled = probe.clone();
        for atom in &mut scaled.atoms {
            atom.position *= scale;
        }
        let ligand = LigandGrids::build(&scaled.atoms, &Rotation::identity(), 1.0, 4);
        let sparse = SparseLigand::from_grids(&ligand);
        let direct_counters =
            MemoryCounters { flops: direct.flops_per_rotation(&sparse), ..Default::default() };
        let direct_time = xeon.serial_time(&direct_counters);
        let winner = if direct_time < fft_time { "direct" } else { "FFT" };
        println!(
            "{:<28}{:>16.2}{:>16.2}{:>10}",
            format!("{}³ footprint ({} voxels)", ligand.dim, sparse.len()),
            1e3 * direct_time,
            1e3 * fft_time,
            winner
        );
    }
    println!("\nFTMap probes never exceed a 4³ footprint, so the GPU implementation uses direct correlation (paper §III).");
}
