//! The bounded admission queue: backpressure at the service's front door.
//!
//! A production mapping service cannot admit unbounded work — a burst of
//! requests must either wait at the door ([`JobQueue::push`] blocks) or be
//! turned away immediately with the request handed back
//! ([`JobQueue::try_push`]), never pile up until memory dies. The queue is a
//! plain mutex + two condvars (one for writers waiting on space, one for the
//! dispatcher waiting on work); the dispatcher drains whole pending runs with
//! [`JobQueue::drain_wait`] so the batcher sees every compatible job at once.

use gpu_sim::sync::{locked, wait_on};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was not admitted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError<T> {
    /// The queue is at capacity; the request is handed back to the caller.
    Full(T),
    /// The service is shutting down and admits nothing new.
    Closed(T),
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with blocking and non-blocking admission.
pub struct JobQueue<T> {
    inner: Mutex<QueueInner<T>>,
    /// Signaled when space frees up (admitters wait here).
    space: Condvar,
    /// Signaled when work arrives or the queue closes (the dispatcher waits
    /// here).
    work: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a service that can never admit is a
    /// misconfiguration, not a policy.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue needs capacity for at least one job");
        JobQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            space: Condvar::new(),
            work: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of pending items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently pending.
    pub fn len(&self) -> usize {
        locked(&self.inner).items.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item`, blocking while the queue is full (backpressure). Returns
    /// the item back if the queue closed while waiting.
    pub fn push(&self, item: T) -> Result<(), SubmitError<T>> {
        let mut inner = locked(&self.inner);
        loop {
            if inner.closed {
                return Err(SubmitError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.work.notify_all();
                return Ok(());
            }
            inner = wait_on(&self.space, inner);
        }
    }

    /// Admits `item` without blocking; a full queue refuses and hands the item
    /// back (the client decides whether to retry, shed, or block via
    /// [`JobQueue::push`]).
    pub fn try_push(&self, item: T) -> Result<(), SubmitError<T>> {
        let mut inner = locked(&self.inner);
        if inner.closed {
            return Err(SubmitError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(SubmitError::Full(item));
        }
        inner.items.push_back(item);
        self.work.notify_all();
        Ok(())
    }

    /// Takes every pending item, blocking until at least one is available.
    /// Returns `None` once the queue is closed **and** drained — the
    /// dispatcher's termination condition.
    pub fn drain_wait(&self) -> Option<Vec<T>> {
        let mut inner = locked(&self.inner);
        loop {
            if !inner.items.is_empty() {
                let drained: Vec<T> = inner.items.drain(..).collect();
                self.space.notify_all();
                return Some(drained);
            }
            if inner.closed {
                return None;
            }
            inner = wait_on(&self.work, inner);
        }
    }

    /// Takes every pending item without blocking (possibly none) — the
    /// dispatcher's opportunistic top-up, so jobs that arrived while a batch
    /// ran can join the next compatible batch.
    pub fn drain_now(&self) -> Vec<T> {
        let mut inner = locked(&self.inner);
        let drained: Vec<T> = inner.items.drain(..).collect();
        if !drained.is_empty() {
            self.space.notify_all();
        }
        drained
    }

    /// Closes the queue: pending items still drain, new submissions are
    /// refused, and a dispatcher blocked in [`JobQueue::drain_wait`] wakes.
    pub fn close(&self) {
        let mut inner = locked(&self.inner);
        inner.closed = true;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// True once [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        locked(&self.inner).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn try_push_refuses_when_full_and_hands_the_item_back() {
        let queue = JobQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.try_push(1).expect("first fits");
        queue.try_push(2).expect("second fits");
        assert_eq!(queue.try_push(3), Err(SubmitError::Full(3)));
        assert_eq!(queue.len(), 2);
        // Draining frees space again.
        assert_eq!(queue.drain_wait(), Some(vec![1, 2]));
        queue.try_push(3).expect("space after drain");
    }

    #[test]
    fn push_blocks_until_space_frees() {
        let queue = Arc::new(JobQueue::new(1));
        queue.try_push(10).expect("fits");
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(11))
        };
        // Give the producer time to hit the full queue and park.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.len(), 1, "producer must be parked, not admitted");
        assert_eq!(queue.drain_wait(), Some(vec![10]));
        producer.join().expect("producer").expect("admitted after drain");
        assert_eq!(queue.drain_wait(), Some(vec![11]));
    }

    #[test]
    fn drain_wait_blocks_until_work_arrives() {
        let queue = Arc::new(JobQueue::new(4));
        let dispatcher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.drain_wait())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.try_push(42).expect("admitted");
        assert_eq!(dispatcher.join().expect("dispatcher"), Some(vec![42]));
    }

    #[test]
    fn close_refuses_new_work_but_drains_pending() {
        let queue = JobQueue::new(4);
        queue.try_push(1).expect("admitted");
        queue.close();
        assert!(queue.is_closed());
        assert_eq!(queue.try_push(2), Err(SubmitError::Closed(2)));
        assert_eq!(queue.push(3), Err(SubmitError::Closed(3)));
        assert_eq!(queue.drain_wait(), Some(vec![1]));
        assert_eq!(queue.drain_wait(), None);
    }

    #[test]
    fn close_unblocks_parked_producer() {
        let queue = Arc::new(JobQueue::new(1));
        queue.try_push(1).expect("fits");
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(producer.join().expect("producer"), Err(SubmitError::Closed(2)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = JobQueue::<u8>::new(0);
    }
}
