//! Property tests on the priority batcher: under **arbitrary** interleavings
//! of interactive/bulk arrivals and batch extractions, every bulk job is
//! dispatched within its aging bound — interactive overtaking can delay a
//! bulk job by at most `aging` batches on top of the queue ahead of it at
//! arrival — and extraction never loses, duplicates or reorders jobs within a
//! class.

use ftmap_serve::{next_batch_prioritized, Batchable, LatencyClass};
use proptest::prelude::*;

#[derive(Debug)]
struct TestJob {
    id: usize,
    fingerprint: u64,
    class: LatencyClass,
    overtaken: usize,
    /// Jobs pending when this one arrived (its FIFO backlog).
    ahead_at_arrival: usize,
    /// Batches extracted before this job arrived.
    batches_at_arrival: usize,
}

impl Batchable for TestJob {
    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
    fn class(&self) -> LatencyClass {
        self.class
    }
    fn note_overtaken(&mut self) {
        self.overtaken += 1;
    }
    fn overtaken(&self) -> usize {
        self.overtaken
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Starvation-freedom: for every bulk job, the number of batches formed
    /// between its arrival and its dispatch is at most
    /// `ahead_at_arrival + aging + 1` — no interactive arrival sequence can
    /// push it further, because each overtake bumps its counter and an
    /// exhausted counter forces it to anchor.
    #[test]
    fn bulk_jobs_are_dispatched_within_the_aging_bound(
        // Each event: (kind, fingerprint). kind 0 = extract a batch,
        // 1 = bulk arrival, 2-3 = interactive arrival (biased interactive,
        // the adversarial direction).
        events in prop::collection::vec((0u8..4, 0u64..3), 1..120),
        knobs in (0usize..6, 1usize..5),
    ) {
        let (aging, max_jobs) = knobs;
        let mut pending: Vec<TestJob> = Vec::new();
        let mut next_id = 0usize;
        let mut batches_formed = 0usize;
        let mut dispatched: Vec<(TestJob, usize)> = Vec::new(); // (job, dispatch batch no.)

        let run_extract = |pending: &mut Vec<TestJob>,
                               batches_formed: &mut usize,
                               dispatched: &mut Vec<(TestJob, usize)>| {
            let before: Vec<usize> = pending.iter().map(|j| j.id).collect();
            let batch = next_batch_prioritized(pending, max_jobs, aging);
            if batch.is_empty() {
                prop_assert!(before.is_empty(), "non-empty queue yielded an empty batch");
                return Ok(());
            }
            *batches_formed += 1;
            // Class-homogeneous, same-fingerprint, arrival-ordered batches.
            let class = batch[0].class;
            let fp = batch[0].fingerprint;
            prop_assert!(batch.iter().all(|j| j.class == class && j.fingerprint == fp));
            prop_assert!(batch.windows(2).all(|w| w[0].id < w[1].id));
            prop_assert!(batch.len() <= max_jobs.max(1));
            // Nothing lost or duplicated; survivors keep arrival order.
            let after: Vec<usize> = pending.iter().map(|j| j.id).collect();
            prop_assert!(after.windows(2).all(|w| w[0] < w[1]));
            let mut reassembled: Vec<usize> =
                after.iter().copied().chain(batch.iter().map(|j| j.id)).collect();
            reassembled.sort_unstable();
            let mut expected = before;
            expected.sort_unstable();
            prop_assert_eq!(reassembled, expected);
            for job in batch {
                let n = *batches_formed;
                dispatched.push((job, n));
            }
            Ok(())
        };

        for &(kind, fp) in &events {
            if kind == 0 {
                run_extract(&mut pending, &mut batches_formed, &mut dispatched)?;
            } else {
                let class =
                    if kind == 1 { LatencyClass::Bulk } else { LatencyClass::Interactive };
                pending.push(TestJob {
                    id: next_id,
                    fingerprint: fp,
                    class,
                    overtaken: 0,
                    ahead_at_arrival: pending.len(),
                    batches_at_arrival: batches_formed,
                });
                next_id += 1;
            }
        }
        // Drain whatever is left so every job gets a dispatch record.
        while !pending.is_empty() {
            run_extract(&mut pending, &mut batches_formed, &mut dispatched)?;
        }

        // Every job dispatched exactly once.
        prop_assert_eq!(dispatched.len(), next_id);
        for (job, dispatch_batch) in &dispatched {
            let waited = dispatch_batch - job.batches_at_arrival;
            let bound = job.ahead_at_arrival + aging + 1;
            if job.class == LatencyClass::Bulk {
                prop_assert!(
                    waited <= bound,
                    "bulk job {} waited {} batches, bound {} (ahead {}, aging {})",
                    job.id, waited, bound, job.ahead_at_arrival, aging
                );
                prop_assert!(job.overtaken <= aging, "counter overshot the aging knob");
            } else {
                // Interactive jobs also respect the FIFO bound (they can only
                // move forward, never backward).
                prop_assert!(waited <= bound);
            }
        }
    }
}
