//! The work-stealing shard executor: one worker per pooled device,
//! deterministic result ordering.

use crate::device::Device;
use crate::sched::pool::DevicePool;
use crate::sched::stream::Stream;
use crate::timing::StreamStats;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Execution context handed to the shard closure for each work item.
pub struct ShardCtx<'p> {
    /// The pooled device servicing this item.
    pub device: &'p Arc<Device>,
    /// Index of that device in the pool.
    pub device_index: usize,
    /// Index of the item in the submitted work list.
    pub item_index: usize,
}

/// What one pooled device did during a [`ShardQueue::execute`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceShardReport {
    /// Human-readable device name (from its spec).
    pub device: String,
    /// Index of the device in the pool.
    pub device_index: usize,
    /// Indices of the work items this device serviced, in service order.
    pub item_indices: Vec<usize>,
    /// The device's stream summary (kernel/transfer split, overlap savings).
    pub stream: StreamStats,
}

impl DeviceShardReport {
    /// Number of items this device serviced.
    pub fn items(&self) -> usize {
        self.item_indices.len()
    }

    /// Modeled busy seconds: the device's overlapped stream makespan.
    pub fn busy_s(&self) -> f64 {
        self.stream.overlapped_s
    }
}

// --- Load-balance math over per-device busy times, shared by every consumer
// --- that reports on a pool (ShardOutcome here, MappingProfile downstream) so
// --- the scheduler's report and the pipeline's report can never diverge.

/// Makespan of a set of per-device busy times: the busiest device's time
/// (0 when the set is empty). Devices work concurrently, so a pool finishes
/// when its slowest member does.
pub fn makespan_s(busy: &[f64]) -> f64 {
    busy.iter().copied().fold(0.0, f64::max)
}

/// Load-balance skew: busiest device's busy time over the mean busy time
/// (1.0 = perfectly balanced; also 1.0 for empty or fully idle sets).
pub fn load_skew(busy: &[f64]) -> f64 {
    if busy.is_empty() {
        return 1.0;
    }
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    if mean <= 0.0 {
        1.0
    } else {
        makespan_s(busy) / mean
    }
}

/// Per-device utilization: busy seconds over the makespan, in input order
/// (all zeros when nothing ran).
pub fn utilizations(busy: &[f64]) -> Vec<f64> {
    let makespan = makespan_s(busy);
    busy.iter().map(|&b| if makespan <= 0.0 { 0.0 } else { b / makespan }).collect()
}

/// The outcome of a sharded execution: results in submission order plus a
/// per-device load report.
#[derive(Debug)]
pub struct ShardOutcome<R> {
    /// One result per submitted item, in **submission order** — independent of
    /// which device serviced which shard.
    pub results: Vec<R>,
    /// Per-device reports, in pool order (idle devices report zero items).
    pub reports: Vec<DeviceShardReport>,
}

impl<R> ShardOutcome<R> {
    /// The per-device busy times, in pool order.
    fn busy(&self) -> Vec<f64> {
        self.reports.iter().map(DeviceShardReport::busy_s).collect()
    }

    /// Modeled makespan: the busiest device's overlapped stream time — the
    /// multi-device modeled run time.
    pub fn makespan_s(&self) -> f64 {
        makespan_s(&self.busy())
    }

    /// Sum of every device's modeled busy seconds.
    pub fn total_busy_s(&self) -> f64 {
        self.busy().iter().sum()
    }

    /// Total modeled transfer seconds hidden under compute, across devices.
    pub fn overlap_saved_s(&self) -> f64 {
        self.reports.iter().map(|r| r.stream.savings_s()).sum()
    }

    /// Load-balance skew of this execution (see [`load_skew`]).
    pub fn load_skew(&self) -> f64 {
        load_skew(&self.busy())
    }

    /// Per-device utilization, in pool order (see [`utilizations`]).
    pub fn utilizations(&self) -> Vec<f64> {
        utilizations(&self.busy())
    }
}

/// A work-stealing executor over a [`DevicePool`].
///
/// [`ShardQueue::execute`] spawns one crossbeam-scoped worker per pooled
/// device. Workers *steal* items from a shared queue (an atomic cursor over
/// the submitted list): a fast or lightly-loaded device simply claims the next
/// item sooner, so heterogeneous pools balance themselves without a central
/// planner. Two properties hold regardless of the interleaving:
///
/// * **exactly-once dispatch** — the atomic cursor hands every index to
///   exactly one worker, no item is skipped or run twice;
/// * **deterministic results** — each result is written to the slot of its
///   item index, so `results[i]` always corresponds to `items[i]` even though
///   the servicing device varies run to run.
///
/// Each worker drives its own [`Stream`]: the executor snapshots the device's
/// transfer accounting around every item, so per-item upload/download seconds
/// are attributed exactly and overlap savings are computed per device.
pub struct ShardQueue<'p> {
    pool: &'p DevicePool,
}

impl<'p> ShardQueue<'p> {
    /// A queue executing on `pool`.
    pub fn new(pool: &'p DevicePool) -> Self {
        ShardQueue { pool }
    }

    /// The pool this queue schedules onto.
    pub fn pool(&self) -> &'p DevicePool {
        self.pool
    }

    /// Executes `work` over every item, one worker per pooled device.
    ///
    /// `work` receives the shard context (device handle, device index, item
    /// index) and the item, and returns the result together with the item's
    /// modeled **kernel** seconds (transfers are captured automatically from
    /// the device's transfer accounting, so they must not be folded into the
    /// returned figure — that is what keeps them from being double-counted).
    pub fn execute<T, R, F>(&self, items: Vec<T>, work: F) -> ShardOutcome<R>
    where
        T: Send,
        R: Send,
        F: Fn(&ShardCtx<'_>, T) -> (R, f64) + Sync,
    {
        let n_items = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n_items).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let reports: Mutex<Vec<Option<DeviceShardReport>>> =
            Mutex::new((0..self.pool.len()).map(|_| None).collect());

        crossbeam::thread::scope(|scope| {
            for (device_index, device) in self.pool.devices().iter().enumerate() {
                let slots = &slots;
                let results = &results;
                let cursor = &cursor;
                let reports = &reports;
                let work = &work;
                scope.spawn(move |_| {
                    let mut stream = Stream::new();
                    let mut item_indices = Vec::new();
                    loop {
                        let item_index = cursor.fetch_add(1, Ordering::Relaxed);
                        if item_index >= n_items {
                            break;
                        }
                        let item = slots[item_index]
                            .lock()
                            .take()
                            .expect("work item claimed twice — atomic cursor violated");
                        let ctx = ShardCtx { device, device_index, item_index };
                        let before = device.transfer_snapshot();
                        let (result, kernel_s) = work(&ctx, item);
                        stream.record_between(&before, &device.transfer_snapshot(), kernel_s);
                        item_indices.push(item_index);
                        *results[item_index].lock() = Some(result);
                    }
                    reports.lock()[device_index] = Some(DeviceShardReport {
                        device: device.spec().name.clone(),
                        device_index,
                        item_indices,
                        stream: stream.stats(),
                    });
                });
            }
        })
        .expect("shard worker panicked");

        let results = results
            .into_iter()
            .map(|slot| slot.into_inner().expect("work item produced no result"))
            .collect();
        let reports = reports
            .into_inner()
            .into_iter()
            .map(|r| r.expect("worker exited without reporting"))
            .collect();
        ShardOutcome { results, reports }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        let pool = DevicePool::tesla(3);
        let queue = ShardQueue::new(&pool);
        let items: Vec<usize> = (0..20).collect();
        let outcome = queue.execute(items, |ctx, item| {
            assert_eq!(ctx.item_index, item);
            (item * 2, 1e-3)
        });
        assert_eq!(outcome.results, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(outcome.reports.len(), 3);
        let serviced: usize = outcome.reports.iter().map(DeviceShardReport::items).sum();
        assert_eq!(serviced, 20);
    }

    #[test]
    fn per_device_streams_capture_transfers() {
        let pool = DevicePool::tesla(2);
        let queue = ShardQueue::new(&pool);
        let outcome = queue.execute(vec![(); 8], |ctx, ()| {
            ctx.device.upload_bytes(1 << 20);
            ctx.device.download_bytes(1 << 18);
            ((), 5e-3)
        });
        for report in &outcome.reports {
            assert_eq!(report.stream.ops, report.items());
            if report.items() > 0 {
                assert!(report.stream.upload_s > 0.0);
                assert!(report.stream.download_s > 0.0);
                assert!(report.busy_s() <= report.stream.serialized_s + 1e-12);
            }
        }
        assert!(outcome.makespan_s() > 0.0);
        assert!(outcome.makespan_s() <= outcome.total_busy_s() + 1e-12);
        assert!(outcome.load_skew() >= 1.0 - 1e-12);
        let utils = outcome.utilizations();
        assert_eq!(utils.len(), 2);
        assert!(utils.iter().all(|&u| (0.0..=1.0 + 1e-12).contains(&u)));
    }

    #[test]
    fn empty_work_list_reports_idle_devices() {
        let pool = DevicePool::tesla(2);
        let queue = ShardQueue::new(&pool);
        let outcome: ShardOutcome<()> = queue.execute(Vec::new(), |_, ()| ((), 0.0));
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.reports.len(), 2);
        assert_eq!(outcome.makespan_s(), 0.0);
        assert_eq!(outcome.load_skew(), 1.0);
        assert_eq!(outcome.utilizations(), vec![0.0, 0.0]);
    }
}
