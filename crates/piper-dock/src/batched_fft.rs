//! Batched FFT docking with receptor-transform residency and a fused top-K
//! epilogue.
//!
//! The per-rotation FFT path ([`crate::fft_engine::FftCorrelationEngine`])
//! launches one correlation per rotation and materializes full `N³` score
//! grids on the host before filtering. This engine restructures the same
//! mathematics around three bandwidth disciplines:
//!
//! 1. **Receptor-transform residency.** The forward FFTs of the receptor
//!    component grids (and the twiddle-table plan that produced them) are a
//!    pure function of the resident receptor grids, so they are cached as a
//!    *derived* payload next to the raw grids in the device's
//!    [`gpu_sim::ResidencyCache`] (keyed by
//!    [`ResidencyCache::derived_key`](gpu_sim::ResidencyCache::derived_key)
//!    under [`RECEPTOR_TRANSFORM_TAG`]). A warm receptor skips straight to
//!    ligand-side transforms: zero upload bytes *and* zero transform flops.
//! 2. **Batched launches.** Many rotations are packed into single large
//!    modeled launches — one batched forward transform over all ligand grids,
//!    one pointwise conjugate-multiply against the resident receptor
//!    transforms, one batched inverse — instead of per-rotation loops, so
//!    launch count grows with batches, not rotations.
//! 3. **Fused top-K epilogue.** Desolvation accumulation, weighted scoring
//!    and top-K filtering (exact [`crate::filter`] semantics) run inside the
//!    correlation epilogue *before any download*: only the retained poses are
//!    transfer-accounted, and the full `N³` score grids never cross the
//!    modeled PCIe link.
//!
//! Per rotation, the arithmetic is identical to
//! `FftCorrelationEngine::correlate_rotation` followed by the host
//! accumulate/score/filter tail, so retained poses are bit-identical to the
//! per-rotation path.

use crate::filter;
use crate::grids::{EnergyWeights, LigandGrids, ReceptorGrids};
use crate::pose::Pose;
use ftmap_math::fft::{Direction, Fft3Plan};
use ftmap_math::{Complex, Grid3, Real};
use gpu_sim::{BlockContext, BlockKernel, Device, KernelLaunch, Residency, Staged, StatsLedger};
use std::sync::Arc;

/// Derivation tag for the receptor's forward transforms + FFT plan in the
/// device residency cache (keyed next to the raw grids via
/// [`gpu_sim::ResidencyCache::derived_key`]).
pub const RECEPTOR_TRANSFORM_TAG: &str = "fft-transforms";

/// Ledger phase name for the one-time receptor forward transforms.
pub const PHASE_RECEPTOR_FFT: &str = "receptor_fft";
/// Ledger phase name for the batched ligand forward transforms.
pub const PHASE_LIGAND_FFT: &str = "ligand_fft";
/// Ledger phase name for the pointwise conjugate-multiply pass.
pub const PHASE_CONJ_MULTIPLY: &str = "conj_multiply";
/// Ledger phase name for the batched inverse transforms.
pub const PHASE_INVERSE_FFT: &str = "inverse_fft";
/// Ledger phase name for the fused accumulate + score + top-K epilogue.
pub const PHASE_FUSED_EPILOGUE: &str = "fused_epilogue";

/// The receptor-side state the batched engine shares across constructions: the
/// forward FFT of each receptor component grid plus the twiddle-table plan
/// that produced them (reused for the ligand-side transforms, so every
/// transform in a docking run replays the same table arithmetic).
pub struct ReceptorTransforms {
    dim: usize,
    n_terms: usize,
    plan: Fft3Plan,
    term_ffts: Vec<Vec<Complex>>,
}

impl ReceptorTransforms {
    /// Forward-transforms every receptor component grid with a fresh plan.
    ///
    /// Same arithmetic, in the same order, as
    /// [`crate::fft_engine::FftCorrelationEngine::new`] — the bit-identity of
    /// the batched path to the per-rotation path starts here.
    ///
    /// # Panics
    /// Panics if the receptor grid dimension is not a power of two.
    pub fn compute(receptor: &ReceptorGrids) -> Self {
        let dim = receptor.spec.dim;
        let plan = Fft3Plan::new(dim, dim, dim);
        let term_ffts = receptor
            .terms
            .iter()
            .map(|grid| {
                let mut data: Vec<Complex> =
                    grid.as_slice().iter().map(|&v| Complex::from_real(v)).collect();
                plan.transform_in_place(&mut data, Direction::Forward);
                data
            })
            .collect();
        ReceptorTransforms { dim, n_terms: receptor.n_terms(), plan, term_ffts }
    }

    /// Grid dimension `N`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of energy components.
    pub fn n_terms(&self) -> usize {
        self.n_terms
    }

    /// The shared FFT plan (immutable: [`Fft3Plan::transform_in_place`] takes
    /// `&self`, so one cached plan serves every consumer without cloning).
    pub fn plan(&self) -> &Fft3Plan {
        &self.plan
    }

    /// The forward transform of receptor component `term`.
    pub fn term_fft(&self, term: usize) -> &[Complex] {
        &self.term_ffts[term]
    }

    /// Device bytes this payload occupies: the complex transform grids plus
    /// the plan's twiddle tables — what the residency cache charges against
    /// the memory budget for the derived entry.
    pub fn resident_bytes(&self) -> usize {
        let grids: usize =
            self.term_ffts.iter().map(|t| t.len() * std::mem::size_of::<Complex>()).sum();
        grids + self.plan.table_bytes()
    }
}

/// How the receptor transforms reached the device for one engine construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransformResidency {
    /// Derived entry was warm: zero transform flops, zero upload bytes.
    Hit,
    /// Derived entry was cold: one modeled forward-transform pass over the
    /// resident receptor grids (no upload — the transforms are computed on
    /// the device from data already there). The transforms are now cached for
    /// the next construction.
    Computed {
        /// Modeled seconds of the one-time transform launch.
        modeled_s: f64,
    },
    /// The transforms could not be cached (cache disabled, raw grids not
    /// resident, or over budget): computed for this construction only.
    Uncached {
        /// Modeled seconds of this construction's transform launch.
        modeled_s: f64,
    },
}

impl TransformResidency {
    /// Modeled seconds of receptor-transform work this construction charged.
    pub fn modeled_s(&self) -> f64 {
        match self {
            TransformResidency::Hit => 0.0,
            TransformResidency::Computed { modeled_s }
            | TransformResidency::Uncached { modeled_s } => *modeled_s,
        }
    }
}

/// Outcome of docking one batch of rotations through the fused path.
pub struct BatchedDockOutcome {
    /// Retained poses per batch slot, in batch order (`poses[slot]` belongs to
    /// the slot's rotation index; already tagged with it).
    pub poses: Vec<Vec<Pose>>,
    /// Per-phase kernel stats of the batch's launches.
    pub ledger: StatsLedger,
    /// Modeled seconds uploading the batch's compact ligand grids.
    pub upload_s: f64,
    /// Modeled seconds downloading the retained poses (the only result bytes
    /// that cross the link).
    pub download_s: f64,
}

/// Batched FFT correlation + fused filtering over a fixed receptor (held as
/// its resolved [`ReceptorTransforms`] — the raw grids are only needed at
/// construction, to compute or look up the transforms).
pub struct BatchedFftEngine<'a> {
    device: &'a Device,
    transforms: Arc<ReceptorTransforms>,
    residency: TransformResidency,
    threads_per_block: usize,
}

impl<'a> BatchedFftEngine<'a> {
    /// Creates the engine, resolving the receptor transforms through the
    /// device's derived-payload residency: a warm receptor reuses the cached
    /// transforms + plan for free; a cold one pays one modeled transform pass
    /// (recorded as the [`PHASE_RECEPTOR_FFT`] launch) and leaves the result
    /// cached next to the raw grids.
    ///
    /// # Panics
    /// Panics if the receptor grid dimension is not a power of two.
    pub fn new(device: &'a Device, receptor: &'a ReceptorGrids) -> Self {
        let parent_key = receptor.content_key();
        let mut computed: Option<(Arc<ReceptorTransforms>, f64)> = None;
        let outcome = device.residency().get_or_insert_derived_with(
            parent_key,
            RECEPTOR_TRANSFORM_TAG,
            || {
                let (transforms, modeled_s) = Self::transform_receptor(device, receptor);
                let bytes = transforms.resident_bytes();
                computed = Some((Arc::clone(&transforms), modeled_s));
                (transforms as gpu_sim::ResidentPayload, bytes)
            },
        );
        let (transforms, residency) = match outcome {
            Residency::Hit(payload) => match payload.downcast::<ReceptorTransforms>() {
                Ok(cached) => (cached, TransformResidency::Hit),
                // Foreign payload under this derived key (content-hash
                // collision): compute our own, uncached.
                Err(_) => {
                    let (transforms, modeled_s) = Self::transform_receptor(device, receptor);
                    (transforms, TransformResidency::Uncached { modeled_s })
                }
            },
            Residency::Miss { .. } => {
                let (transforms, modeled_s) = computed.expect("fill ran on miss");
                (transforms, TransformResidency::Computed { modeled_s })
            }
            Residency::Uncacheable => {
                let (transforms, modeled_s) = match computed {
                    Some(pair) => pair,
                    None => Self::transform_receptor(device, receptor),
                };
                (transforms, TransformResidency::Uncached { modeled_s })
            }
        };
        BatchedFftEngine { device, transforms, residency, threads_per_block: 64 }
    }

    /// Runs the modeled forward-transform launch over the receptor grids (one
    /// block per component) and returns the transforms with its modeled time.
    fn transform_receptor(
        device: &Device,
        receptor: &ReceptorGrids,
    ) -> (Arc<ReceptorTransforms>, f64) {
        let dim = receptor.spec.dim;
        let flops_per_transform = Fft3Plan::new(dim, dim, dim).flops_per_transform();
        let output: Staged<Option<ReceptorTransforms>> = Staged::new(None);
        ftmap_trace::hook::mark(PHASE_RECEPTOR_FFT);
        let kernel = ReceptorTransformKernel { receptor, flops_per_transform, output: &output };
        let stats = KernelLaunch::on(device).grid(receptor.n_terms()).threads(64).run(&kernel);
        let transforms = output.take().expect("transform kernel produced output");
        (Arc::new(transforms), stats.modeled_time_s)
    }

    /// How the receptor transforms reached the device for this construction.
    pub fn transform_residency(&self) -> TransformResidency {
        self.residency
    }

    /// The resolved receptor transforms (cached or freshly computed).
    pub fn transforms(&self) -> &Arc<ReceptorTransforms> {
        &self.transforms
    }

    /// Docks one batch of rotations: upload compact ligand grids, one batched
    /// forward transform, one conjugate-multiply pass, one batched inverse,
    /// and the fused accumulate + score + top-K epilogue — downloading only
    /// the retained poses.
    ///
    /// `batch[slot]` is correlated as rotation `rotation_indices[slot]`; the
    /// returned `poses[slot]` are tagged accordingly.
    ///
    /// # Panics
    /// Panics if the batch is empty, the index list has a different length,
    /// or a ligand's term count does not match the receptor's.
    pub fn dock_batch(
        &self,
        batch: &[LigandGrids],
        rotation_indices: &[usize],
        weights: &EnergyWeights,
        n_desolv: usize,
        k: usize,
        exclusion_radius: usize,
    ) -> BatchedDockOutcome {
        assert!(!batch.is_empty(), "batched docking needs at least one rotation");
        assert_eq!(batch.len(), rotation_indices.len(), "one rotation index per batch slot");
        for ligand in batch {
            assert_eq!(
                ligand.n_terms(),
                self.transforms.n_terms(),
                "ligand term count must match receptor"
            );
        }
        let n = self.transforms.dim();
        let n_terms = self.transforms.n_terms();
        let n_grids = batch.len() * n_terms;
        let mut ledger = StatsLedger::new();

        // Upload the compact (unpadded) ligand grids — the only per-rotation
        // bytes that go up; zero-padding happens on the device.
        let ligand_bytes: usize = batch
            .iter()
            .map(|l| l.terms.iter().map(Grid3::len).sum::<usize>() * std::mem::size_of::<Real>())
            .sum();
        let upload_s = self.device.upload_bytes(ligand_bytes as u64);
        ledger.record_transfer_s(PHASE_LIGAND_FFT, upload_s);

        // Frequency-domain workspace: one complex grid per (slot, term),
        // staged as launch-layer output (device global memory).
        let freq: Vec<Staged<Vec<Complex>>> =
            (0..n_grids).map(|_| Staged::new(Vec::new())).collect();

        // 1. One batched forward transform over every ligand grid.
        ftmap_trace::hook::mark(PHASE_LIGAND_FFT);
        let forward =
            LigandForwardKernel { batch, plan: &self.transforms, freq: &freq, n, n_terms };
        KernelLaunch::on(self.device).grid(n_grids).threads(self.threads_per_block).run_recorded(
            &mut ledger,
            PHASE_LIGAND_FFT,
            &forward,
        );

        // 2. One pointwise conjugate-multiply pass against the resident
        //    receptor transforms.
        ftmap_trace::hook::mark(PHASE_CONJ_MULTIPLY);
        let multiply = ConjMultiplyKernel { transforms: &self.transforms, freq: &freq, n, n_terms };
        KernelLaunch::on(self.device).grid(n_grids).threads(self.threads_per_block).run_recorded(
            &mut ledger,
            PHASE_CONJ_MULTIPLY,
            &multiply,
        );

        // 3. One batched inverse transform, leaving real correlation grids.
        ftmap_trace::hook::mark(PHASE_INVERSE_FFT);
        let results: Vec<Staged<Grid3<Real>>> =
            (0..n_grids).map(|_| Staged::new(Grid3::cubic(n))).collect();
        let inverse = InverseKernel { plan: &self.transforms, freq: &freq, results: &results, n };
        KernelLaunch::on(self.device).grid(n_grids).threads(self.threads_per_block).run_recorded(
            &mut ledger,
            PHASE_INVERSE_FFT,
            &inverse,
        );
        let results: Vec<Grid3<Real>> = results.into_iter().map(Staged::take).collect();

        // 4. Fused epilogue: accumulate + score + filter per rotation, one
        //    block per batch slot, before anything is downloaded.
        ftmap_trace::hook::mark(PHASE_FUSED_EPILOGUE);
        let poses: Staged<Vec<Vec<Pose>>> = Staged::new(vec![Vec::new(); batch.len()]);
        let epilogue = FusedEpilogueKernel {
            results: &results,
            rotation_indices,
            weights: *weights,
            n_terms,
            n_desolv,
            k,
            exclusion_radius,
            poses: &poses,
        };
        KernelLaunch::on(self.device)
            .grid(batch.len())
            .threads(256)
            .shared_mem_capped(256 * (k + 1))
            .run_recorded(&mut ledger, PHASE_FUSED_EPILOGUE, &epilogue);
        let poses = poses.take();

        // Download only the retained poses — never the N³ score grids.
        let mut download_s = 0.0;
        for slot in &poses {
            download_s += self.device.download_slice(slot);
        }
        ledger.record_transfer_s(PHASE_FUSED_EPILOGUE, download_s);

        BatchedDockOutcome { poses, ledger, upload_s, download_s }
    }
}

/// One-time receptor forward transforms: block `b` transforms component `b`.
/// The whole pass (plan construction included) executes in block 0's write
/// window so the produced plan is the one shared by every later transform.
struct ReceptorTransformKernel<'a> {
    receptor: &'a ReceptorGrids,
    flops_per_transform: u64,
    output: &'a Staged<Option<ReceptorTransforms>>,
}

impl BlockKernel for ReceptorTransformKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        let n3 = self.receptor.spec.len() as u64;
        if ctx.block_idx == 0 {
            let transforms = ReceptorTransforms::compute(self.receptor);
            *self.output.write() = Some(transforms);
        }
        // Accounting per component: read the real grid, run one forward
        // transform, write the complex result.
        ctx.record_global_reads(n3);
        ctx.record_flops(self.flops_per_transform);
        ctx.record_global_writes(2 * n3);
        ctx.sync_threads();
    }
}

/// Batched ligand forward transform: block `g` zero-pads ligand grid
/// `g = slot * n_terms + term` into the receptor dimensions and
/// forward-transforms it in place.
struct LigandForwardKernel<'a> {
    batch: &'a [LigandGrids],
    plan: &'a ReceptorTransforms,
    freq: &'a [Staged<Vec<Complex>>],
    n: usize,
    n_terms: usize,
}

impl BlockKernel for LigandForwardKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        let g = ctx.block_idx;
        if g >= self.freq.len() {
            return;
        }
        let (slot, term) = (g / self.n_terms, g % self.n_terms);
        let n = self.n;
        let padded = self.batch[slot].terms[term].zero_padded(n, n, n);
        let mut data: Vec<Complex> =
            padded.as_slice().iter().map(|&v| Complex::from_real(v)).collect();
        self.plan.plan().transform_in_place(&mut data, Direction::Forward);
        *self.freq[g].write() = data;

        let n3 = (n * n * n) as u64;
        // Read the compact ligand entries, scatter into the padded complex
        // grid, one forward transform, write the spectrum.
        ctx.record_global_reads(self.batch[slot].terms[term].len() as u64);
        ctx.record_global_writes(2 * n3);
        ctx.record_flops(self.plan.plan().flops_per_transform());
        ctx.sync_threads();
    }
}

/// Pointwise conjugate-multiply: block `g` computes
/// `freq[g] = conj(freq[g]) .* receptor_fft[term]` (the correlation theorem).
struct ConjMultiplyKernel<'a> {
    transforms: &'a ReceptorTransforms,
    freq: &'a [Staged<Vec<Complex>>],
    n: usize,
    n_terms: usize,
}

impl BlockKernel for ConjMultiplyKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        let g = ctx.block_idx;
        if g >= self.freq.len() {
            return;
        }
        let term = g % self.n_terms;
        let receptor_fft = self.transforms.term_fft(term);
        {
            let mut data = self.freq[g].write();
            for (l, r) in data.iter_mut().zip(receptor_fft) {
                *l = l.conj() * *r;
            }
        }
        let n3 = (self.n * self.n * self.n) as u64;
        // Per voxel: read both complex values, one complex multiply (6 flops),
        // write the complex product.
        ctx.record_global_reads(4 * n3);
        ctx.record_flops(6 * n3);
        ctx.record_global_writes(2 * n3);
        ctx.sync_threads();
    }
}

/// Batched inverse transform: block `g` inverse-transforms its spectrum and
/// keeps the real part — that grid stays in device global memory for the
/// epilogue; it is never downloaded.
struct InverseKernel<'a> {
    plan: &'a ReceptorTransforms,
    freq: &'a [Staged<Vec<Complex>>],
    results: &'a [Staged<Grid3<Real>>],
    n: usize,
}

impl BlockKernel for InverseKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        let g = ctx.block_idx;
        if g >= self.freq.len() {
            return;
        }
        let n = self.n;
        let mut data = std::mem::take(&mut *self.freq[g].write());
        self.plan.plan().transform_in_place(&mut data, Direction::Inverse);
        let real: Vec<Real> = data.into_iter().map(|c| c.re).collect();
        *self.results[g].write() = Grid3::from_vec(n, n, n, real);

        let n3 = (n * n * n) as u64;
        ctx.record_global_reads(2 * n3);
        ctx.record_flops(self.plan.plan().flops_per_transform());
        ctx.record_global_writes(n3);
        ctx.sync_threads();
    }
}

/// Fused scoring epilogue: block `s` accumulates the desolvation components,
/// applies the Equation (2) weights and runs top-K filtering with region
/// exclusion for batch slot `s` — exact [`crate::filter`] arithmetic, entirely
/// on the device side of the modeled link.
struct FusedEpilogueKernel<'a> {
    /// Correlation result grids, `results[slot * n_terms + term]`.
    results: &'a [Grid3<Real>],
    rotation_indices: &'a [usize],
    weights: EnergyWeights,
    n_terms: usize,
    n_desolv: usize,
    k: usize,
    exclusion_radius: usize,
    poses: &'a Staged<Vec<Vec<Pose>>>,
}

impl BlockKernel for FusedEpilogueKernel<'_> {
    fn execute_block(&self, ctx: &mut BlockContext) {
        let slot = ctx.block_idx;
        if slot >= self.rotation_indices.len() {
            return;
        }
        let terms = &self.results[slot * self.n_terms..(slot + 1) * self.n_terms];
        let desolv = filter::accumulate_desolvation(terms, self.n_desolv);
        let scores = filter::score_grid(terms, &desolv, &self.weights, self.n_desolv);
        let selected = filter::filter_top_k(
            &scores,
            self.k,
            self.exclusion_radius,
            self.rotation_indices[slot],
        );

        let n3 = scores.len() as u64;
        // Accumulation reads the desolvation components; scoring reads the
        // weighted components + the accumulated total (as in the standalone
        // kernels this fuses), with no intermediate grid round-tripping
        // through global memory.
        ctx.record_global_reads((self.n_desolv as u64 + 5) * n3);
        ctx.record_flops((self.n_desolv as u64 + 6) * n3);
        // Per-thread local best in shared memory, master gathers per round.
        ctx.record_shared_accesses(ctx.threads_per_block as u64 * (self.k as u64 + 1));
        ctx.sync_threads();
        // Each filtering round rescans the candidates and marks the exclusion
        // neighbourhood in a global-memory exclusion array.
        let excl = (2 * self.exclusion_radius as u64 + 1).pow(3);
        ctx.record_global_reads(self.k as u64 * n3 / ctx.threads_per_block.max(1) as u64);
        ctx.record_global_writes(self.k as u64 * excl);
        ctx.record_global_writes(selected.len() as u64);
        self.poses.write()[slot] = selected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft_engine::FftCorrelationEngine;
    use crate::grids::GridSpec;
    use ftmap_math::RotationSet;
    use ftmap_molecule::{ForceField, Probe, ProbeType, ProteinSpec, SyntheticProtein};

    fn setup(dim: usize) -> (ReceptorGrids, Probe) {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let spec = GridSpec::centered_on(&protein.atoms, dim, 2.0);
        let receptor = ReceptorGrids::build(&protein.atoms, spec, 4);
        let probe = Probe::new(ProbeType::Acetone, &ff);
        (receptor, probe)
    }

    fn ligands_for(probe: &Probe, rotations: &RotationSet) -> Vec<LigandGrids> {
        rotations.iter().map(|r| LigandGrids::build(&probe.atoms, r, 2.0, 4)).collect()
    }

    #[test]
    fn batched_poses_are_bit_identical_to_per_rotation_path() {
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        // Make the raw receptor resident so the derived entry can cache.
        let key = receptor.content_key();
        let bytes = receptor.resident_bytes();
        let shared = Arc::new(receptor);
        device
            .residency()
            .get_or_insert_with(key, || (Arc::clone(&shared) as gpu_sim::ResidentPayload, bytes));

        let rotations = RotationSet::uniform(5);
        let batch = ligands_for(&probe, &rotations);
        let indices: Vec<usize> = (0..batch.len()).collect();
        let weights = EnergyWeights::default();

        let engine = BatchedFftEngine::new(&device, &shared);
        let out = engine.dock_batch(&batch, &indices, &weights, 4, 3, 2);

        let reference = FftCorrelationEngine::new(&shared);
        for (slot, ligand) in batch.iter().enumerate() {
            let results = reference.correlate_rotation(ligand);
            let desolv = filter::accumulate_desolvation(&results, 4);
            let scores = filter::score_grid(&results, &desolv, &weights, 4);
            let expect = filter::filter_top_k(&scores, 3, 2, slot);
            assert_eq!(out.poses[slot], expect, "slot {slot}");
            for pose in &out.poses[slot] {
                // Bit-identical scores, not merely close.
                assert!(expect.iter().any(|e| e.score.to_bits() == pose.score.to_bits()));
            }
        }
        assert!(out.upload_s > 0.0);
        assert!(out.download_s > 0.0);
        assert!(out.ledger.total_modeled_s() > 0.0);
    }

    #[test]
    fn second_engine_hits_the_derived_transform_cache() {
        let (receptor, _) = setup(16);
        let device = Device::tesla_c1060();
        let key = receptor.content_key();
        let bytes = receptor.resident_bytes();
        let shared = Arc::new(receptor);
        device
            .residency()
            .get_or_insert_with(key, || (Arc::clone(&shared) as gpu_sim::ResidentPayload, bytes));

        let first = BatchedFftEngine::new(&device, &shared);
        assert!(matches!(first.transform_residency(), TransformResidency::Computed { .. }));
        assert!(first.transform_residency().modeled_s() > 0.0);

        let second = BatchedFftEngine::new(&device, &shared);
        assert_eq!(second.transform_residency(), TransformResidency::Hit);
        // Borrowed, not recomputed: both engines share the cached payload.
        assert!(Arc::ptr_eq(first.transforms(), second.transforms()));
        let derived = device.residency().derived_stats();
        assert_eq!(derived.insertions, 1);
        assert!(derived.hits >= 1);
    }

    #[test]
    fn non_resident_receptor_computes_transforms_uncached() {
        let (receptor, _) = setup(16);
        let device = Device::tesla_c1060();
        // Raw grids never made resident: the derived entry must be refused.
        let engine = BatchedFftEngine::new(&device, &receptor);
        assert!(matches!(engine.transform_residency(), TransformResidency::Uncached { .. }));
        assert!(engine.transform_residency().modeled_s() > 0.0);
        assert_eq!(device.residency().derived_stats().insertions, 0);
    }

    #[test]
    fn download_carries_only_retained_poses() {
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        let rotations = RotationSet::uniform(4);
        let batch = ligands_for(&probe, &rotations);
        let indices: Vec<usize> = (0..batch.len()).collect();

        let engine = BatchedFftEngine::new(&device, &receptor);
        let before = device.transfer_snapshot();
        let out = engine.dock_batch(&batch, &indices, &EnergyWeights::default(), 4, 4, 2);
        let delta = device.transfer_snapshot().delta_since(&before);

        let n_poses: usize = out.poses.iter().map(Vec::len).sum();
        let pose_bytes = n_poses * std::mem::size_of::<Pose>();
        let ligand_bytes: usize = batch
            .iter()
            .map(|l| l.terms.iter().map(Grid3::len).sum::<usize>() * std::mem::size_of::<Real>())
            .sum();
        // The byte counter covers both directions: compact ligand grids up,
        // retained poses down — and nothing else (no N³ score grids).
        assert_eq!(delta.bytes, ligand_bytes + pose_bytes);
        assert!(delta.download_s > 0.0);
        let full_grids = batch.len() * 16 * 16 * 16 * std::mem::size_of::<Real>();
        assert!(pose_bytes * 10 < full_grids, "pose download must be ≥10× below full grids");
    }

    #[test]
    fn launch_count_grows_with_batches_not_rotations() {
        let (receptor, probe) = setup(16);
        let device = Device::tesla_c1060();
        let rotations = RotationSet::uniform(7);
        let batch = ligands_for(&probe, &rotations);
        let indices: Vec<usize> = (0..batch.len()).collect();
        let engine = BatchedFftEngine::new(&device, &receptor);
        let out = engine.dock_batch(&batch, &indices, &EnergyWeights::default(), 4, 2, 2);
        // One forward, one multiply, one inverse, one epilogue — regardless of
        // the number of rotations in the batch.
        assert_eq!(out.ledger.total_launches(), 4);
        assert_eq!(out.ledger.launches(PHASE_LIGAND_FFT), 1);
        assert_eq!(out.ledger.launches(PHASE_FUSED_EPILOGUE), 1);
    }

    mod epilogue_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The fused on-device epilogue selects exactly the poses the
            /// host-side `filter::filter_top_k` selects, for arbitrary score
            /// grids, retention counts and exclusion radii. The arbitrary
            /// grid enters as the sole desolvation component with all other
            /// weights zeroed, so the score grid *is* the arbitrary data.
            #[test]
            fn fused_epilogue_matches_host_filter(
                values in prop::collection::vec(-100.0f64..100.0, 512),
                k in 0usize..6,
                exclusion_radius in 0usize..3,
                rotation_index in 0usize..500,
            ) {
                let n = 8; // 8³ = 512 voxels
                let mut results: Vec<Grid3<Real>> = (0..5).map(|_| Grid3::cubic(n)).collect();
                results[4] = Grid3::from_vec(n, n, n, values.clone());
                let weights =
                    EnergyWeights { shape_core: 0.0, shape_attr: 0.0, elec: 0.0, desolv: 1.0 };

                let device = Device::tesla_c1060();
                let poses: Staged<Vec<Vec<Pose>>> = Staged::new(vec![Vec::new(); 1]);
                let kernel = FusedEpilogueKernel {
                    results: &results,
                    rotation_indices: &[rotation_index],
                    weights,
                    n_terms: 5,
                    n_desolv: 1,
                    k,
                    exclusion_radius,
                    poses: &poses,
                };
                KernelLaunch::on(&device).grid(1).threads(256).run(&kernel);
                let device_poses = poses.take().remove(0);

                let desolv = filter::accumulate_desolvation(&results, 1);
                let scores = filter::score_grid(&results, &desolv, &weights, 1);
                let host_poses = filter::filter_top_k(&scores, k, exclusion_radius, rotation_index);
                prop_assert_eq!(device_poses, host_poses);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one rotation")]
    fn empty_batch_panics() {
        let (receptor, _) = setup(16);
        let device = Device::tesla_c1060();
        let engine = BatchedFftEngine::new(&device, &receptor);
        let _ = engine.dock_batch(&[], &[], &EnergyWeights::default(), 4, 2, 2);
    }
}
