//! # ftmap-serve
//!
//! The **asynchronous batch-mapping service**: the serving layer that turns
//! the one-shot mapping pipeline ([`ftmap_core::FtMapPipeline`]) into a
//! multi-tenant system fit for sustained traffic.
//!
//! The paper's workload is throughput-bound and embarrassingly parallel; the
//! GPU literature it builds on (van Meel et al., Barros et al.) gets sustained
//! device throughput from two moves: keep data **resident** on the device, and
//! feed the hardware a **continuous stream of batched work** instead of
//! cold-starting each request. This crate applies both at the request level:
//!
//! ```text
//!  clients ──► MappingRequest ──► bounded JobQueue ──► batcher ──► DevicePool
//!                  │                (backpressure)    (by receptor)   │
//!                  ▼                                                  ▼
//!              JobHandle ◄──────────── JobReport ◄──── per-job assembly
//! ```
//!
//! * **Admission** ([`admission`], [`queue`]) — an **SLO-aware admission
//!   controller** in front of a bounded queue. At submit time the service
//!   estimates the request's admission-to-completion latency against the live
//!   modeled state (scheduler projection, admitted backlog, receptor-cache
//!   warmth, a continuously calibrated cost model) and returns a typed
//!   [`AdmissionVerdict`]: admitted, reprioritized (bulk → interactive),
//!   degraded (fewer rotations/conformations under a
//!   [`ftmap_core::DegradePolicy`]), or rejected with a **modeled**
//!   retry-after hint. [`BatchMappingService::submit`] blocks while the queue
//!   is full (backpressure); [`BatchMappingService::try_submit`] rejects
//!   instead (load shedding).
//! * **Batching** ([`batcher`]) — FIFO-fair grouping of jobs that share a
//!   receptor, with **latency classes** on top: interactive jobs form batches
//!   ahead of bulk scans (aging-bounded, so bulk never starves), and batches
//!   are class-homogeneous so each carries one scheduler priority. Two
//!   fairness gates bound hot spots at batch formation
//!   ([`config::AdmissionConfig`]): per-receptor in-flight caps and weighted
//!   per-tenant quotas.
//! * **Execution** ([`service`]) — by default the **pipelined dispatcher**:
//!   batches flow through a persistent [`gpu_sim::sched::PhasePipeline`]
//!   whose phase-tagged items (dock → minimize, per probe) let batch N+1's
//!   docking overlap batch N's minimization, and let interactive batches
//!   overtake bulk work at item boundaries. The two-phase-barrier
//!   [`gpu_sim::sched::ShardQueue`] path remains as
//!   [`service::DispatchMode::Barrier`]. Either way the per-device
//!   **receptor-grid residency cache** ([`gpu_sim::ResidencyCache`]) makes
//!   every shard after the first borrow the uploaded grids for zero transfer
//!   bytes.
//! * **Completion** ([`job`]) — [`JobHandle`]s resolve asynchronously to
//!   deterministic per-job [`JobReport`]s: a job's consensus sites depend only
//!   on its own request, never on arrival order, class or batch-mates. The
//!   attached [`BatchSummary`] carries the batch's modeled span, latency,
//!   phase-overlap savings and batch-scoped transfer seconds.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod admission;
pub mod batcher;
pub mod config;
pub mod job;
pub mod queue;
pub mod request;
pub mod service;

pub use admission::{AdmissionVerdict, CostModel, LatencyEstimate, RejectReason};
pub use batcher::{next_batch_prioritized, Batchable, LatencyClass};
pub use config::{
    AdmissionConfig, BatchConfig, DispatchMode, QueueConfig, ServeConfig, TenantQuota,
};
pub use job::{BatchSummary, JobHandle, JobId, JobReport, JobStatus};
pub use queue::{JobQueue, SubmitError};
pub use request::MappingRequest;
pub use service::{BatchMappingService, ClassLatency, Observability, ServeStats, ServiceBuilder};
