//! Chrome trace-event (Perfetto) JSON export.
//!
//! Renders a resolved event list as the classic `{"traceEvents": [...]}`
//! document Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly. The modeled virtual timeline maps 1 modeled second → 1e6 trace
//! microseconds. Track layout:
//!
//! * **pid 1 "devices"** — one thread per pooled device (`tid` = pool index):
//!   item spans with their anchored kernel/transfer/cache children;
//! * **pid 2 "serve"** — `tid 0` is the admission queue (admit/resolve
//!   instants plus a `queue_depth` counter series); each batch gets its own
//!   `tid` (`100 + seq`) carrying submit→start→complete;
//!
//! Span events use phase `"X"` (complete events), instants `"i"`, the queue
//! depth counter `"C"`, and track names are declared with `"M"` metadata
//! events — the full set of phases the `trace_check` schema validator
//! accepts.

use crate::event::{Tags, TraceEvent, Track};
use crate::json::{escape, number};
use std::collections::BTreeSet;

/// pid for the per-device tracks.
const PID_DEVICES: u64 = 1;
/// pid for the serve-layer tracks (queue + batches).
const PID_SERVE: u64 = 2;
/// tid of the admission-queue track within [`PID_SERVE`].
const TID_QUEUE: u64 = 0;
/// Batch `seq` maps to tid `BATCH_TID_BASE + seq`, keeping batch lanes away
/// from the queue lane.
const BATCH_TID_BASE: u64 = 100;

fn track_ids(track: Track) -> (u64, u64) {
    match track {
        Track::Device(index) => (PID_DEVICES, index as u64),
        Track::Queue => (PID_SERVE, TID_QUEUE),
        Track::Batch(seq) => (PID_SERVE, BATCH_TID_BASE + seq),
    }
}

fn track_name(track: Track) -> String {
    match track {
        Track::Device(index) => format!("device {index}"),
        Track::Queue => "admission queue".to_string(),
        Track::Batch(seq) => format!("batch {seq}"),
    }
}

/// Modeled seconds → trace microseconds.
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

fn args_json(tags: &Tags) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(device) = tags.device {
        parts.push(format!("\"device\": {device}"));
    }
    if let Some(seq) = tags.batch_seq {
        parts.push(format!("\"batch_seq\": {seq}"));
    }
    if let Some(tenant) = &tags.tenant {
        parts.push(format!("\"tenant\": \"{}\"", escape(tenant)));
    }
    if let Some(class) = tags.class {
        parts.push(format!("\"class\": \"{}\"", escape(class)));
    }
    if let Some(probe) = tags.probe {
        parts.push(format!("\"probe\": {probe}"));
    }
    if let Some((start, end)) = tags.pose_range {
        parts.push(format!("\"pose_start\": {start}"));
        parts.push(format!("\"pose_end\": {end}"));
    }
    for (key, value) in &tags.nums {
        parts.push(format!("\"{}\": {}", escape(key), number(*value)));
    }
    format!("{{{}}}", parts.join(", "))
}

fn event_json(event: &TraceEvent) -> String {
    let (pid, tid) = track_ids(event.track);
    let ts = number(us(event.start_s));
    let name = escape(&event.name);
    let cat = event.cat.as_str();
    let args = args_json(&event.tags);
    // The serve layer records queue depth as instants named "queue_depth"
    // carrying a "depth" num; render those as counter ("C") samples so
    // Perfetto draws the depth as a step chart.
    if event.track == Track::Queue && event.name == "queue_depth" {
        let depth =
            event.tags.nums.iter().find(|(k, _)| *k == "depth").map(|(_, v)| *v).unwrap_or(0.0);
        return format!(
            "{{\"name\": \"queue_depth\", \"cat\": \"{cat}\", \"ph\": \"C\", \"ts\": {ts}, \
             \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"depth\": {}}}}}",
            number(depth)
        );
    }
    if event.is_instant() {
        format!(
            "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {ts}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {args}}}"
        )
    } else {
        format!(
            "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"X\", \"ts\": {ts}, \
             \"dur\": {}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {args}}}",
            number(us(event.dur_s))
        )
    }
}

fn metadata_json(tracks: &BTreeSet<Track>) -> Vec<String> {
    let mut out = vec![
        format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID_DEVICES}, \"tid\": 0, \
             \"args\": {{\"name\": \"devices\"}}}}"
        ),
        format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID_SERVE}, \"tid\": 0, \
             \"args\": {{\"name\": \"serve\"}}}}"
        ),
    ];
    for &track in tracks {
        let (pid, tid) = track_ids(track);
        out.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(&track_name(track))
        ));
    }
    out
}

/// Renders **resolved** events (see [`crate::Recorder::events`]) as a Chrome
/// trace-event JSON document. The result loads directly in Perfetto; modeled
/// seconds appear as microseconds on its timeline.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let tracks: BTreeSet<Track> = events.iter().map(|e| e.track).collect();
    let mut lines = metadata_json(&tracks);
    lines.extend(events.iter().map(event_json));
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    out.push_str(&lines.iter().map(|l| format!("    {l}")).collect::<Vec<_>>().join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Tags, TraceEvent, Track};
    use crate::json::{parse, JsonValue};

    #[test]
    fn export_parses_back_with_expected_shape() {
        let events = vec![
            TraceEvent::span(Track::Device(0), "dock", Category::Sched, 0.001, 0.002)
                .with_tags(Tags::device(0).with_num("kernel_s", 0.0015)),
            TraceEvent::instant(Track::Queue, "admit", Category::Serve, 0.0),
            TraceEvent::instant(Track::Queue, "queue_depth", Category::Serve, 0.0)
                .with_tags(Tags::default().with_num("depth", 3.0)),
            TraceEvent::instant(Track::Batch(2), "submit", Category::Batch, 0.0005),
        ];
        let doc = export_chrome_trace(&events);
        let parsed = parse(&doc).expect("exporter output is valid JSON");
        let trace_events =
            parsed.get("traceEvents").and_then(JsonValue::as_array).expect("traceEvents array");
        // 4 events + 2 process_name + 3 thread_name metadata rows.
        assert_eq!(trace_events.len(), 9);
        let phases: Vec<&str> =
            trace_events.iter().filter_map(|e| e.get("ph").and_then(JsonValue::as_str)).collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 5);
        assert!(phases.contains(&"X") && phases.contains(&"i") && phases.contains(&"C"));
        let span = trace_events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("dock"))
            .expect("dock span present");
        assert_eq!(span.get("ts").and_then(JsonValue::as_f64), Some(1000.0));
        assert_eq!(span.get("dur").and_then(JsonValue::as_f64), Some(2000.0));
        assert_eq!(
            span.get("args").and_then(|a| a.get("kernel_s")).and_then(JsonValue::as_f64),
            Some(0.0015)
        );
    }
}
