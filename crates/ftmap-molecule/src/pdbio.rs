//! Minimal PDB-like text I/O.
//!
//! FTMap's inputs and outputs are PDB files. For the reproduction we only need enough
//! of the format to (a) dump generated structures and docked poses so they can be
//! inspected with standard tools, and (b) reload them in examples. Only `ATOM`/`HETATM`
//! records are read; everything else is ignored.

use crate::atom::{Atom, AtomKind, Element};
use crate::forcefield::ForceField;
use ftmap_math::Vec3;
use std::fmt::Write as _;

/// Errors returned by the PDB reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdbError {
    /// A line starting with ATOM/HETATM was too short to contain coordinates.
    TruncatedRecord {
        /// 1-based line number of the offending record.
        line: usize,
    },
    /// Coordinates could not be parsed as numbers.
    BadCoordinates {
        /// 1-based line number of the offending record.
        line: usize,
    },
}

impl std::fmt::Display for PdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdbError::TruncatedRecord { line } => write!(f, "truncated ATOM record at line {line}"),
            PdbError::BadCoordinates { line } => {
                write!(f, "unparseable coordinates at line {line}")
            }
        }
    }
}

impl std::error::Error for PdbError {}

/// Serializes atoms to PDB-style `ATOM`/`HETATM` records. Probe atoms are written as
/// `HETATM` with residue name `PRB`, protein atoms as `ATOM` with residue name `SYN`.
pub fn to_pdb_string(atoms: &[Atom]) -> String {
    let mut out = String::with_capacity(atoms.len() * 81);
    for (serial, atom) in atoms.iter().enumerate() {
        let record = if atom.is_probe { "HETATM" } else { "ATOM  " };
        let resname = if atom.is_probe { "PRB" } else { "SYN" };
        let chain = if atom.is_probe { 'B' } else { 'A' };
        let symbol = atom.element().symbol();
        // Columns follow the PDB fixed-width convention closely enough for viewers.
        let _ = writeln!(
            out,
            "{record}{:>5} {:<4} {resname} {chain}{:>4}    {:>8.3}{:>8.3}{:>8.3}{:>6.2}{:>6.2}          {:>2}",
            (serial + 1) % 100000,
            symbol,
            (atom.id / 4 + 1) % 10000,
            atom.position.x,
            atom.position.y,
            atom.position.z,
            1.0,
            0.0,
            symbol,
        );
    }
    out.push_str("END\n");
    out
}

/// Parses PDB text, returning atoms with force-field parameters resolved by element:
/// carbons become [`AtomKind::AliphaticC`], nitrogens [`AtomKind::PolarN`], oxygens
/// [`AtomKind::PolarO`], sulfurs [`AtomKind::Sulfur`], hydrogens [`AtomKind::ApolarH`].
/// `HETATM` records are marked as probe atoms.
pub fn from_pdb_string(text: &str, ff: &ForceField) -> Result<Vec<Atom>, PdbError> {
    let mut atoms = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let is_atom = line.starts_with("ATOM");
        let is_het = line.starts_with("HETATM");
        if !is_atom && !is_het {
            continue;
        }
        if line.len() < 54 {
            return Err(PdbError::TruncatedRecord { line: line_no + 1 });
        }
        let parse = |s: &str| {
            s.trim().parse::<f64>().map_err(|_| PdbError::BadCoordinates { line: line_no + 1 })
        };
        let x = parse(&line[30..38])?;
        let y = parse(&line[38..46])?;
        let z = parse(&line[46..54])?;
        // Element: prefer columns 76-78, fall back to the atom-name field.
        let elem_field = if line.len() >= 78 { &line[76..78] } else { &line[12..14] };
        let element = Element::from_symbol(elem_field.trim())
            .or_else(|| {
                Element::from_symbol(&line[12..14].trim().chars().take(1).collect::<String>())
            })
            .unwrap_or(Element::C);
        let kind = match element {
            Element::C => AtomKind::AliphaticC,
            Element::N => AtomKind::PolarN,
            Element::O => AtomKind::PolarO,
            Element::S => AtomKind::Sulfur,
            Element::H => AtomKind::ApolarH,
        };
        let id = atoms.len();
        atoms.push(ff.make_atom(id, kind, Vec3::new(x, y, z), is_het));
    }
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Probe, ProbeType};
    use crate::protein::{ProteinSpec, SyntheticProtein};

    #[test]
    fn round_trip_preserves_positions_and_flags() {
        let ff = ForceField::charmm_like();
        let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
        let probe = Probe::new(ProbeType::Ethanol, &ff);
        let mut atoms = protein.atoms.clone();
        atoms.extend(probe.atoms.iter().copied());

        let text = to_pdb_string(&atoms);
        let parsed = from_pdb_string(&text, &ff).unwrap();
        assert_eq!(parsed.len(), atoms.len());
        for (orig, read) in atoms.iter().zip(&parsed) {
            assert!((orig.position.x - read.position.x).abs() < 1e-3);
            assert!((orig.position.y - read.position.y).abs() < 1e-3);
            assert!((orig.position.z - read.position.z).abs() < 1e-3);
            assert_eq!(orig.is_probe, read.is_probe);
            assert_eq!(orig.element(), read.element());
        }
    }

    #[test]
    fn output_ends_with_end_record() {
        let ff = ForceField::charmm_like();
        let probe = Probe::new(ProbeType::Benzene, &ff);
        let text = to_pdb_string(&probe.atoms);
        assert!(text.ends_with("END\n"));
        assert_eq!(text.lines().filter(|l| l.starts_with("HETATM")).count(), 6);
    }

    #[test]
    fn ignores_non_atom_records() {
        let ff = ForceField::charmm_like();
        let text = "HEADER    TEST\nREMARK 1\nATOM      1  C   SYN A   1       1.000   2.000   3.000  1.00  0.00           C\nTER\nEND\n";
        let atoms = from_pdb_string(text, &ff).unwrap();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].position, Vec3::new(1.0, 2.0, 3.0));
        assert!(!atoms[0].is_probe);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let ff = ForceField::charmm_like();
        let text = "ATOM      1  C   SYN A   1       1.000";
        assert_eq!(from_pdb_string(text, &ff), Err(PdbError::TruncatedRecord { line: 1 }));
    }

    #[test]
    fn bad_coordinates_are_an_error() {
        let ff = ForceField::charmm_like();
        let text = "ATOM      1  C   SYN A   1       x.xxx   2.000   3.000  1.00  0.00           C";
        assert_eq!(from_pdb_string(text, &ff), Err(PdbError::BadCoordinates { line: 1 }));
    }

    #[test]
    fn error_display_mentions_line() {
        let e = PdbError::TruncatedRecord { line: 7 };
        assert!(e.to_string().contains("line 7"));
        let e = PdbError::BadCoordinates { line: 3 };
        assert!(e.to_string().contains("line 3"));
    }
}
