// Fixture: a file that *names* every banned construct in comments, strings,
// raw strings, byte strings and char literals — and must produce zero
// diagnostics even under the strictest path (a scheduler hot path, which
// every rule applies to). This is the lexer's acid test.

//! Instant::now(), SystemTime, .unwrap(), .expect("x"), panic!("x"),
//! unreachable!(), LaunchConfig::new(1, 2), device.launch(&c, &k),
//! record_transfer(Transfer::upload(8)), #[allow(dead_code)]

/* Block comment: Instant::now() and state.lock().unwrap() and
   /* nested: panic!("still a comment") */ device.run_serial(&c, &k) */

fn strings_only() -> usize {
    let a = "Instant::now()";
    let b = "state.lock().unwrap()";
    let c = "panic!(\"escaped \\\" quote keeps the string open\")";
    let d = r#"record_transfer(Transfer::upload(8)) and "quoted" inside raw"#;
    let e = r##"raw with "# inside: LaunchConfig::new(1, 2)"##;
    let f = b"byte string: SystemTime::now()";
    let g = br#"raw bytes: device.launch(&c, &k)"#;
    let h = '\''; // escaped-quote char literal must not open a string
    let lifetime_test: &'static str = "lifetimes are not char literals";
    a.len() + b.len() + c.len() + d.len() + e.len() + f.len() + g.len() + lifetime_test.len()
        + (h as usize)
}

fn suppressed_sites(state: &std::sync::Mutex<u64>) -> u64 {
    // lint-allow(no-panic-in-workers): fixture-sanctioned loud failure, the
    // justification spans two comment lines directly above the call.
    let value = state.lock().expect("poisoned");
    *value
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_regions_are_exempt_from_every_rule() {
        let t0 = Instant::now();
        let v: Option<u32> = Some(1);
        v.unwrap();
        let _ = t0.elapsed();
    }
}
