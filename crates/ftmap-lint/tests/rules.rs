//! Per-rule fixture tests: every rule catches its seeded violations, stays
//! quiet on sanctioned shapes, honors suppressions and test regions — and
//! the workspace itself lints clean.
//!
//! Fixtures live in `tests/fixtures/` (never compiled; the directory is
//! also excluded from workspace scans). Violation lines are marked with a
//! trailing `… violation …` comment, so expectations are derived from the
//! fixture text itself instead of hard-coded line numbers.

use ftmap_lint::{lint_source, lint_workspace, Diagnostic};

const NO_WALL_CLOCK: &str = include_str!("fixtures/no_wall_clock.rs");
const LAUNCH_LAYER: &str = include_str!("fixtures/launch_layer.rs");
const TRANSFERS: &str = include_str!("fixtures/transfers.rs");
const PANICS: &str = include_str!("fixtures/panics.rs");
const ALLOWS: &str = include_str!("fixtures/allows.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");

/// A path every path-scoped rule applies to.
const HOT_PATH: &str = "crates/gpu-sim/src/sched/fixture.rs";
/// A modeled-code path outside every allowlist.
const MODELED_PATH: &str = "crates/ftmap-core/src/fixture.rs";

/// Lines whose trailing marker comment declares them violations. `two
/// violations` marks a line expected to fire twice.
fn marked_lines(fixture: &str) -> Vec<usize> {
    let mut lines = Vec::new();
    for (idx, line) in fixture.lines().enumerate() {
        if let Some(comment) = line.split("//").nth(1) {
            // The marker is the colon form (`: violation`, `: two
            // violations`) so prose mentioning "violations" in fixture
            // headers does not count.
            if comment.contains(": violation") || comment.contains(": two violations") {
                lines.push(idx + 1);
                if comment.contains("two violations") {
                    lines.push(idx + 1);
                }
            }
        }
    }
    lines
}

fn diag_lines(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .inspect(|d| assert_eq!(d.rule, rule, "unexpected rule fired: {d}"))
        .map(|d| d.line)
        .collect()
}

#[test]
fn no_wall_clock_catches_seeded_violations() {
    let diags = lint_source(MODELED_PATH, NO_WALL_CLOCK);
    assert_eq!(diag_lines(&diags, "no-wall-clock"), marked_lines(NO_WALL_CLOCK));
    assert!(diags.iter().all(|d| d.message.contains("wall_timed")));
}

#[test]
fn no_wall_clock_allowlists_profiling_layer_and_benches() {
    for path in [
        "crates/gpu-sim/src/timing.rs",
        "crates/gpu-sim/src/device.rs",
        "crates/ftmap-bench/benches/fig_fixture.rs",
    ] {
        assert!(
            lint_source(path, NO_WALL_CLOCK).is_empty(),
            "{path} should be allowlisted for wall-clock reads"
        );
    }
}

#[test]
fn launch_layer_only_catches_seeded_violations() {
    let diags = lint_source("crates/piper-dock/src/fixture.rs", LAUNCH_LAYER);
    assert_eq!(diag_lines(&diags, "launch-layer-only"), marked_lines(LAUNCH_LAYER));
}

#[test]
fn launch_layer_raw_api_is_free_inside_gpu_sim() {
    assert!(lint_source("crates/gpu-sim/src/launch.rs", LAUNCH_LAYER).is_empty());
}

#[test]
fn accounted_transfers_catches_seeded_violations() {
    let diags = lint_source(MODELED_PATH, TRANSFERS);
    assert_eq!(diag_lines(&diags, "accounted-transfers"), marked_lines(TRANSFERS));
}

#[test]
fn accounted_transfers_is_free_inside_gpu_sim() {
    assert!(lint_source("crates/gpu-sim/src/memory.rs", TRANSFERS).is_empty());
}

#[test]
fn no_panic_in_workers_catches_seeded_violations() {
    let diags = lint_source(HOT_PATH, PANICS);
    assert_eq!(diag_lines(&diags, "no-panic-in-workers"), marked_lines(PANICS));
    let serve = lint_source("crates/ftmap-serve/src/fixture.rs", PANICS);
    assert_eq!(serve.len(), diags.len(), "serve hot paths use the same rule scope");
}

#[test]
fn no_panic_rule_only_covers_hot_paths() {
    assert!(
        lint_source(MODELED_PATH, PANICS).is_empty(),
        "panic shapes outside sched/serve are not this rule's business"
    );
}

#[test]
fn justified_allows_catches_seeded_violations() {
    let diags = lint_source(MODELED_PATH, ALLOWS);
    assert_eq!(diag_lines(&diags, "justified-allows"), marked_lines(ALLOWS));
}

#[test]
fn clean_fixture_is_clean_under_the_strictest_path() {
    let diags = lint_source(HOT_PATH, CLEAN);
    assert!(diags.is_empty(), "clean fixture produced: {diags:?}");
}

#[test]
fn every_fixture_rule_pairing_is_exclusive() {
    // A fixture seeded for one rule must not trip others under its test
    // path (guards against rules bleeding into each other's token shapes).
    for (fixture, path) in [
        (NO_WALL_CLOCK, MODELED_PATH),
        (TRANSFERS, MODELED_PATH),
        (ALLOWS, MODELED_PATH),
        (PANICS, HOT_PATH),
    ] {
        let rules: std::collections::BTreeSet<&str> =
            lint_source(path, fixture).iter().map(|d| d.rule).collect();
        assert!(rules.len() <= 1, "fixture tripped multiple rules: {rules:?}");
    }
}

#[test]
fn workspace_lints_clean() {
    // The same invocation CI gates on: the shipped tree has zero violations.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crate lives at crates/ftmap-lint")
        .to_path_buf();
    let (diags, files) = lint_workspace(&root).expect("workspace scan");
    assert!(files > 50, "scan found only {files} files — wrong root?");
    assert!(diags.is_empty(), "workspace violations:\n{}", {
        let mut s = String::new();
        for d in &diags {
            s.push_str(&format!("{d}\n"));
        }
        s
    });
}

#[test]
fn diagnostics_render_machine_readable() {
    let diags = lint_source(MODELED_PATH, "use std::time::Instant;\n");
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/ftmap-core/src/fixture.rs:1: no-wall-clock: "),
        "got: {rendered}"
    );
}
