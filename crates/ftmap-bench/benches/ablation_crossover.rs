//! §III ablation: direct vs FFT correlation as the ligand footprint grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftmap_bench::DockingWorkload;
use ftmap_math::Rotation;
use piper_dock::direct::{DirectCorrelationEngine, SparseLigand};
use piper_dock::fft_engine::FftCorrelationEngine;
use piper_dock::grids::{GridSpec, LigandGrids, ReceptorGrids};
use std::time::Duration;

fn bench_crossover(c: &mut Criterion) {
    let w = DockingWorkload::standard();
    let spec = GridSpec::centered_on(&w.protein.atoms, ftmap_bench::BENCH_GRID_DIM, 1.5);
    let receptor = ReceptorGrids::build(&w.protein.atoms, spec, 4);
    let direct = DirectCorrelationEngine::new(&receptor);
    let fft = FftCorrelationEngine::new(&receptor);

    let mut group = c.benchmark_group("ablation_correlation_crossover");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    for scale in [1.0f64, 3.0] {
        let mut probe = w.probe.clone();
        for atom in &mut probe.atoms {
            atom.position *= scale;
        }
        let ligand = LigandGrids::build(&probe.atoms, &Rotation::identity(), 1.5, 4);
        let sparse = SparseLigand::from_grids(&ligand);
        group.bench_with_input(
            BenchmarkId::new("direct", format!("footprint_{}", ligand.dim)),
            &sparse,
            |b, sparse| b.iter(|| std::hint::black_box(direct.correlate_rotation_serial(sparse))),
        );
        group.bench_with_input(
            BenchmarkId::new("fft", format!("footprint_{}", ligand.dim)),
            &ligand,
            |b, ligand| b.iter(|| std::hint::black_box(fft.correlate_rotation(ligand))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
