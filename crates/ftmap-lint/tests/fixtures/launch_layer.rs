// Fixture: seeded `launch-layer-only` violations (raw device API outside
// gpu-sim). Never compiled.
use gpu_sim::{Device, LaunchConfig}; // line 4: violation (LaunchConfig)

fn raw_launch(device: &Device, kernel: &impl gpu_sim::BlockKernel) {
    let config = LaunchConfig::new(64, 128); // line 7: violation (LaunchConfig)
    let stats = device.launch(&config, kernel); // line 8: violation (.launch)
    let serial = device.run_serial(&config, kernel); // line 9: violation (.run_serial)
}

fn sanctioned(device: &std::sync::Arc<Device>, kernel: &impl gpu_sim::BlockKernel) {
    // The builder is the sanctioned path — no violation.
    let stats = gpu_sim::KernelLaunch::on(device).grid(64).threads(128).run(kernel);
    // A rocket launch in prose, a launch_count variable and "launch(" in a
    // string are all fine:
    let launch_count = 3;
    let s = "device.launch(config)";
    // lint-allow(launch-layer-only): fixture shows a justified raw launch.
    let raw = device.launch(&make_config(), kernel); // line 20: suppressed
}
