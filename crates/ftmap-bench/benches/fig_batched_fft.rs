//! Batched FFT docking figure: what receptor-transform residency plus the
//! fused top-K epilogue buys over the per-rotation FFT path.
//!
//! Three claims, each gated:
//!
//! * **Warm-receptor speedup** — with the receptor's forward transforms and
//!   FFT plan resident (derived residency hit), the batched engine's modeled
//!   per-rotation time must stay ≥ 2× below the per-rotation
//!   `FftCorrelationEngine` path, which recomputes the receptor transforms
//!   every run and correlates one rotation per pass.
//! * **Download reduction** — the fused epilogue scores and top-K-filters on
//!   the device before any download, so only retained poses are
//!   transfer-accounted. Bytes downloaded per rotation must be ≥ 10× below
//!   the full `N³` score grid an unfused path would ship across the link.
//! * **Bit-identity** — swapping the batched engine into a
//!   `PipelineMode::Accelerated` pipeline changes modeled times only: pose
//!   selections, pose centres and consensus sites are reproduced exactly.
//!
//! Results are written to `BENCH_BATCHED_FFT.json` at the workspace root
//! (per-rotation modeled times comparable with the `BENCH_BASELINE.json`
//! Table-1 rows).
//!
//! Run with: `cargo bench -p ftmap-bench --bench fig_batched_fft`
//! (set `FTMAP_BATCHED_FFT_ROTATIONS=8` for a reduced scale).

use ftmap_bench::{DockingWorkload, BENCH_GRID_DIM};
use ftmap_core::{FtMapConfig, FtMapPipeline, MappingResult, PipelineMode};
use ftmap_molecule::{ForceField, ProbeLibrary, ProbeType, ProteinSpec, SyntheticProtein};
use piper_dock::docking::DEFAULT_FFT_BATCH;
use piper_dock::{Docking, DockingEngineKind, DockingRun, Pose};
use std::time::Instant;

/// The gate: minimum warm-receptor batched speedup over the per-rotation FFT
/// path (modeled per-rotation time).
const MIN_WARM_SPEEDUP: f64 = 2.0;
/// The gate: minimum reduction in bytes downloaded per rotation versus
/// shipping the full `N³` score grid.
const MIN_DOWNLOAD_REDUCTION: f64 = 10.0;

struct Results {
    rotations: usize,
    fft_per_rotation_ms: f64,
    batched_cold_per_rotation_ms: f64,
    batched_warm_per_rotation_ms: f64,
    warm_speedup: f64,
    unfused_bytes_per_rotation: usize,
    fused_bytes_per_rotation: f64,
    download_reduction: f64,
    wall_ms: f64,
}

/// Per-rotation modeled milliseconds of a docking run.
fn per_rotation_ms(run: &DockingRun) -> f64 {
    1e3 * run.modeled.total() / run.n_rotations as f64
}

fn assert_poses_bit_identical(a: &[Pose], b: &[Pose], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: pose counts diverged");
    for (pa, pb) in a.iter().zip(b) {
        assert_eq!(pa.rotation_index, pb.rotation_index, "{label}: rotation diverged");
        assert_eq!(pa.translation, pb.translation, "{label}: translation diverged");
        assert_eq!(
            pa.score.to_bits(),
            pb.score.to_bits(),
            "{label}: score bits diverged ({} vs {})",
            pa.score,
            pb.score
        );
    }
}

/// The acceptance check: a `PipelineMode::Accelerated` pipeline with the
/// batched engine swapped in reproduces the stock accelerated pipeline's
/// mapping exactly — same pose centres, same consensus sites.
fn assert_pipeline_bit_identical() {
    let ff = ForceField::charmm_like();
    let protein = SyntheticProtein::generate(&ProteinSpec::small_test(), &ff);
    let library = ProbeLibrary::subset(&ff, &[ProbeType::Ethanol, ProbeType::Acetone]);
    let run = |engine: Option<DockingEngineKind>| -> MappingResult {
        let mut config = FtMapConfig::small_test(PipelineMode::Accelerated);
        if let Some(engine) = engine {
            config.docking.engine = engine;
        }
        FtMapPipeline::new(protein.clone(), ff.clone(), config).map(&library)
    };
    let stock = run(None);
    let batched = run(Some(DockingEngineKind::BatchedFft { batch: DEFAULT_FFT_BATCH }));
    assert_eq!(stock.conformations_minimized, batched.conformations_minimized);
    assert_eq!(stock.pose_centers.len(), batched.pose_centers.len());
    for ((pa, ca), (pb, cb)) in stock.pose_centers.iter().zip(&batched.pose_centers) {
        assert_eq!(pa, pb, "pipeline probe order diverged");
        assert!(
            ca.x == cb.x && ca.y == cb.y && ca.z == cb.z,
            "pose centre moved under the batched engine: {ca:?} vs {cb:?}"
        );
    }
    assert_eq!(stock.sites.len(), batched.sites.len(), "site counts diverged");
    for (a, b) in stock.sites.iter().zip(&batched.sites) {
        assert_eq!(a.rank, b.rank);
        assert!(
            a.cluster.center.distance(b.cluster.center) == 0.0,
            "consensus site moved under the batched engine"
        );
    }
}

fn main() {
    let start = Instant::now();
    let rotations: usize = std::env::var("FTMAP_BATCHED_FFT_ROTATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(ftmap_bench::BENCH_ROTATIONS);
    let workload = DockingWorkload::standard();
    let config = |engine: DockingEngineKind| {
        let mut config = workload.config(engine);
        config.n_rotations = rotations;
        config
    };

    // The comparator: per-rotation FFT correlation on the host model, receptor
    // transforms recomputed by every run.
    let fft_docking = Docking::new(&workload.protein.atoms, config(DockingEngineKind::FftSerial));
    let fft_run = fft_docking.run(&workload.probe);

    // The batched engine on one modeled device. Run 1 is cold: the raw grids
    // upload at construction and the first run computes + caches the receptor
    // transforms (derived residency miss). Run 2 is warm: raw hit + derived
    // hit, so docking skips straight to the ligand-side transforms.
    let batched_docking = Docking::new(
        &workload.protein.atoms,
        config(DockingEngineKind::BatchedFft { batch: DEFAULT_FFT_BATCH }),
    );
    let cold_run = batched_docking.run(&workload.probe);
    let warm_run = batched_docking.run(&workload.probe);
    assert_poses_bit_identical(&fft_run.poses, &cold_run.poses, "cold batched vs per-rotation");
    assert_poses_bit_identical(&cold_run.poses, &warm_run.poses, "warm batched vs cold");

    // The download ledger: an unfused path ships each rotation's full N³
    // score grid; the fused epilogue ships only the retained poses (this is
    // exactly what `BatchedFftEngine::dock_batch` transfer-accounts — pinned
    // by `download_carries_only_retained_poses` in piper-dock).
    let unfused_bytes_per_rotation =
        BENCH_GRID_DIM.pow(3) * std::mem::size_of::<ftmap_math::Real>();
    let fused_bytes_per_rotation =
        (warm_run.poses.len() * std::mem::size_of::<Pose>()) as f64 / rotations as f64;

    let fft_ms = per_rotation_ms(&fft_run);
    let cold_ms = per_rotation_ms(&cold_run);
    let warm_ms = per_rotation_ms(&warm_run);
    let results = Results {
        rotations,
        fft_per_rotation_ms: fft_ms,
        batched_cold_per_rotation_ms: cold_ms,
        batched_warm_per_rotation_ms: warm_ms,
        warm_speedup: fft_ms / warm_ms.max(1e-12),
        unfused_bytes_per_rotation,
        fused_bytes_per_rotation,
        download_reduction: unfused_bytes_per_rotation as f64 / fused_bytes_per_rotation.max(1e-12),
        wall_ms: 1e3 * start.elapsed().as_secs_f64(),
    };

    assert_pipeline_bit_identical();

    println!(
        "fig_batched_fft: {rotations} rotations, {BENCH_GRID_DIM}^3 grid, batch {DEFAULT_FFT_BATCH}\n"
    );
    println!("{:>34}{:>16}", "path", "per-rot ms");
    println!("{:>34}{:>16.4}", "per-rotation FFT (host model)", results.fft_per_rotation_ms);
    println!("{:>34}{:>16.4}", "batched FFT, cold receptor", results.batched_cold_per_rotation_ms);
    println!("{:>34}{:>16.4}", "batched FFT, warm receptor", results.batched_warm_per_rotation_ms);
    println!(
        "\nwarm speedup {:.2}x; download {} B -> {:.1} B per rotation ({:.0}x reduction)",
        results.warm_speedup,
        results.unfused_bytes_per_rotation,
        results.fused_bytes_per_rotation,
        results.download_reduction
    );

    let json = format_json(&results);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BATCHED_FFT.json");
    std::fs::write(path, json).expect("write BENCH_BATCHED_FFT.json");
    println!("\nwrote {path}");

    assert!(
        results.warm_speedup >= MIN_WARM_SPEEDUP,
        "REGRESSION: warm-receptor batched speedup {:.2}x fell below the \
         {MIN_WARM_SPEEDUP}x gate",
        results.warm_speedup
    );
    assert!(
        results.download_reduction >= MIN_DOWNLOAD_REDUCTION,
        "REGRESSION: download reduction {:.1}x fell below the \
         {MIN_DOWNLOAD_REDUCTION}x gate",
        results.download_reduction
    );
    assert!(
        results.batched_warm_per_rotation_ms <= results.batched_cold_per_rotation_ms,
        "REGRESSION: warm run slower than cold run — transform residency is not \
         amortizing ({:.4} vs {:.4} ms)",
        results.batched_warm_per_rotation_ms,
        results.batched_cold_per_rotation_ms
    );
    println!(
        "gate ok: warm speedup {:.2}x >= {MIN_WARM_SPEEDUP}x, download reduction \
         {:.0}x >= {MIN_DOWNLOAD_REDUCTION}x, pipeline bit-identical",
        results.warm_speedup, results.download_reduction
    );
}

fn format_json(r: &Results) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"figure\": \"batched FFT docking vs per-rotation FFT path\",\n");
    out.push_str(
        "  \"model\": \"receptor transforms + plan as derived residency payloads; one \
         forward/multiply/inverse launch trio per rotation batch; fused on-device top-K \
         epilogue downloads retained poses only\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{ \"grid_dim\": {BENCH_GRID_DIM}, \"rotations\": {}, \
         \"fft_batch\": {DEFAULT_FFT_BATCH} }},\n",
        r.rotations
    ));
    out.push_str(&format!(
        "  \"per_rotation_modeled_ms\": {{ \"fft_per_rotation\": {:.4}, \
         \"batched_cold\": {:.4}, \"batched_warm\": {:.4} }},\n",
        r.fft_per_rotation_ms, r.batched_cold_per_rotation_ms, r.batched_warm_per_rotation_ms
    ));
    out.push_str(&format!(
        "  \"download_bytes_per_rotation\": {{ \"unfused_full_grid\": {}, \
         \"fused_top_k\": {:.1} }},\n",
        r.unfused_bytes_per_rotation, r.fused_bytes_per_rotation
    ));
    out.push_str(&format!(
        "  \"warm_speedup\": {{ \"gate\": {MIN_WARM_SPEEDUP:.1}, \"measured\": {:.4} }},\n",
        r.warm_speedup
    ));
    out.push_str(&format!(
        "  \"download_reduction\": {{ \"gate\": {MIN_DOWNLOAD_REDUCTION:.1}, \
         \"measured\": {:.4} }},\n",
        r.download_reduction
    ));
    out.push_str("  \"bit_identical_to_accelerated_pipeline\": true,\n");
    out.push_str(&format!("  \"wall_ms\": {:.1}\n", r.wall_ms));
    out.push_str("}\n");
    out
}
