//! # ftmap-serve
//!
//! The **asynchronous batch-mapping service**: the serving layer that turns
//! the one-shot mapping pipeline ([`ftmap_core::FtMapPipeline`]) into a
//! multi-tenant system fit for sustained traffic.
//!
//! The paper's workload is throughput-bound and embarrassingly parallel; the
//! GPU literature it builds on (van Meel et al., Barros et al.) gets sustained
//! device throughput from two moves: keep data **resident** on the device, and
//! feed the hardware a **continuous stream of batched work** instead of
//! cold-starting each request. This crate applies both at the request level:
//!
//! ```text
//!  clients ──► MappingRequest ──► bounded JobQueue ──► batcher ──► DevicePool
//!                  │                (backpressure)    (by receptor)   │
//!                  ▼                                                  ▼
//!              JobHandle ◄──────────── JobReport ◄──── per-job assembly
//! ```
//!
//! * **Admission** ([`queue`]) — a bounded queue: [`BatchMappingService::submit`]
//!   blocks under load (backpressure), [`BatchMappingService::try_submit`]
//!   refuses and hands the request back (load shedding).
//! * **Batching** ([`batcher`]) — FIFO-fair grouping of jobs that share a
//!   receptor, so their probe shards interleave on the pool and share one
//!   resident grid set per device.
//! * **Execution** ([`service`]) — one work-stealing
//!   [`gpu_sim::sched::ShardQueue`] execution per batch over the shared
//!   [`gpu_sim::sched::DevicePool`]; the per-device **receptor-grid residency
//!   cache** ([`gpu_sim::ResidencyCache`]) makes every shard after the first
//!   borrow the uploaded grids for zero transfer bytes.
//! * **Completion** ([`job`]) — [`JobHandle`]s resolve asynchronously to
//!   deterministic per-job [`JobReport`]s: a job's consensus sites depend only
//!   on its own request, never on arrival order or batch-mates.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batcher;
pub mod job;
pub mod queue;
pub mod request;
pub mod service;

pub use job::{BatchSummary, JobHandle, JobId, JobReport, JobStatus};
pub use queue::{JobQueue, SubmitError};
pub use request::MappingRequest;
pub use service::{BatchMappingService, ServeConfig, ServeStats};
