//! The stream abstraction: copy/compute overlap accounting for one device.

use crate::cost::overlapped_stream_time;
use crate::device::TransferSnapshot;
use crate::timing::{StreamOp, StreamStats};

/// An in-order sequence of upload → kernel → download work items on one
/// device, modeling a CUDA stream with asynchronous copy engines.
///
/// Consumers record one [`StreamOp`] per work item — either directly
/// ([`Stream::record`]) or from a pair of [`TransferSnapshot`]s taken around
/// the item's execution ([`Stream::record_between`]), which attributes exactly
/// the transfers the item caused. The stream then reports two totals:
///
/// * [`Stream::serialized_s`] — every stage back-to-back (what PR 1's
///   accounting would have summed: kernel time plus transfer time);
/// * [`Stream::overlapped_s`] — the three-stage pipeline makespan
///   ([`overlapped_stream_time`]), in which item `i+1`'s upload hides under
///   item `i`'s kernels.
///
/// Reporting `overlapped_s` instead of `kernel + transfer` sums is what keeps
/// overlapped transfer time from being double-counted in per-phase ledgers.
#[derive(Debug, Clone, Default)]
pub struct Stream {
    ops: Vec<StreamOp>,
}

impl Stream {
    /// An empty stream.
    pub fn new() -> Self {
        Stream::default()
    }

    /// Records one work item's stage durations.
    pub fn record(&mut self, op: StreamOp) {
        self.ops.push(op);
    }

    /// Records a work item from the device transfer snapshots taken before and
    /// after it ran, plus its modeled kernel seconds: the snapshot delta is
    /// the item's upload/download time, attributed to this item alone.
    pub fn record_between(
        &mut self,
        before: &TransferSnapshot,
        after: &TransferSnapshot,
        kernel_s: f64,
    ) {
        let delta = after.delta_since(before);
        self.record(StreamOp::new(delta.upload_s, kernel_s, delta.download_s));
    }

    /// Number of work items recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no work has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded work items, in issue order.
    pub fn ops(&self) -> &[StreamOp] {
        &self.ops
    }

    /// Total modeled seconds with no copy/compute overlap.
    pub fn serialized_s(&self) -> f64 {
        self.ops.iter().map(StreamOp::serialized_s).sum()
    }

    /// Pipeline makespan with copy/compute overlap.
    pub fn overlapped_s(&self) -> f64 {
        overlapped_stream_time(&self.ops)
    }

    /// Modeled transfer seconds hidden under kernel execution.
    pub fn savings_s(&self) -> f64 {
        (self.serialized_s() - self.overlapped_s()).max(0.0)
    }

    /// The stream's summary statistics.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            ops: self.ops.len(),
            upload_s: self.ops.iter().map(|o| o.upload_s).sum(),
            kernel_s: self.ops.iter().map(|o| o.kernel_s).sum(),
            download_s: self.ops.iter().map(|o| o.download_s).sum(),
            serialized_s: self.serialized_s(),
            overlapped_s: self.overlapped_s(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn empty_stream_is_free() {
        let stream = Stream::new();
        assert!(stream.is_empty());
        assert_eq!(stream.len(), 0);
        assert_eq!(stream.serialized_s(), 0.0);
        assert_eq!(stream.overlapped_s(), 0.0);
        assert_eq!(stream.savings_s(), 0.0);
    }

    #[test]
    fn single_item_has_no_overlap() {
        let mut stream = Stream::new();
        stream.record(StreamOp::new(1.0, 4.0, 2.0));
        assert!((stream.overlapped_s() - stream.serialized_s()).abs() < 1e-12);
        assert_eq!(stream.savings_s(), 0.0);
    }

    #[test]
    fn back_to_back_items_overlap_transfers_with_compute() {
        let mut stream = Stream::new();
        for _ in 0..3 {
            stream.record(StreamOp::new(1.0, 5.0, 1.0));
        }
        // Fill (1) + kernels (15) + drain (1): the middle items' transfers
        // hide entirely under compute.
        assert!((stream.overlapped_s() - 17.0).abs() < 1e-12);
        assert!((stream.serialized_s() - 21.0).abs() < 1e-12);
        assert!((stream.savings_s() - 4.0).abs() < 1e-12);
        let stats = stream.stats();
        assert_eq!(stats.ops, 3);
        assert!((stats.upload_s - 3.0).abs() < 1e-12);
        assert!((stats.kernel_s - 15.0).abs() < 1e-12);
        assert!((stats.savings_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn record_between_attributes_snapshot_deltas() {
        let device = Device::tesla_c1060();
        let mut stream = Stream::new();
        let before = device.transfer_snapshot();
        let up = device.upload_bytes(4 << 20);
        let down = device.download_bytes(1 << 20);
        stream.record_between(&before, &device.transfer_snapshot(), 0.5);
        let op = stream.ops()[0];
        assert!((op.upload_s - up).abs() < 1e-12);
        assert!((op.download_s - down).abs() < 1e-12);
        assert!((op.kernel_s - 0.5).abs() < 1e-12);
    }
}
