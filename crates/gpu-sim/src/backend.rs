//! The execution-backend seam.
//!
//! The pipeline runs the same two phases — rigid docking and energy
//! minimization — on either the host (the original FTMap structure) or the
//! modeled GPU (the paper's contribution). Each phase crate has its own notion
//! of "which engine": `piper_dock::DockingEngineKind` for correlation and
//! `ftmap_energy::minimize::EvaluationPath` for evaluation. [`ExecutionBackend`]
//! is the single switch the pipeline flips, and [`BackendSelect`] is the trait
//! those per-phase enums implement so the pipeline selects both engines through
//! one seam instead of two ad-hoc mappings.

use serde::{Deserialize, Serialize};

/// Which substrate executes an accelerated phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionBackend {
    /// Host execution — the original serial FTMap structure.
    Cpu,
    /// The modeled CUDA-class device (the paper's GPU mapping).
    Gpu,
}

impl ExecutionBackend {
    /// Both backends, for tests that must exercise each end-to-end.
    pub const ALL: [ExecutionBackend; 2] = [ExecutionBackend::Cpu, ExecutionBackend::Gpu];

    /// True for the GPU backend.
    pub fn is_gpu(self) -> bool {
        matches!(self, ExecutionBackend::Gpu)
    }
}

impl std::fmt::Display for ExecutionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionBackend::Cpu => write!(f, "cpu"),
            ExecutionBackend::Gpu => write!(f, "gpu"),
        }
    }
}

/// Per-phase engine choices selectable through the backend seam.
///
/// Implemented by each phase's engine enum; the pipeline then picks every
/// phase's engine from one [`ExecutionBackend`] value:
///
/// ```
/// use gpu_sim::{BackendSelect, ExecutionBackend};
///
/// #[derive(Debug, PartialEq)]
/// enum Engine { Host, Device }
///
/// impl BackendSelect for Engine {
///     fn for_backend(backend: ExecutionBackend) -> Self {
///         match backend {
///             ExecutionBackend::Cpu => Engine::Host,
///             ExecutionBackend::Gpu => Engine::Device,
///         }
///     }
/// }
///
/// assert_eq!(Engine::for_backend(ExecutionBackend::Gpu), Engine::Device);
/// ```
pub trait BackendSelect: Sized {
    /// The engine this type uses on the given backend.
    fn for_backend(backend: ExecutionBackend) -> Self;

    /// Shorthand for `Self::for_backend(ExecutionBackend::Cpu)`.
    fn cpu() -> Self {
        Self::for_backend(ExecutionBackend::Cpu)
    }

    /// Shorthand for `Self::for_backend(ExecutionBackend::Gpu)`.
    fn gpu() -> Self {
        Self::for_backend(ExecutionBackend::Gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Toy {
        Host,
        Device,
    }

    impl BackendSelect for Toy {
        fn for_backend(backend: ExecutionBackend) -> Self {
            match backend {
                ExecutionBackend::Cpu => Toy::Host,
                ExecutionBackend::Gpu => Toy::Device,
            }
        }
    }

    #[test]
    fn select_shorthands_match_for_backend() {
        assert_eq!(Toy::cpu(), Toy::Host);
        assert_eq!(Toy::gpu(), Toy::Device);
        assert_eq!(Toy::for_backend(ExecutionBackend::Gpu), Toy::Device);
    }

    #[test]
    fn backend_basics() {
        assert!(ExecutionBackend::Gpu.is_gpu());
        assert!(!ExecutionBackend::Cpu.is_gpu());
        assert_eq!(ExecutionBackend::ALL.len(), 2);
        assert_eq!(ExecutionBackend::Cpu.to_string(), "cpu");
        assert_eq!(ExecutionBackend::Gpu.to_string(), "gpu");
    }
}
